//! # quest-qatk — reproduction of "Exploring Text Classification for Messy
//! Data" (EDBT 2016)
//!
//! This is the façade crate of the workspace: it re-exports every subsystem
//! so downstream users can depend on one crate. See the README for the
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! * [`store`] — embedded relational storage engine;
//! * [`taxonomy`] — the multilingual automotive part-and-error taxonomy;
//! * [`text`] — the UIMA-like text-analytics pipeline (CAS, annotators);
//! * [`corpus`] — the calibrated synthetic messy-data corpus + NHTSA
//!   complaints;
//! * [`core`] — QATK: features, knowledge base, ranked-list kNN, baselines,
//!   evaluation;
//! * [`quest`] — the QUEST application layer (recommendation service,
//!   workflow, users, cross-source comparison).
//!
//! ## Quickstart
//!
//! ```
//! use quest_qatk::prelude::*;
//!
//! // 1. generate a (small) corpus with the paper's structure
//! let corpus = Corpus::generate(CorpusConfig::small(42));
//!
//! // 2. train the recommendation service on it
//! let service = RecommendationService::train(
//!     &corpus,
//!     FeatureModel::BagOfConcepts,
//!     SimilarityMeasure::Jaccard,
//! );
//!
//! // 3. ask for error-code suggestions for a data bundle — the serving path
//! //    is `&self` and safe to share across threads (DESIGN.md §8)
//! let suggestions = service.suggest(&corpus.bundles[0]);
//! assert!(suggestions.top.len() <= TOP_SUGGESTIONS);
//! ```

pub use qatk_core as core;
pub use qatk_corpus as corpus;
pub use qatk_store as store;
pub use qatk_taxonomy as taxonomy;
pub use qatk_text as text;
pub use quest;

/// One-stop import surface across all crates.
pub mod prelude {
    pub use qatk_core::prelude::*;
    pub use qatk_corpus::prelude::*;
    pub use qatk_store::prelude::{
        Aggregate, Cond, DataType, Database, GroupBy, IndexKind, Join, JoinKind, Query, Schema,
        SchemaBuilder, SharedDatabase, SortOrder, StoreError, Table, Value,
    };
    pub use qatk_taxonomy::prelude::*;
    pub use qatk_text::prelude::*;
    pub use quest::prelude::*;
}
