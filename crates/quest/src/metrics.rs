//! Service-layer metrics (DESIGN.md §7): QUEST suggestion latency and batch
//! shape, registered under the `qatk_quest_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Gauge, Histogram, Registry};

/// Handles to every `qatk_quest_*` metric.
pub struct QuestMetrics {
    /// Single-bundle `suggest` calls.
    pub suggest_total: &'static Counter,
    /// Wall time of one `suggest` call, text processing included (ns).
    pub suggest_latency_ns: &'static Histogram,
    /// `suggest_batch` calls.
    pub suggest_batch_total: &'static Counter,
    /// Wall time of one whole `suggest_batch` call (ns).
    pub suggest_batch_latency_ns: &'static Histogram,
    /// Bundles per `suggest_batch` call.
    pub suggest_batch_size: &'static Histogram,
    /// Epoch number of the currently published knowledge snapshot.
    pub epoch: &'static Gauge,
    /// Snapshot publishes (epoch swaps) since start.
    pub epoch_swaps_total: &'static Counter,
    /// Learn instances enqueued but not yet published into a snapshot.
    pub pending_delta: &'static Gauge,
    /// Configuration instances added to the knowledge base by online
    /// learning (post-dedup).
    pub learned_total: &'static Counter,
}

/// The service-layer metric handles (registered on first use).
pub fn metrics() -> &'static QuestMetrics {
    static M: OnceLock<QuestMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        QuestMetrics {
            suggest_total: r.counter(
                "qatk_quest_suggest_total",
                "single-bundle suggestion requests",
            ),
            suggest_latency_ns: r.histogram(
                "qatk_quest_suggest_latency_ns",
                "suggest latency per bundle, text processing included (ns)",
            ),
            suggest_batch_total: r
                .counter("qatk_quest_suggest_batch_total", "suggest_batch requests"),
            suggest_batch_latency_ns: r.histogram(
                "qatk_quest_suggest_batch_latency_ns",
                "suggest_batch wall time (ns)",
            ),
            suggest_batch_size: r.histogram(
                "qatk_quest_suggest_batch_size",
                "bundles per suggest_batch call",
            ),
            epoch: r.gauge(
                "qatk_quest_epoch",
                "epoch of the currently published knowledge snapshot",
            ),
            epoch_swaps_total: r.counter(
                "qatk_quest_epoch_swaps_total",
                "knowledge snapshot publishes (epoch swaps)",
            ),
            pending_delta: r.gauge(
                "qatk_quest_pending_delta",
                "learn instances enqueued but not yet published",
            ),
            learned_total: r.counter(
                "qatk_quest_learned_total",
                "configuration instances added by online learning",
            ),
        }
    })
}
