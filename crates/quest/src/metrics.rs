//! Service-layer metrics (DESIGN.md §7): QUEST suggestion latency and batch
//! shape, registered under the `qatk_quest_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Histogram, Registry};

/// Handles to every `qatk_quest_*` metric.
pub struct QuestMetrics {
    /// Single-bundle `suggest` calls.
    pub suggest_total: &'static Counter,
    /// Wall time of one `suggest` call, text processing included (ns).
    pub suggest_latency_ns: &'static Histogram,
    /// `suggest_batch` calls.
    pub suggest_batch_total: &'static Counter,
    /// Wall time of one whole `suggest_batch` call (ns).
    pub suggest_batch_latency_ns: &'static Histogram,
    /// Bundles per `suggest_batch` call.
    pub suggest_batch_size: &'static Histogram,
}

/// The service-layer metric handles (registered on first use).
pub fn metrics() -> &'static QuestMetrics {
    static M: OnceLock<QuestMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        QuestMetrics {
            suggest_total: r.counter(
                "qatk_quest_suggest_total",
                "single-bundle suggestion requests",
            ),
            suggest_latency_ns: r.histogram(
                "qatk_quest_suggest_latency_ns",
                "suggest latency per bundle, text processing included (ns)",
            ),
            suggest_batch_total: r
                .counter("qatk_quest_suggest_batch_total", "suggest_batch requests"),
            suggest_batch_latency_ns: r.histogram(
                "qatk_quest_suggest_batch_latency_ns",
                "suggest_batch wall time (ns)",
            ),
            suggest_batch_size: r.histogram(
                "qatk_quest_suggest_batch_size",
                "bundles per suggest_batch call",
            ),
        }
    })
}
