//! # quest — the Quality Engineering Support Tool application layer
//!
//! QUEST "partly reconstructs the user interface and functionality of the
//! original quality engineering software" (paper §4.5.4). This crate is the
//! application logic behind that UI, CLI-fronted instead of browser-fronted:
//!
//! * [`service`] — the recommendation service: top-10 suggestions with the
//!   full per-part code list as fallback, persisted suggestions and audited
//!   code assignment;
//! * [`workflow`] — the Fig. 2 evaluation process as a state machine
//!   (mechanic → optional initial OEM → supplier → final code);
//! * [`users`] — users and roles (extended rights gate code creation);
//! * [`compare`] — the §5.4 cross-source error-distribution comparison
//!   against (synthetic) NHTSA complaints;
//! * [`screens`] — terminal renderings of the QUEST screens;
//! * [`serve_app`] — the HTTP application (routing + JSON endpoints) served
//!   by the `qatk-serve` wire-protocol kernel (`quest serve`).

pub mod compare;
pub mod metrics;
pub mod probe;
pub mod replica;
pub mod scalefile;
pub mod screens;
pub mod serve_app;
pub mod service;
pub mod users;
pub mod workflow;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::compare::{
        compare_part_with_complaints, compare_with_complaints, ComparisonReport, Distribution,
        DistributionRow,
    };
    pub use crate::probe::{run_metrics_probe, ProbeSummary};
    pub use crate::replica::{wal_layout_diagnostic, ReplicaServer};
    pub use crate::scalefile::{
        load_scale_corpus, save_scale_corpus, ScaleFileError, ScaleFileStats,
    };
    pub use crate::screens::{render_bundle, render_case, render_suggestions};
    pub use crate::serve_app::{
        HealthInfo, PublishHook, QuestApp, ReplicationHealth, MAX_BATCH_TEXTS, MAX_LEARN_INSTANCES,
    };
    pub use crate::service::{RecommendationService, ServiceError, Suggestions, TOP_SUGGESTIONS};
    pub use crate::users::{Role, User, UserError, UserRegistry};
    pub use crate::workflow::{AuditEntry, EvaluationCase, Stage, WorkflowError};
}

pub use prelude::*;
