//! The `quest metrics` workload: a self-contained probe that drives every
//! instrumented layer — text analytics, the kNN kernel, WAL/txn persistence
//! and the QUEST service — so one process has something to expose.
//!
//! Metrics are process-local; a CLI invocation that only *rendered* the
//! registry would print zeros. The probe generates a small corpus, trains
//! the recommendation service (annotating every training bundle), runs a
//! `suggest_batch` worklist plus a few single suggestions, persists the
//! results relationally inside a transaction, and mirrors a slice of them
//! through a write-ahead log.

use qatk_core::prelude::*;
use qatk_corpus::bundle::DataBundle;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_store::prelude::*;

use crate::service::{tables, RecommendationService};

/// What one probe run did (the CLI prints this next to the exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSummary {
    /// Knowledge nodes trained.
    pub kb_nodes: usize,
    /// Bundles suggested through `suggest_batch`.
    pub batch_bundles: usize,
    /// Bundles suggested one at a time.
    pub single_bundles: usize,
    /// Suggestion rows persisted relationally.
    pub rows_persisted: usize,
    /// Records mirrored into the write-ahead log.
    pub wal_records: usize,
    /// Snapshot epoch published by the probe's online-learning step.
    pub epoch: u64,
}

/// Run the probe workload: train, suggest a worklist of `batch_size`
/// bundles, persist, and WAL-mirror. Deterministic for a given `seed`.
pub fn run_metrics_probe(seed: u64, batch_size: usize) -> ProbeSummary {
    let corpus = Corpus::generate(CorpusConfig::small(seed));
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );

    // the worklist: one parallel batch + a handful of interactive suggests
    let worklist: Vec<&DataBundle> = corpus.bundles.iter().take(batch_size).collect();
    let suggestions = svc.suggest_batch(&worklist);
    let single_bundles = 5.min(corpus.bundles.len());
    for b in corpus.bundles.iter().take(single_bundles) {
        let _ = svc.suggest(b);
    }

    // relational persistence inside one transaction (txn commit path)
    let mut db = Database::new();
    let mut rows_persisted = 0;
    for s in &suggestions {
        svc.persist_suggestions(&mut db, s)
            .expect("probe persistence cannot fail on a fresh database");
        rows_persisted += s.top.len();
    }
    db.transaction(|db| {
        // one audited write + one lookup so commit covers real work
        let n = db.table(tables::RECOMMENDATIONS)?.len() as i64;
        db.insert(
            tables::RECOMMENDATIONS,
            row![
                "probe#marker".to_owned(),
                "probe".to_owned(),
                "E-PROBE".to_owned(),
                0.0f64,
                n
            ],
        )?;
        Ok(())
    })
    .expect("probe transaction commits");
    // and one deliberate rollback so the undo path is metered too: the
    // duplicate-key insert fails the transaction and the delete is undone
    let rolled_back = db.transaction(|db| {
        db.delete(tables::RECOMMENDATIONS, &Value::from("probe#marker"))?;
        db.insert(
            tables::RECOMMENDATIONS,
            row![
                "probe#marker".to_owned(),
                "probe".to_owned(),
                "E-PROBE".to_owned(),
                0.0f64,
                0i64
            ],
        )?;
        db.insert(
            tables::RECOMMENDATIONS,
            row![
                "probe#marker".to_owned(),
                "probe".to_owned(),
                "E-PROBE".to_owned(),
                0.0f64,
                0i64
            ],
        )?;
        Ok(())
    });
    assert!(rolled_back.is_err(), "duplicate key must fail the txn");

    // WAL mirroring through the crash-safe path: open with a snapshot,
    // checkpoint the DDL, group-commit the inserts, then recover the store
    // after a clean shutdown so the durability counters (syncs, checkpoints,
    // replayed records) move alongside append/flush latency.
    let probe_dir = std::env::temp_dir().join(format!(
        "qatk_metrics_probe_{}_{}",
        std::process::id(),
        seed
    ));
    let _ = std::fs::remove_dir_all(&probe_dir);
    std::fs::create_dir_all(&probe_dir).expect("temp dir is writable for the probe WAL");
    let snap_path = probe_dir.join("probe.qdb");
    let wal_path = probe_dir.join("probe.wal");
    let (mut logged, _fresh) = LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::EveryN(8))
        .expect("fresh probe store opens");
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("reference_number", DataType::Text)
        .col("top_code", DataType::Text)
        .build()
        .expect("probe schema is valid");
    logged
        .create_table("suggestion_log", schema)
        .expect("fresh database accepts the table");
    // snapshot the DDL so replay starts from a store that has the table
    logged
        .checkpoint()
        .expect("probe checkpoint writes to the temp dir");
    let mut wal_records = 0;
    for (i, s) in suggestions.iter().enumerate().take(64) {
        let top_code = s.top.first().map(|sc| sc.code.clone()).unwrap_or_default();
        logged
            .insert(
                "suggestion_log",
                row![i as i64, s.reference_number.clone(), top_code],
            )
            .expect("probe WAL insert succeeds");
        wal_records += 1;
    }
    logged.sync().expect("probe WAL syncs");
    drop(logged);
    // recover the store (snapshot + log replay) so the recovery path is
    // metered too; the replayed rows must match what was acked above
    let (recovered, report) = LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::EveryN(8))
        .expect("probe store recovers after clean shutdown");
    assert!(report.snapshot_loaded, "probe checkpoint left a snapshot");
    assert!(!report.torn_tail, "clean shutdown leaves no torn tail");
    assert_eq!(
        recovered
            .db()
            .table("suggestion_log")
            .map(|t| t.len())
            .unwrap_or(0),
        wal_records,
        "recovery replays every acked probe record"
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&probe_dir);

    // online learning: one direct learn plus a batched enqueue → publish, so
    // the epoch gauge, swap counter and pending-delta gauge all move. The
    // grafted reports come from *other* bundles so the concept sets differ
    // from every stored instance and the inserts survive dedup.
    let mut fresh = corpus.bundles[0].clone();
    fresh.reference_number = "R-PROBE-LEARN".into();
    fresh.supplier_report = format!(
        "{} {}",
        corpus.bundles[0].supplier_report, corpus.bundles[1].supplier_report
    );
    let code = corpus.bundles[0]
        .error_code
        .clone()
        .expect("generated corpus bundles are coded");
    let _ = svc.learn(&fresh, &code);
    let mut fresh2 = fresh.clone();
    fresh2.reference_number = "R-PROBE-PENDING".into();
    fresh2.supplier_report = format!(
        "{} {}",
        corpus.bundles[0].supplier_report, corpus.bundles[2].supplier_report
    );
    svc.enqueue_learn(&fresh2, &code);
    let _ = svc.publish_pending();

    ProbeSummary {
        kb_nodes: svc.kb_len(),
        batch_bundles: suggestions.len(),
        single_bundles,
        rows_persisted,
        wal_records,
        epoch: svc.epoch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_obs::Registry;

    /// Acceptance criterion of ISSUE 2: after a `suggest_batch` of ≥ 100
    /// bundles, all four instrumented layers expose nonzero
    /// counters/histograms.
    #[test]
    fn probe_lights_up_all_four_layers() {
        let summary = run_metrics_probe(97, 120);
        assert!(summary.batch_bundles >= 100);
        assert!(summary.kb_nodes > 0);
        assert!(summary.wal_records > 0);

        let snap = Registry::global().snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or_default();
        let hist_count = |name: &str| snap.histogram(name).map(|h| h.count).unwrap_or_default();

        // text layer
        assert!(counter("qatk_text_docs_tokenized_total") > 0);
        assert!(counter("qatk_text_docs_annotated_total") > 0);
        assert!(counter("qatk_text_concept_hits_total") > 0);
        assert!(hist_count("qatk_text_annotate_latency_ns") > 0);
        assert!(hist_count("qatk_text_tokenize_latency_ns") > 0);

        // core kernel layer
        assert!(counter("qatk_core_rank_queries_total") >= 120);
        assert!(counter("qatk_core_batch_total") > 0);
        assert!(hist_count("qatk_core_rank_latency_ns") > 0);
        assert!(hist_count("qatk_core_rank_candidates") > 0);
        assert!(hist_count("qatk_core_batch_worker_busy_ns") > 0);
        // per-classifier-family attribution: the probe trains the paper's
        // kNN, so every ranked query lands on the knn family counter
        assert!(counter("qatk_core_rank_family_knn_total") >= 120);

        // store layer
        assert!(counter("qatk_store_wal_appends_total") as usize >= summary.wal_records);
        assert!(counter("qatk_store_wal_bytes_total") > 0);
        assert!(hist_count("qatk_store_wal_flush_latency_ns") > 0);
        assert!(counter("qatk_store_txn_commits_total") > 0);
        assert!(counter("qatk_store_txn_rollbacks_total") > 0);

        // store durability layer: the probe checkpoints, syncs under
        // EveryN(8) group commit, and recovers the store before cleanup
        assert!(counter("qatk_store_wal_syncs_total") > 0);
        assert!(counter("qatk_store_checkpoints_total") > 0);
        assert!(counter("qatk_store_recovery_replayed_total") as usize >= summary.wal_records);

        // quest service layer
        assert!(counter("qatk_quest_suggest_total") > 0);
        assert!(counter("qatk_quest_suggest_batch_total") > 0);
        assert!(hist_count("qatk_quest_suggest_batch_latency_ns") > 0);
        let batch_sizes = snap.histogram("qatk_quest_suggest_batch_size").unwrap();
        assert!(batch_sizes.count > 0);

        // epoch-swapped learning layer: the probe learns once directly and
        // once through the pending delta, each publishing an epoch
        assert!(summary.epoch >= 2);
        assert!(counter("qatk_quest_epoch_swaps_total") >= 2);
        assert!(counter("qatk_quest_learned_total") > 0);
        assert_eq!(snap.gauge("qatk_quest_pending_delta"), Some(0));

        // the exposition renders every layer's prefix
        let text = Registry::global().render_prometheus();
        for prefix in ["qatk_text_", "qatk_core_", "qatk_store_", "qatk_quest_"] {
            assert!(text.contains(prefix), "missing {prefix} in exposition");
        }
    }
}
