//! The QUEST command-line front end — the CLI stand-in for the paper's web
//! application (§4.5.4).
//!
//! ```text
//! quest generate [--small] [--seed N] --db FILE   generate a corpus and persist it
//! quest gen-corpus --scale 100k|1m|10m --out FILE  scale-tier feature corpus
//! quest stats --db FILE                           print the §3.2 data statistics
//! quest suggest --db FILE --ref R-000042          top-10 error-code suggestions
//! quest compare [--small] [--seed N]              Fig. 14 cross-source comparison
//! quest demo                                      end-to-end workflow walkthrough
//! quest metrics [--seed N] [--batch N] [--json]   run a probe workload, dump metrics
//! quest recover --db FILE --wal FILE              recover a store, report the outcome
//! quest serve --addr HOST:PORT [--db F --wal F]   HTTP serving layer (DESIGN.md §10)
//!             [--replicate-to HOST:PORT]          … and ship the WAL to followers
//! quest replica --follow HOST:PORT --db F --wal F read-only replica (DESIGN.md §13)
//! quest promote --db FILE --wal FILE              promote a replica mirror to writable
//! quest loadgen --addr HOST:PORT [--qps N]        closed/open-loop load generator
//! quest trace --addr HOST:PORT [--slow]           pretty-print captured trace trees
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use qatk_core::prelude::*;
use qatk_corpus::prelude::*;
use qatk_repl::prelude::*;
use qatk_store::prelude::*;
use quest::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "gen-corpus" => cmd_gen_corpus(rest),
        "stats" => cmd_stats(rest),
        "suggest" => cmd_suggest(rest),
        "compare" => cmd_compare(rest),
        "demo" => cmd_demo(),
        "metrics" => cmd_metrics(rest),
        "recover" => cmd_recover(rest),
        "serve" => cmd_serve(rest),
        "replica" => cmd_replica(rest),
        "promote" => cmd_promote(rest),
        "loadgen" => cmd_loadgen(rest),
        "trace" => cmd_trace(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: quest <generate|gen-corpus|stats|suggest|compare|demo|metrics|recover|serve|replica|promote|loadgen|trace> [options]
  generate [--small] [--seed N] --db FILE   generate a corpus, persist to FILE
  gen-corpus --scale 100k|1m|10m [--seed N] [--bundles N] --out FILE
                                            seed-deterministic feature-level scale
                                            corpus (delta+varint compressed)
  stats --db FILE                           data statistics (paper §3.2)
  suggest --db FILE --ref REFNO [--model M] [--classifier C] [--measure S]
                                            top-10 suggestions for one bundle
  compare [--small] [--seed N]              error distribution vs NHTSA (§5.4)
  demo                                      guided end-to-end walkthrough
  metrics [--seed N] [--batch N] [--json]   probe workload + metrics snapshot
                                            (Prometheus text; --json for JSON)
  recover --db FILE --wal FILE              recover snapshot + WAL segments,
                                            report replay/torn-tail outcome
  serve [--addr H:P] [--threads N] [--db FILE --wal FILE] [--seed N] [--small]
        [--model M] [--classifier C] [--measure S]
        [--replicate-to H:P] [--checkpoint-every N]
                                            HTTP/1.1 serving layer: POST /suggest,
                                            /classify_batch, /learn; GET /healthz,
                                            /metrics. With --db/--wal, recovers the
                                            store on boot; otherwise trains fresh.
                                            --replicate-to (needs --db/--wal) also
                                            ships the WAL to followers on that
                                            address, checkpointing every N learn
                                            publishes (default 8)
  replica --follow H:P --db FILE --wal FILE [--addr H:P] [--threads N] [--seed N]
          [--small] [--model M]
                                            read-only replica: mirrors the leader's
                                            WAL into --db/--wal, republishes every
                                            shipped epoch, serves /suggest,
                                            /classify_batch, /healthz, /metrics
                                            (POST /learn answers 403)
  promote --db FILE --wal FILE              promote a replica mirror into a
                                            writable store (continues the same
                                            log); then run `quest serve` on it

  --model M       feature model: bag-of-concepts (default), bag-of-words,
                  bag-of-words-nostop, bag-of-stems, char-ngrams[-LO-HI]
  --classifier C  classifier family: knn (default), centroid, naive-bayes,
                  logistic
  --measure S     similarity measure (kNN only): jaccard (default), overlap,
                  dice, cosine
  loadgen [--addr H:P] [--connections N] [--requests N] [--qps N] [--duration-secs S]
          [--seed N] [--endpoint suggest|classify|mixed] [--small]
                                            load generator: closed loop by default,
                                            open loop at --qps; prints p50/p99/p999
  trace [--addr H:P] [--slow]               fetch /debug/traces from a running
                                            server and pretty-print each span
                                            tree with per-span duration bars
                                            (--slow: the slow-request log)";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse the shared `--model` / `--classifier` / `--measure` selection.
/// Defaults reproduce the paper setup: bag-of-concepts + kNN + Jaccard.
fn ranker_options(args: &[String]) -> Result<(FeatureModel, RankerConfig), String> {
    let model = match flag_value(args, "--model") {
        Some(label) => FeatureModel::parse(label).map_err(|e| e.to_string())?,
        None => FeatureModel::BagOfConcepts,
    };
    let family = match flag_value(args, "--classifier") {
        Some(label) => ClassifierFamily::parse(label).map_err(|e| e.to_string())?,
        None => ClassifierFamily::Knn,
    };
    let measure = match flag_value(args, "--measure") {
        Some(label) => SimilarityMeasure::parse(label)
            .ok_or_else(|| format!("unknown similarity measure label `{label}`"))?,
        None => SimilarityMeasure::Jaccard,
    };
    Ok((model, RankerConfig::new(family, measure)))
}

fn corpus_config(args: &[String]) -> CorpusConfig {
    let seed = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(CorpusConfig::default().seed);
    if has_flag(args, "--small") {
        CorpusConfig {
            n_bundles: 1500,
            pool_scale: 0.2,
            seed,
            ..CorpusConfig::default()
        }
    } else {
        CorpusConfig {
            seed,
            ..CorpusConfig::default()
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let db_path = flag_value(args, "--db").ok_or("generate needs --db FILE")?;
    let config = corpus_config(args);
    eprintln!("generating corpus ({} bundles) ...", config.n_bundles);
    let corpus = Corpus::generate(config);
    let mut db = Database::new();
    save_corpus(&corpus, &mut db).map_err(|e| e.to_string())?;
    db.save(db_path).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bundles, {} parts, {} codes to {db_path}",
        corpus.bundles.len(),
        corpus.world.parts.len(),
        corpus.world.codes.len()
    );
    Ok(())
}

fn cmd_gen_corpus(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("gen-corpus needs --out FILE")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let config = match (flag_value(args, "--scale"), flag_value(args, "--bundles")) {
        (Some(label), None) => {
            let tier = ScaleTier::parse(label)
                .ok_or_else(|| format!("bad --scale `{label}` (expected 100k|1m|10m)"))?;
            ScaleConfig::tier(tier, seed)
        }
        (None, Some(n)) => {
            let n: usize = n.parse().map_err(|_| format!("bad --bundles `{n}`"))?;
            ScaleConfig::custom(n, seed)
        }
        (Some(_), Some(_)) => return Err("--scale and --bundles are exclusive".into()),
        (None, None) => return Err("gen-corpus needs --scale 100k|1m|10m or --bundles N".into()),
    };
    eprintln!(
        "generating scale corpus ({} bundles, seed {seed}) ...",
        config.n_bundles
    );
    let corpus = ScaleCorpus::generate(config);
    let stats = save_scale_corpus(&corpus, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} bundles ({} parts, {} codes in use, {:.1} features/bundle) to {out}",
        stats.n_bundles,
        config.n_parts,
        corpus.distinct_codes(),
        corpus.avg_features()
    );
    println!(
        "{} bytes ({:.2} bytes/feature vs 4.00 fixed-width)",
        stats.bytes,
        stats.bytes_per_feature()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let db_path = flag_value(args, "--db").ok_or("stats needs --db FILE")?;
    let db = Database::load(db_path).map_err(|e| e.to_string())?;
    let bundles = load_bundles(&db).map_err(|e| e.to_string())?;
    println!("bundles:          {}", bundles.len());
    let parts: std::collections::HashSet<&str> =
        bundles.iter().map(|b| b.part_id.as_str()).collect();
    println!("part ids:         {}", parts.len());
    let arts: std::collections::HashSet<&str> =
        bundles.iter().map(|b| b.article_code.as_str()).collect();
    println!("article codes:    {}", arts.len());
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for b in &bundles {
        if let Some(c) = b.error_code.as_deref() {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    let singles = counts.values().filter(|&&n| n == 1).count();
    println!("error codes:      {}", counts.len());
    println!("singleton codes:  {singles}");
    println!("usable classes:   {}", counts.len() - singles);
    Ok(())
}

fn cmd_suggest(args: &[String]) -> Result<(), String> {
    let db_path = flag_value(args, "--db").ok_or("suggest needs --db FILE")?;
    let reference = flag_value(args, "--ref").ok_or("suggest needs --ref REFNO")?;
    let db = Database::load(db_path).map_err(|e| e.to_string())?;
    let bundles = load_bundles(&db).map_err(|e| e.to_string())?;
    let bundle = bundles
        .iter()
        .find(|b| b.reference_number == reference)
        .ok_or_else(|| format!("no bundle {reference}"))?;

    // Rebuild the corpus world from the same seed to obtain the taxonomy.
    // (The snapshot stores raw data; the taxonomy is a deterministic
    // resource, like the XML file in the paper's setup.)
    let (model, ranker) = ranker_options(args)?;
    eprintln!(
        "training recommendation service ({} + {} / {}) ...",
        model.label(),
        ranker.family.label(),
        ranker.measure.label()
    );
    let config = corpus_config(args);
    let corpus = Corpus::generate(config);
    let svc = RecommendationService::train_with(&corpus, model, ranker);
    let s = svc.suggest(bundle);
    print!("{}", render_bundle(bundle));
    print!("{}", render_suggestions(&s));
    if let Some(truth) = bundle.error_code.as_deref() {
        println!("ground truth: {truth}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let config = corpus_config(args);
    eprintln!("generating corpus + complaints ...");
    let corpus = Corpus::generate(config);
    let complaints = generate_complaints(
        &corpus,
        &NhtsaConfig {
            n_complaints: if has_flag(args, "--small") { 300 } else { 2000 },
            ..NhtsaConfig::default()
        },
    );
    eprintln!("training bag-of-concepts service ...");
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    let internal = corpus.bundles.iter().filter_map(|b| b.error_code.clone());
    let report = compare_with_complaints(&svc, internal, &complaints, 3);
    println!("{}", report.render());
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("QUEST end-to-end demo (small corpus)\n");
    let corpus = Corpus::generate(CorpusConfig::small(7));
    let mut users = UserRegistry::new();
    users.add("anna", Role::QualityExpert).unwrap();
    users.add("root", Role::Admin).unwrap();

    // the Fig. 2 process for a fresh part
    let mut case = EvaluationCase::register("R-DEMO", corpus.bundles[0].part_id.clone(), "system");
    case.add_mechanic_report("shop-42", &corpus.bundles[0].mechanic_report)
        .map_err(|e| e.to_string())?;
    case.add_supplier_report("supplier-x", &corpus.bundles[0].supplier_report, "RC-2")
        .map_err(|e| e.to_string())?;
    println!("case {} is now {}", case.reference_number, case.stage());

    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    let s = svc.suggest(&corpus.bundles[0]);
    println!("top suggestions for the case:");
    for (i, sc) in s.top.iter().take(5).enumerate() {
        println!("  {:>2}. {:<8} score {:.3}", i + 1, sc.code, sc.score);
    }
    let chosen = s.top[0].code.clone();
    case.finalize("anna", &chosen, "per supplier findings")
        .map_err(|e| e.to_string())?;
    println!("anna finalized the case with {chosen}");
    println!("audit trail: {} entries", case.audit_trail().len());
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let batch: usize = flag_value(args, "--batch")
        .map(|s| s.parse().map_err(|_| format!("bad --batch `{s}`")))
        .transpose()?
        .unwrap_or(120);
    eprintln!("running metrics probe (seed {seed}, batch {batch}) ...");
    let summary = quest::probe::run_metrics_probe(seed, batch);
    eprintln!(
        "probe: {} kb nodes, {} batched + {} single suggestions, \
         {} rows persisted, {} wal records, snapshot epoch {}",
        summary.kb_nodes,
        summary.batch_bundles,
        summary.single_bundles,
        summary.rows_persisted,
        summary.wal_records,
        summary.epoch
    );
    let registry = qatk_obs::Registry::global();
    if has_flag(args, "--json") {
        println!("{}", registry.render_json());
    } else {
        print!("{}", registry.render_prometheus());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7419");
    let threads: usize = flag_value(args, "--threads")
        .map(|s| s.parse().map_err(|_| format!("bad --threads `{s}`")))
        .transpose()?
        .unwrap_or(4);
    let replicate_to = flag_value(args, "--replicate-to");
    let checkpoint_every: u64 = flag_value(args, "--checkpoint-every")
        .map(|s| {
            s.parse()
                .map_err(|_| format!("bad --checkpoint-every `{s}`"))
        })
        .transpose()?
        .unwrap_or(8);
    let (model, ranker) = ranker_options(args)?;
    let config = corpus_config(args);
    eprintln!("generating corpus ({} bundles) ...", config.n_bundles);
    let corpus = Corpus::generate(config);
    let pipeline = std::sync::Arc::new(build_pipeline(&corpus, model));

    let mut health = HealthInfo::default();
    let mut leader_store = None;
    let svc = match (flag_value(args, "--db"), flag_value(args, "--wal")) {
        (Some(db_path), Some(wal_path)) => {
            if let Some(diag) =
                wal_layout_diagnostic(Path::new(db_path), Path::new(wal_path), false)
            {
                return Err(diag);
            }
            eprintln!("recovering store from {db_path} + {wal_path} ...");
            // A replicating leader keeps recent sealed segments around so
            // followers can resume from their cursor instead of reseeding.
            let retention = if replicate_to.is_some() {
                SegmentRetention::Keep(8)
            } else {
                SegmentRetention::default()
            };
            let recovered = RecommendationService::recover_with_retention(
                db_path,
                wal_path,
                SyncPolicy::Always,
                retention,
                std::sync::Arc::clone(&pipeline),
            )
            .map_err(|e| format!("recovery failed: {e}"))?;
            health = HealthInfo {
                recovered: recovered.report.snapshot_loaded,
                torn_tail: recovered.report.torn_tail,
                segments_replayed: recovered.report.segments_replayed,
                records_replayed: recovered.report.records_replayed,
                replication: None,
            };
            eprintln!(
                "recovery: snapshot_loaded={} segments={} records={} torn_tail={}",
                recovered.report.snapshot_loaded,
                recovered.report.segments_replayed,
                recovered.report.records_replayed,
                recovered.report.torn_tail
            );
            leader_store = Some(recovered.store);
            match recovered.service {
                Some(svc) => svc,
                None => {
                    eprintln!("store holds no knowledge snapshot; training from corpus ...");
                    RecommendationService::train_with(&corpus, model, ranker)
                }
            }
        }
        (None, None) if replicate_to.is_some() => {
            return Err("--replicate-to needs --db and --wal (the log to ship)".to_owned())
        }
        (None, None) => {
            eprintln!(
                "training recommendation service ({} + {} / {}) ...",
                model.label(),
                ranker.family.label(),
                ranker.measure.label()
            );
            RecommendationService::train_with(&corpus, model, ranker)
        }
        _ => return Err("serve needs both --db and --wal (or neither)".to_owned()),
    };
    let svc = std::sync::Arc::new(svc);
    eprintln!(
        "knowledge base ready: {} instances, epoch {}, model {}, classifier {}",
        svc.kb_len(),
        svc.epoch(),
        svc.model_label(),
        svc.classifier_label()
    );

    // Leader mode: persist the published snapshot through the WAL, bake the
    // (un-logged) DDL into the snapshot with a boot checkpoint, then start
    // shipping the log. Ordering matters — tables must be in the snapshot
    // *before* row records land in the WAL, or crash recovery (and every
    // fresh follower) would replay rows against missing tables.
    let mut publish_hook = None;
    let mut _leader = None;
    if let Some(repl_addr) = replicate_to {
        let mut store = leader_store.expect("--replicate-to requires --db/--wal");
        let created = KnowledgeSnapshot::ensure_replicated_tables(&mut store)
            .map_err(|e| format!("cannot prepare snapshot tables: {e}"))?;
        if created {
            store
                .checkpoint()
                .map_err(|e| format!("boot checkpoint failed: {e}"))?;
        }
        svc.snapshot()
            .save_to_logged(&mut store)
            .map_err(|e| format!("cannot persist boot snapshot: {e}"))?;
        let db_path = flag_value(args, "--db").unwrap();
        let wal_path = flag_value(args, "--wal").unwrap();
        let leader = Leader::bind(
            repl_addr,
            ReplPaths::new(db_path, wal_path),
            LeaderConfig::default(),
        )
        .map_err(|e| format!("cannot bind replication listener {repl_addr}: {e}"))?;
        println!("shipping WAL to followers on {}", leader.local_addr());
        health.replication = Some(ReplicationHealth::Leader(leader.status()));
        let store = Arc::new(Mutex::new(store));
        let publishes = AtomicU64::new(0);
        let repl_status = leader.status();
        let hook: PublishHook = Arc::new(move |svc: &RecommendationService| {
            // Hand the /learn request's trace id to the replication
            // sessions: they stamp it onto Seal/Tip frames and record
            // follower ack lag against it.
            repl_status.set_learn_trace(qatk_trace::current_trace_id_u64());
            let snapshot = svc.snapshot();
            let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
            snapshot
                .save_to_logged(&mut store)
                .map_err(|e| e.to_string())?;
            // retention: current + previous epoch stay queryable; the
            // deletes replicate to followers like any other DML
            if snapshot.epoch() >= 2 {
                KnowledgeSnapshot::prune_epochs_below_logged(&mut store, snapshot.epoch() - 1)
                    .map_err(|e| e.to_string())?;
            }
            let n = publishes.fetch_add(1, Ordering::SeqCst) + 1;
            if checkpoint_every > 0 && n.is_multiple_of(checkpoint_every) {
                store.checkpoint().map_err(|e| e.to_string())?;
            }
            Ok(())
        });
        publish_hook = Some(hook);
        _leader = Some(leader);
    }

    let mut app = QuestApp::new(std::sync::Arc::clone(&svc), health);
    if let Some(hook) = publish_hook {
        app = app.with_publish_hook(hook);
    }
    let app = std::sync::Arc::new(app);
    let server_config = qatk_serve::ServerConfig {
        threads,
        ..qatk_serve::ServerConfig::default()
    };
    let server = qatk_serve::Server::bind(addr, server_config, app)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on http://{} ({threads} threads)",
        server.local_addr()
    );
    server.join();
    Ok(())
}

fn cmd_replica(args: &[String]) -> Result<(), String> {
    let follow = flag_value(args, "--follow")
        .ok_or("replica needs --follow HOST:PORT (the leader's --replicate-to address)")?;
    let db_path = flag_value(args, "--db").ok_or("replica needs --db FILE (local mirror)")?;
    let wal_path = flag_value(args, "--wal").ok_or("replica needs --wal FILE (local mirror)")?;
    if let Some(diag) = wal_layout_diagnostic(Path::new(db_path), Path::new(wal_path), false) {
        return Err(diag);
    }
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7420");
    let threads: usize = flag_value(args, "--threads")
        .map(|s| s.parse().map_err(|_| format!("bad --threads `{s}`")))
        .transpose()?
        .unwrap_or(4);
    let (model, _ranker) = ranker_options(args)?;
    let config = corpus_config(args);
    eprintln!(
        "building pipeline from corpus ({} bundles) ...",
        config.n_bundles
    );
    let corpus = Corpus::generate(config);
    let pipeline = std::sync::Arc::new(build_pipeline(&corpus, model));

    let replica = ReplicaServer::open(
        ReplPaths::new(db_path, wal_path),
        FollowerConfig::default(),
        pipeline,
        model,
    )
    .map_err(|e| format!("cannot open replica mirror at {db_path} + {wal_path}: {e}"))?;
    let r = replica.recovery();
    eprintln!(
        "local mirror: snapshot_loaded={} segments={} records={} torn_tail={} cursor={}",
        r.snapshot_loaded, r.segments_replayed, r.records_replayed, r.torn_tail, r.cursor
    );
    let svc = replica.service();
    eprintln!(
        "serving epoch {} ({} instances){}",
        svc.epoch(),
        svc.kb_len(),
        if svc.kb_len() == 0 {
            " — empty until the leader ships its first epoch"
        } else {
            ""
        }
    );

    let app = std::sync::Arc::new(QuestApp::new(svc, replica.health()).read_only());
    let server_config = qatk_serve::ServerConfig {
        threads,
        ..qatk_serve::ServerConfig::default()
    };
    let server = qatk_serve::Server::bind(addr, server_config, app)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "read-only replica on http://{} ({threads} threads), following {follow}",
        server.local_addr()
    );

    let stop = AtomicBool::new(false);
    let (_follower, result) = replica.run(follow, &stop);
    result.map_err(|e| {
        format!("replication stopped: {e}\nthe local mirror is intact; restart `quest replica` to resume, or `quest promote --db {db_path} --wal {wal_path}` to take over")
    })
}

fn cmd_promote(args: &[String]) -> Result<(), String> {
    let db_path = flag_value(args, "--db").ok_or("promote needs --db FILE")?;
    let wal_path = flag_value(args, "--wal").ok_or("promote needs --wal FILE")?;
    if let Some(diag) = wal_layout_diagnostic(Path::new(db_path), Path::new(wal_path), true) {
        return Err(diag);
    }
    let (follower, recovery) =
        Follower::open(ReplPaths::new(db_path, wal_path), FollowerConfig::default())
            .map_err(|e| format!("cannot open replica mirror: {e}"))?;
    println!(
        "mirror state: snapshot_loaded={} segments={} records={} torn_tail={} cursor={}",
        recovery.snapshot_loaded,
        recovery.segments_replayed,
        recovery.records_replayed,
        recovery.torn_tail,
        recovery.cursor
    );
    let (store, report) = follower
        .promote(SyncPolicy::Always, SegmentRetention::default())
        .map_err(|e| format!("promotion failed: {e}"))?;
    println!(
        "promoted: epoch {} (replayed {} segments, {} records)",
        store.epoch(),
        report.segments_replayed,
        report.records_replayed
    );
    println!("the mirror is now a writable store; start it with:");
    println!("  quest serve --db {db_path} --wal {wal_path} [--replicate-to H:P]");
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7419");
    let connections: usize = flag_value(args, "--connections")
        .map(|s| s.parse().map_err(|_| format!("bad --connections `{s}`")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let qps: Option<f64> = flag_value(args, "--qps")
        .map(|s| s.parse().map_err(|_| format!("bad --qps `{s}`")))
        .transpose()?;
    let total_requests: usize = match (flag_value(args, "--requests"), qps) {
        (Some(s), _) => s.parse().map_err(|_| format!("bad --requests `{s}`"))?,
        (None, Some(q)) => {
            let secs: f64 = flag_value(args, "--duration-secs")
                .map(|s| s.parse().map_err(|_| format!("bad --duration-secs `{s}`")))
                .transpose()?
                .unwrap_or(10.0);
            (q * secs).ceil() as usize
        }
        (None, None) => 1000,
    };
    let endpoint = flag_value(args, "--endpoint").unwrap_or("mixed");

    let config = corpus_config(args);
    eprintln!(
        "building workload from corpus ({} bundles) ...",
        config.n_bundles
    );
    let corpus = Corpus::generate(config);
    let templates = loadgen_templates(&corpus, endpoint)?;
    let lg = qatk_serve::LoadgenConfig {
        addr: addr.to_owned(),
        connections,
        total_requests,
        mode: match qps {
            Some(target_qps) => qatk_serve::Mode::Open { target_qps },
            None => qatk_serve::Mode::Closed,
        },
        seed,
        ..qatk_serve::LoadgenConfig::default()
    };
    eprintln!(
        "running {} load: {} requests over {} connections against {addr} ...",
        if qps.is_some() {
            "open-loop"
        } else {
            "closed-loop"
        },
        total_requests,
        connections
    );
    let report = qatk_serve::loadgen::run(&lg, &templates);
    print!("{}", report.render());
    if report.failed == report.requests {
        return Err(format!(
            "no request succeeded — is `quest serve` running on {addr}?"
        ));
    }
    Ok(())
}

/// Build the loadgen request mix from corpus bundles: `suggest` bodies are
/// real bundle-shaped documents, `classify` bodies small external-text
/// batches, and `mixed` interleaves both plus health checks.
fn loadgen_templates(
    corpus: &Corpus,
    endpoint: &str,
) -> Result<Vec<qatk_serve::RequestTemplate>, String> {
    use qatk_obs::json::escape;
    use qatk_serve::RequestTemplate;
    let suggest: Vec<RequestTemplate> = corpus
        .bundles
        .iter()
        .take(256)
        .map(|b| {
            RequestTemplate::post(
                "/suggest",
                format!(
                    "{{\"part_id\":\"{}\",\"reference_number\":\"{}\",\"mechanic_report\":\"{}\",\"supplier_report\":\"{}\",\"part_description\":\"{}\"}}",
                    escape(&b.part_id),
                    escape(&b.reference_number),
                    escape(&b.mechanic_report),
                    escape(&b.supplier_report),
                    escape(&b.part_description),
                ),
            )
        })
        .collect();
    let classify: Vec<RequestTemplate> = corpus
        .bundles
        .chunks(4)
        .take(64)
        .map(|chunk| {
            let texts: Vec<String> = chunk
                .iter()
                .map(|b| format!("\"{}\"", escape(&b.supplier_report)))
                .collect();
            RequestTemplate::post(
                "/classify_batch",
                format!("{{\"texts\":[{}]}}", texts.join(",")),
            )
        })
        .collect();
    match endpoint {
        "suggest" => Ok(suggest),
        "classify" => Ok(classify),
        "mixed" => {
            // ~8 suggests : 2 classifies : 1 health probe
            let mut mix = Vec::new();
            for (i, s) in suggest.into_iter().enumerate() {
                mix.push(s);
                if i % 4 == 3 {
                    if let Some(c) = classify.get(i / 4) {
                        mix.push(c.clone());
                    }
                }
                if i % 8 == 7 {
                    mix.push(RequestTemplate::get("/healthz"));
                }
            }
            Ok(mix)
        }
        other => Err(format!(
            "unknown --endpoint `{other}` (expected suggest|classify|mixed)"
        )),
    }
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    let db_path = flag_value(args, "--db").ok_or("recover needs --db FILE")?;
    let wal_path = flag_value(args, "--wal").ok_or("recover needs --wal FILE")?;
    // A missing or empty layout gets a structured diagnostic (what was
    // expected where) instead of a raw io::Error from the store layer.
    if let Some(diag) = wal_layout_diagnostic(Path::new(db_path), Path::new(wal_path), true) {
        return Err(diag);
    }
    let (store, report) = LoggedDatabase::open(db_path, wal_path, SyncPolicy::Always)
        .map_err(|e| format!("recovery failed: {e}"))?;
    println!(
        "snapshot loaded:    {}",
        if report.snapshot_loaded {
            "yes"
        } else {
            "no (fresh store)"
        }
    );
    println!("replay from epoch:  {}", report.replay_from);
    println!("segments replayed:  {}", report.segments_replayed);
    println!("records replayed:   {}", report.records_replayed);
    println!(
        "torn tail:          {}",
        if report.torn_tail {
            "yes (truncated to last intact record)"
        } else {
            "no"
        }
    );
    let db = store.db();
    let mut tables: Vec<&str> = db.table_names();
    tables.sort_unstable();
    println!("tables:             {}", tables.len());
    for name in tables {
        let rows = db.table(name).map(|t| t.len()).unwrap_or(0);
        println!("  {name}: {rows} rows");
    }
    Ok(())
}

/// Fetch `/debug/traces` (or `/debug/traces/slow`) from a running server
/// and pretty-print each captured tree: one header line per trace, then
/// the spans indented by depth with a duration bar scaled to the root.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7420");
    let path = if has_flag(args, "--slow") {
        "/debug/traces/slow"
    } else {
        "/debug/traces"
    };
    let mut client = qatk_serve::HttpClient::connect(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = client
        .request("GET", path, None)
        .map_err(|e| format!("GET {path} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET {path} answered {}", resp.status));
    }
    let doc = qatk_obs::json::parse(&resp.body_str())
        .map_err(|e| format!("unparseable trace document: {e}"))?;
    let trees = doc.as_arr().ok_or("trace document is not an array")?;
    if trees.is_empty() {
        println!("no traces captured ({path})");
        return Ok(());
    }
    for tree in trees {
        print_trace_tree(tree)?;
    }
    println!("{} trace(s)", trees.len());
    Ok(())
}

fn print_trace_tree(tree: &qatk_obs::json::Value) -> Result<(), String> {
    use qatk_obs::json::Value;
    let trace_id = tree
        .get("trace_id")
        .and_then(Value::as_str)
        .unwrap_or("????????????????");
    let total_ns = tree.get("duration_ns").and_then(Value::as_u64).unwrap_or(0);
    let spans = tree
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("tree has no spans array")?;
    println!(
        "trace {trace_id}  {}  {} span(s)",
        fmt_ns(total_ns),
        spans.len()
    );
    // depth by walking parent links; spans arrive in creation order, so a
    // parent always precedes its children
    let mut depth_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for span in spans {
        let id = span.get("id").and_then(Value::as_u64).unwrap_or(0);
        let depth = match span.get("parent").and_then(Value::as_u64) {
            Some(parent) => depth_of.get(&parent).copied().unwrap_or(0) + 1,
            None => 0,
        };
        depth_of.insert(id, depth);
        let name = span.get("name").and_then(Value::as_str).unwrap_or("?");
        let start = span.get("start_ns").and_then(Value::as_u64).unwrap_or(0);
        let end = span.get("end_ns").and_then(Value::as_u64).unwrap_or(start);
        let dur = end.saturating_sub(start);
        // bar scaled to the root duration, 24 columns wide
        let width = 24u64;
        let filled = dur
            .saturating_mul(width)
            .checked_div(total_ns)
            .unwrap_or(0)
            .min(width) as usize;
        let mut notes = String::new();
        if let Some(obj) = span.get("notes").and_then(Value::as_obj) {
            for (k, v) in obj {
                let rendered = match v {
                    Value::Str(s) => s.clone(),
                    Value::Bool(b) => b.to_string(),
                    Value::Num(n) => {
                        if n.fract() == 0.0 && n.abs() < 1e15 {
                            format!("{}", *n as i64)
                        } else {
                            format!("{n}")
                        }
                    }
                    _ => "...".to_owned(),
                };
                notes.push_str(&format!("  {k}={rendered}"));
            }
        }
        println!(
            "  {:indent$}{name:<24} {:>10}  [{:<width$}]{notes}",
            "",
            fmt_ns(dur),
            "#".repeat(filled),
            indent = depth * 2,
            width = width as usize,
        );
    }
    Ok(())
}

/// Human-scale duration: ns under 1µs, µs under 1ms, else ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    }
}
