//! Read-replica runtime: glue between a [`qatk_repl::Follower`] and the
//! serving stack (DESIGN.md §13).
//!
//! The follower replays the leader's WAL into its own in-memory database;
//! this module watches each apply for a newly *committed* knowledge-snapshot
//! epoch (the meta row is written last, so `latest_epoch` only advances once
//! the whole epoch shipped) and republishes it through
//! [`RecommendationService::publish_snapshot`]. `/suggest` on a replica is
//! then the exact same code path as on the leader — zero changes in
//! `qatk-serve` or the HTTP app.
//!
//! Also home to [`wal_layout_diagnostic`]: the structured what-went-where
//! report `quest recover` / `quest replica` print instead of a raw
//! `io::Error` when pointed at a missing or malformed WAL layout.

use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use qatk_core::prelude::*;
use qatk_repl::prelude::*;
use qatk_store::prelude::Database;
use qatk_text::engine::Pipeline;

use crate::serve_app::{HealthInfo, ReplicationHealth};
use crate::service::RecommendationService;

/// Validate the on-disk WAL layout before handing the paths to recovery or
/// replication. Returns `Some(diagnostic)` — a multi-line, human-readable
/// report naming the offending path and the expected layout — when the
/// paths cannot possibly work, `None` when they look plausible.
///
/// With `require_data` set (the `quest recover` path), an existing but
/// empty layout is also diagnosed: recovering nothing is almost always a
/// mistyped path, and a raw "0 records replayed" hides it. A replica leaves
/// it unset — starting empty and syncing from the leader is its normal
/// first boot.
pub fn wal_layout_diagnostic(snapshot: &Path, wal: &Path, require_data: bool) -> Option<String> {
    let expected = |dir: &Path| {
        format!(
            "expected layout:\n  {}  active write-ahead log\n  {}  sealed segments (epoch-numbered)\n  {}  checkpoint snapshot (absent before the first checkpoint)",
            dir.join("wal.log").display(),
            dir.join("wal.log.000042").display(),
            snapshot.display(),
        )
    };
    if wal.is_dir() {
        return Some(format!(
            "--wal names a directory: {}\npass the active log FILE inside it instead\n{}",
            wal.display(),
            expected(wal)
        ));
    }
    if snapshot.is_dir() {
        return Some(format!(
            "--db names a directory: {}\npass the snapshot FILE the store checkpoints into",
            snapshot.display()
        ));
    }
    let dir = wal.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        if !dir.exists() {
            return Some(format!(
                "WAL directory does not exist: {}\n{}\nhint: `quest serve --db … --wal …` creates the layout on first boot",
                dir.display(),
                expected(dir)
            ));
        }
    }
    if require_data {
        let dir = dir.unwrap_or_else(|| Path::new("."));
        let has_segments = std::fs::read_dir(dir)
            .map(|entries| {
                entries.flatten().any(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .starts_with(&format!("{}.", wal_file_name(wal)))
                })
            })
            .unwrap_or(false);
        if !wal.exists() && !snapshot.exists() && !has_segments {
            return Some(format!(
                "nothing to recover under {}: no snapshot, no active log, no sealed segments\n{}\nhint: check the --db/--wal paths against the serving process's flags",
                dir.display(),
                expected(dir)
            ));
        }
    }
    None
}

fn wal_file_name(wal: &Path) -> String {
    wal.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wal.log".to_owned())
}

/// A read replica assembled from a [`Follower`] plus the serving pieces:
/// the recommendation service it republishes into and the health report the
/// HTTP app exposes. Built once by `quest replica`, then [`Self::run`]
/// follows the leader until asked to stop.
pub struct ReplicaServer {
    follower: Follower,
    recovery: ReplicaRecovery,
    status: Arc<ReplicaStatus>,
    svc: Arc<RecommendationService>,
    pipeline: Arc<Pipeline>,
    last_published: Option<u64>,
}

impl ReplicaServer {
    /// Open (or resume) the local mirror and build the service from the
    /// newest knowledge epoch it already holds. A fresh replica with no
    /// local state starts on an empty epoch-0 snapshot under
    /// `fallback_model` and serves real knowledge as soon as the leader's
    /// first epoch replays.
    pub fn open(
        paths: ReplPaths,
        config: FollowerConfig,
        pipeline: Arc<Pipeline>,
        fallback_model: FeatureModel,
    ) -> ReplResult<ReplicaServer> {
        let (follower, recovery) = Follower::open(paths, config)?;
        let last_published = KnowledgeSnapshot::latest_epoch(follower.db())?;
        let svc = match RecommendationService::load_latest(follower.db(), Arc::clone(&pipeline))? {
            Some(svc) => svc,
            None => RecommendationService::from_snapshot(
                SnapshotBuilder::new(Arc::clone(&pipeline), fallback_model).seal(),
            ),
        };
        let status = follower.status();
        Ok(ReplicaServer {
            follower,
            recovery,
            status,
            svc: Arc::new(svc),
            pipeline,
            last_published,
        })
    }

    /// The service `/suggest` runs against (shared with the HTTP app).
    pub fn service(&self) -> Arc<RecommendationService> {
        Arc::clone(&self.svc)
    }

    /// Live replication counters (shared with `/healthz`).
    pub fn status(&self) -> Arc<ReplicaStatus> {
        Arc::clone(&self.status)
    }

    /// What local recovery found at boot.
    pub fn recovery(&self) -> &ReplicaRecovery {
        &self.recovery
    }

    /// The health report the HTTP app serves, replication role included.
    pub fn health(&self) -> HealthInfo {
        HealthInfo {
            recovered: self.recovery.snapshot_loaded || self.recovery.segments_replayed > 0,
            torn_tail: self.recovery.torn_tail,
            segments_replayed: self.recovery.segments_replayed,
            records_replayed: self.recovery.records_replayed,
            replication: Some(ReplicationHealth::Replica(Arc::clone(&self.status))),
        }
    }

    /// Follow the leader at `addr` until `stop` is set, republishing every
    /// newly committed knowledge epoch into the service as it replays.
    /// Returns the follower (for [`Follower::promote`]) and the terminal
    /// result — `Ok` on a requested stop, the first non-retryable error
    /// otherwise.
    pub fn run(mut self, addr: &str, stop: &AtomicBool) -> (Follower, ReplResult<()>) {
        let svc = Arc::clone(&self.svc);
        let pipeline = Arc::clone(&self.pipeline);
        let mut last = self.last_published;
        let mut on_apply = move |db: &Database, _cursor: ReplCursor| {
            let Ok(Some(epoch)) = KnowledgeSnapshot::latest_epoch(db) else {
                return;
            };
            if last.is_some_and(|p| epoch <= p) {
                return;
            }
            // The meta row commits an epoch last, so a visible latest_epoch
            // is always fully loadable; an error here would mean corruption,
            // which the next apply (or the store layer) surfaces anyway.
            if let Ok(snap) = KnowledgeSnapshot::load_epoch(db, Arc::clone(&pipeline), epoch) {
                svc.publish_snapshot(snap);
                last = Some(epoch);
            }
        };
        let result = self.follower.run(addr, stop, &mut on_apply);
        (self.follower, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_diagnostic_names_paths_and_expected_shape() {
        let dir = std::env::temp_dir().join(format!("qatk_layout_diag_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // missing parent directory
        let missing = dir.join("nope").join("wal.log");
        let snap = dir.join("nope").join("snap.qdb");
        let msg = wal_layout_diagnostic(&snap, &missing, false).expect("diagnostic");
        assert!(msg.contains("does not exist"), "{msg}");
        assert!(
            msg.contains(&dir.join("nope").display().to_string()),
            "{msg}"
        );
        assert!(msg.contains("expected layout"), "{msg}");

        // --wal pointed at a directory
        let msg = wal_layout_diagnostic(&snap, &dir, false).expect("diagnostic");
        assert!(msg.contains("names a directory"), "{msg}");

        // empty-but-existing layout only trips the recovery path
        let wal = dir.join("wal.log");
        let snap = dir.join("snap.qdb");
        assert!(wal_layout_diagnostic(&snap, &wal, false).is_none());
        let msg = wal_layout_diagnostic(&snap, &wal, true).expect("diagnostic");
        assert!(msg.contains("nothing to recover"), "{msg}");

        // a real layout passes both
        std::fs::write(&wal, b"").unwrap();
        assert!(wal_layout_diagnostic(&snap, &wal, true).is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
