//! Text renderings of the QUEST screens (paper §4.5.4, Fig. 3/4).
//!
//! The original QUEST is a PrimeFaces web app; this module renders the same
//! screens as aligned terminal text so the CLI and the examples show what a
//! quality worker would see: the data bundle with its reports, the top-10
//! suggestion list, and the fallback code inventory.

use std::fmt::Write as _;

use qatk_corpus::bundle::DataBundle;

use crate::service::Suggestions;
use crate::workflow::EvaluationCase;

const WIDTH: usize = 72;

fn rule(out: &mut String, c: char) {
    out.push_str(&c.to_string().repeat(WIDTH));
    out.push('\n');
}

fn field(out: &mut String, label: &str, value: &str) {
    let _ = writeln!(out, "{label:<22} {value}");
}

fn wrapped(out: &mut String, label: &str, text: &str) {
    let mut line = String::new();
    let mut first = true;
    for word in text.split_whitespace() {
        if line.len() + word.len() + 1 > WIDTH - 24 {
            field(out, if first { label } else { "" }, &line);
            first = false;
            line.clear();
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() || first {
        field(out, if first { label } else { "" }, &line);
    }
}

/// The bundle-view screen: identifiers and all available reports (Fig. 3).
pub fn render_bundle(bundle: &DataBundle) -> String {
    let mut out = String::new();
    rule(&mut out, '=');
    let _ = writeln!(
        out,
        "QUEST — data bundle {}  (part {})",
        bundle.reference_number, bundle.part_id
    );
    rule(&mut out, '=');
    field(&mut out, "article code", &bundle.article_code);
    field(&mut out, "part description", &bundle.part_description);
    if let Some(rc) = &bundle.responsibility_code {
        field(&mut out, "responsibility", rc);
    }
    rule(&mut out, '-');
    wrapped(&mut out, "mechanic report", &bundle.mechanic_report);
    if let Some(r) = &bundle.initial_report {
        wrapped(&mut out, "initial OEM report", r);
    }
    wrapped(&mut out, "supplier report", &bundle.supplier_report);
    if let Some(r) = &bundle.final_report {
        wrapped(&mut out, "final OEM report", r);
    }
    match &bundle.error_code {
        Some(code) => field(&mut out, "final error code", code),
        None => field(&mut out, "final error code", "— not assigned —"),
    }
    out
}

/// The assignment screen: ranked suggestions plus fallback inventory
/// ("the user is first presented with a selection of the 10 most likely
/// error codes in descending order of likelihood").
pub fn render_suggestions(s: &Suggestions) -> String {
    let mut out = String::new();
    rule(&mut out, '=');
    let _ = writeln!(
        out,
        "QUEST — error code suggestions for {}",
        s.reference_number
    );
    rule(&mut out, '=');
    if s.top.is_empty() {
        out.push_str("no text-based suggestions — use the full code list below\n");
    }
    for (i, sc) in s.top.iter().enumerate() {
        let bar_len = (sc.score * 24.0).round() as usize;
        let _ = writeln!(
            out,
            "{:>3}. {:<10} {:>6.3}  {}",
            i + 1,
            sc.code,
            sc.score,
            "#".repeat(bar_len.min(24))
        );
    }
    rule(&mut out, '-');
    let _ = writeln!(
        out,
        "not listed? {} codes available for this part id (view all)",
        s.all_codes_for_part.len()
    );
    out
}

/// The case-history panel: workflow stage plus audit trail.
pub fn render_case(case: &EvaluationCase) -> String {
    let mut out = String::new();
    rule(&mut out, '=');
    let _ = writeln!(
        out,
        "QUEST — case {} (part {}) — {}",
        case.reference_number,
        case.part_id,
        case.stage()
    );
    rule(&mut out, '=');
    for e in case.audit_trail() {
        let _ = writeln!(
            out,
            "{:<20} {:<14} {}",
            e.stage.to_string(),
            e.actor,
            e.note
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_core::prelude::ScoredCode;

    fn bundle() -> DataBundle {
        DataBundle {
            reference_number: "R-000001".into(),
            article_code: "A-00042".into(),
            part_id: "P-07".into(),
            error_code: None,
            responsibility_code: Some("RC-2".into()),
            mechanic_report:
                "Kleint says taht radio turns on and off by itself. Electiral smell, crackling sound."
                    .into(),
            initial_report: None,
            supplier_report: "Unit non-functional. Lüfter funktioniert nicht.".into(),
            final_report: None,
            part_description: "Radio control unit type 4".into(),
            error_description: None,
        }
    }

    #[test]
    fn bundle_screen_contains_everything() {
        let text = render_bundle(&bundle());
        assert!(text.contains("R-000001"));
        assert!(text.contains("P-07"));
        assert!(text.contains("mechanic report"));
        assert!(text.contains("supplier report"));
        assert!(text.contains("not assigned"));
        assert!(!text.contains("final OEM report")); // absent field skipped
                                                     // long reports are wrapped: no line wider than the screen
        for line in text.lines() {
            assert!(line.chars().count() <= WIDTH + 2, "too wide: {line}");
        }
    }

    #[test]
    fn assigned_code_shown() {
        let mut b = bundle();
        b.error_code = Some("E0707".into());
        assert!(render_bundle(&b).contains("E0707"));
    }

    #[test]
    fn suggestion_screen_ranks_and_bars() {
        let s = Suggestions {
            reference_number: "R-000001".into(),
            top: vec![
                ScoredCode {
                    code: "E0701".into(),
                    score: 0.92,
                },
                ScoredCode {
                    code: "E0702".into(),
                    score: 0.4,
                },
            ],
            all_codes_for_part: vec!["E0701".into(), "E0702".into(), "E0703".into()].into(),
        };
        let text = render_suggestions(&s);
        assert!(text.contains("  1. E0701"));
        assert!(text.contains("  2. E0702"));
        assert!(text.contains("3 codes available"));
        // score bars scale with score
        let bar1 = text
            .lines()
            .find(|l| l.contains("E0701"))
            .unwrap()
            .matches('#')
            .count();
        let bar2 = text
            .lines()
            .find(|l| l.contains("E0702"))
            .unwrap()
            .matches('#')
            .count();
        assert!(bar1 > bar2);
    }

    #[test]
    fn empty_suggestions_fall_back() {
        let s = Suggestions {
            reference_number: "R-1".into(),
            top: vec![],
            all_codes_for_part: vec!["E1".into()].into(),
        };
        let text = render_suggestions(&s);
        assert!(text.contains("no text-based suggestions"));
    }

    #[test]
    fn case_screen_shows_audit() {
        let mut case = EvaluationCase::register("R-9", "P-01", "system");
        case.add_mechanic_report("shop", "broken").unwrap();
        let text = render_case(&case);
        assert!(text.contains("mechanic-reported"));
        assert!(text.contains("shop"));
        assert!(text.contains("case opened"));
    }
}
