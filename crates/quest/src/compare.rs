//! Cross-source error-distribution comparison (paper §5.4, Fig. 14).
//!
//! "If we assign error codes from the schema we use to classify our own
//! quality data to texts from a different data source ... we can gain
//! insights about where we stand in terms of product quality in contrast to
//! the competitors." QUEST shows "side-by-side pie charts showing the
//! distribution of the n most frequent error codes in both data sources".

use std::collections::HashMap;
use std::fmt::Write as _;

use qatk_corpus::nhtsa::Complaint;

use crate::service::RecommendationService;

/// One slice of the distribution "pie".
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionRow {
    pub code: String,
    pub count: usize,
    pub share: f64,
}

/// A full distribution: the top-n codes plus an "Other" bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    pub label: String,
    pub rows: Vec<DistributionRow>,
    pub other_count: usize,
    pub other_share: f64,
    pub total: usize,
}

impl Distribution {
    /// Build from raw code occurrences.
    pub fn from_codes<'a>(
        label: impl Into<String>,
        codes: impl IntoIterator<Item = &'a str>,
        top_n: usize,
    ) -> Self {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut total = 0usize;
        for c in codes {
            *counts.entry(c).or_insert(0) += 1;
            total += 1;
        }
        let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let rows: Vec<DistributionRow> = ranked
            .iter()
            .take(top_n)
            .map(|&(code, count)| DistributionRow {
                code: code.to_owned(),
                count,
                share: if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                },
            })
            .collect();
        let top_count: usize = rows.iter().map(|r| r.count).sum();
        let other_count = total - top_count;
        Distribution {
            label: label.into(),
            rows,
            other_count,
            other_share: if total == 0 {
                0.0
            } else {
                other_count as f64 / total as f64
            },
            total,
        }
    }

    /// The top code, if any.
    pub fn top_code(&self) -> Option<&str> {
        self.rows.first().map(|r| r.code.as_str())
    }
}

/// The Fig. 14 screen: two distributions side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    pub left: Distribution,
    pub right: Distribution,
}

impl ComparisonReport {
    /// Render as an aligned text table (the CLI stand-in for the web app's
    /// pie charts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} | {:<28}", self.left.label, self.right.label);
        let _ = writeln!(out, "{:-<28}-+-{:-<28}", "", "");
        let rows = self.left.rows.len().max(self.right.rows.len());
        let fmt_row = |d: &Distribution, i: usize| -> String {
            match d.rows.get(i) {
                Some(r) => format!("{:<10} {:>5.1}% ({:>5})", r.code, r.share * 100.0, r.count),
                None => format!("{:28}", ""),
            }
        };
        for i in 0..rows {
            let _ = writeln!(
                out,
                "{:<28} | {:<28}",
                fmt_row(&self.left, i),
                fmt_row(&self.right, i)
            );
        }
        let other = |d: &Distribution| {
            format!(
                "{:<10} {:>5.1}% ({:>5})",
                "Other",
                d.other_share * 100.0,
                d.other_count
            )
        };
        let _ = writeln!(
            out,
            "{:<28} | {:<28}",
            other(&self.left),
            other(&self.right)
        );
        out
    }
}

/// Classify external complaints with the internal knowledge base and compare
/// the resulting code distribution against the internal one.
///
/// The internal side counts actual assignments; the external side counts the
/// classifier's top suggestion per complaint ("there will be substantial
/// inaccuracies in the fully automatic classification ... However, an
/// approximate impression of the distribution of similar errors can still be
/// gained", §5.4).
pub fn compare_with_complaints(
    service: &RecommendationService,
    internal_codes: impl IntoIterator<Item = String>,
    complaints: &[Complaint],
    top_n: usize,
) -> ComparisonReport {
    let internal: Vec<String> = internal_codes.into_iter().collect();
    let left = Distribution::from_codes(
        "Proprietary Data Set",
        internal.iter().map(String::as_str),
        top_n,
    );
    let texts: Vec<&str> = complaints.iter().map(|c| c.text.as_str()).collect();
    let external_codes: Vec<String> = service
        .classify_external_batch(&texts, "<external>")
        .iter()
        .filter_map(|ranked| ranked.first().map(|top| top.code.clone()))
        .collect();
    let right = Distribution::from_codes(
        "NHTSA Data",
        external_codes.iter().map(String::as_str),
        top_n,
    );
    ComparisonReport { left, right }
}

/// Part-scoped variant of the Fig. 14 screen: both sides restricted to one
/// part type. The complaints passed in should already be filtered to the
/// matching NHTSA component category; they are classified against the part's
/// code inventory.
pub fn compare_part_with_complaints(
    service: &RecommendationService,
    part_id: &str,
    internal_codes: impl IntoIterator<Item = String>,
    complaints: &[Complaint],
    top_n: usize,
) -> ComparisonReport {
    let internal: Vec<String> = internal_codes.into_iter().collect();
    let left = Distribution::from_codes(
        format!("Proprietary Data Set ({part_id})"),
        internal.iter().map(String::as_str),
        top_n,
    );
    let texts: Vec<&str> = complaints.iter().map(|c| c.text.as_str()).collect();
    let external_codes: Vec<String> = service
        .classify_external_batch(&texts, part_id)
        .iter()
        .filter_map(|ranked| ranked.first().map(|top| top.code.clone()))
        .collect();
    let right = Distribution::from_codes(
        format!("NHTSA Data ({part_id})"),
        external_codes.iter().map(String::as_str),
        top_n,
    );
    ComparisonReport { left, right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_core::prelude::{FeatureModel, SimilarityMeasure};
    use qatk_corpus::generator::{Corpus, CorpusConfig};
    use qatk_corpus::nhtsa::{generate_complaints, NhtsaConfig};

    #[test]
    fn distribution_from_codes() {
        let codes = ["A", "B", "A", "C", "A", "B", "D"];
        let d = Distribution::from_codes("test", codes, 2);
        assert_eq!(d.total, 7);
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].code, "A");
        assert_eq!(d.rows[0].count, 3);
        assert!((d.rows[0].share - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(d.rows[1].code, "B");
        assert_eq!(d.other_count, 2); // C + D
        assert_eq!(d.top_code(), Some("A"));
    }

    #[test]
    fn empty_distribution() {
        let d = Distribution::from_codes("empty", std::iter::empty::<&str>(), 3);
        assert_eq!(d.total, 0);
        assert!(d.rows.is_empty());
        assert_eq!(d.other_share, 0.0);
        assert_eq!(d.top_code(), None);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let left = Distribution::from_codes("Proprietary Data Set", ["A", "A", "B"], 2);
        let right = Distribution::from_codes("NHTSA Data", ["X", "Y", "Y", "Y"], 2);
        let r = ComparisonReport { left, right };
        let text = r.render();
        assert!(text.contains("Proprietary Data Set"));
        assert!(text.contains("NHTSA Data"));
        assert!(text.contains("Other"));
        assert!(text.contains('A') && text.contains('Y'));
        // every line has the separator
        for line in text.lines().skip(2) {
            assert!(line.contains('|') || line.contains('+'), "line: {line}");
        }
    }

    #[test]
    fn complaint_comparison_end_to_end() {
        let corpus = Corpus::generate(CorpusConfig::small(41));
        let svc = RecommendationService::train(
            &corpus,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let complaints = generate_complaints(
            &corpus,
            &NhtsaConfig {
                n_complaints: 120,
                ..NhtsaConfig::default()
            },
        );
        let internal = corpus.bundles.iter().filter_map(|b| b.error_code.clone());
        let report = compare_with_complaints(&svc, internal, &complaints, 3);
        assert_eq!(report.left.rows.len(), 3);
        assert!(report.right.total > 0, "no complaint classified");
        // the two markets should not have identical head codes every time;
        // at minimum the report renders
        assert!(!report.render().is_empty());
    }
}
