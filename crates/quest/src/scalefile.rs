//! On-disk persistence for [`ScaleCorpus`] — the `quest gen-corpus` file
//! format.
//!
//! A 1M-tier corpus holds ~16M feature ids; serializing them as fixed-width
//! integers would write ~70 MB where the data's real entropy is far lower
//! (per-bundle feature lists are sorted, so deltas are small; parts, codes
//! and arena offsets are likewise delta-friendly). The format therefore
//! reuses the sealed-segment codec from `qatk_core::segment`: every sorted
//! list goes through [`encode_sorted`] (delta + LEB128 varint) and scalar
//! fields through a u64 varint. Typical output is ~2 bytes per feature id.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "QSC1" (4 raw bytes)
//! config: seed, n_bundles, n_parts, codes_per_part, vocab, pool,
//!         boilerplate, noise_features, signature_len,
//!         noise_zipf_s (f64 bits, 8 raw bytes), code_zipf_s (same)
//! part_salts:  n_parts raw varints
//! signatures:  n_codes * signature_len raw varints
//! parts:       n_bundles raw varints
//! codes:       n_bundles raw varints
//! lens:        n_bundles varints (per-bundle feature count)
//! features:    n_bundles delta+varint lists, concatenated
//! ```
//!
//! Everything needed to regenerate query streams ([`ScaleCorpus::queries`])
//! rides along — `part_salts` and `signatures` are part of the corpus, not
//! just its provenance.

use std::fmt;
use std::io::{self, Read, Write};

use qatk_core::segment::{encode_sorted, read_varint, write_varint, CodecError};
use qatk_corpus::scale::{ScaleConfig, ScaleCorpus};

/// File magic: "QSC" + format version digit.
const MAGIC: [u8; 4] = *b"QSC1";

/// What [`save_scale_corpus`] wrote, for the CLI's stats line.
#[derive(Debug, Clone, Copy)]
pub struct ScaleFileStats {
    /// Total bytes written, including the header.
    pub bytes: u64,
    /// Bundles persisted.
    pub n_bundles: usize,
    /// Feature ids persisted (across all bundles).
    pub n_features: usize,
}

impl ScaleFileStats {
    /// Mean compressed bytes per feature id (header amortized in).
    pub fn bytes_per_feature(&self) -> f64 {
        if self.n_features == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.n_features as f64
    }
}

/// Errors from [`load_scale_corpus`]: I/O or a malformed file.
#[derive(Debug)]
pub enum ScaleFileError {
    Io(io::Error),
    /// Bad magic, truncated stream, or a varint that violates the format.
    Format(String),
}

impl fmt::Display for ScaleFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleFileError::Io(e) => write!(f, "scale corpus file i/o: {e}"),
            ScaleFileError::Format(m) => write!(f, "malformed scale corpus file: {m}"),
        }
    }
}

impl std::error::Error for ScaleFileError {}

impl From<io::Error> for ScaleFileError {
    fn from(e: io::Error) -> Self {
        ScaleFileError::Io(e)
    }
}

impl From<CodecError> for ScaleFileError {
    fn from(e: CodecError) -> Self {
        ScaleFileError::Format(e.to_string())
    }
}

/// LEB128 a u64 (the segment codec is u32-wide; seeds need the full width).
fn write_varint64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint64(buf: &[u8], pos: &mut usize) -> Result<u64, ScaleFileError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| ScaleFileError::Format("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(ScaleFileError::Format("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_usize(buf: &[u8], pos: &mut usize) -> Result<usize, ScaleFileError> {
    let v = read_varint64(buf, pos)?;
    usize::try_from(v).map_err(|_| ScaleFileError::Format("count exceeds usize".into()))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, ScaleFileError> {
    read_varint(buf, pos).map_err(ScaleFileError::from)
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, ScaleFileError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| ScaleFileError::Format("truncated f64".into()))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

/// Serialize a corpus into the `QSC1` byte stream.
pub fn encode_scale_corpus(corpus: &ScaleCorpus) -> Vec<u8> {
    let c = &corpus.config;
    // header + a conservative 2 bytes/feature estimate avoids regrowth
    let mut out = Vec::with_capacity(64 + corpus.features.len() * 2);
    out.extend_from_slice(&MAGIC);
    write_varint64(&mut out, c.seed);
    write_varint64(&mut out, c.n_bundles as u64);
    write_varint64(&mut out, c.n_parts as u64);
    write_varint64(&mut out, c.codes_per_part as u64);
    write_varint(&mut out, c.vocab);
    write_varint(&mut out, c.pool);
    write_varint(&mut out, c.boilerplate);
    write_varint64(&mut out, c.noise_features as u64);
    write_varint64(&mut out, c.signature_len as u64);
    out.extend_from_slice(&c.noise_zipf_s.to_bits().to_le_bytes());
    out.extend_from_slice(&c.code_zipf_s.to_bits().to_le_bytes());
    for &s in &corpus.part_salts {
        write_varint(&mut out, s);
    }
    for &f in &corpus.signatures {
        write_varint(&mut out, f);
    }
    for &p in &corpus.parts {
        write_varint(&mut out, p);
    }
    for &code in &corpus.codes {
        write_varint(&mut out, code);
    }
    for i in 0..corpus.parts.len() {
        let len = corpus.starts[i + 1] - corpus.starts[i];
        write_varint(&mut out, len);
    }
    for i in 0..corpus.parts.len() {
        let list = &corpus.features[corpus.starts[i] as usize..corpus.starts[i + 1] as usize];
        encode_sorted(list, &mut out);
    }
    out
}

/// Parse a `QSC1` byte stream back into a corpus.
pub fn decode_scale_corpus(buf: &[u8]) -> Result<ScaleCorpus, ScaleFileError> {
    if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
        return Err(ScaleFileError::Format(
            "missing QSC1 magic (not a scale corpus file?)".into(),
        ));
    }
    let mut pos = MAGIC.len();
    let seed = read_varint64(buf, &mut pos)?;
    let n_bundles = read_usize(buf, &mut pos)?;
    let n_parts = read_usize(buf, &mut pos)?;
    let codes_per_part = read_usize(buf, &mut pos)?;
    let vocab = read_u32(buf, &mut pos)?;
    let pool = read_u32(buf, &mut pos)?;
    let boilerplate = read_u32(buf, &mut pos)?;
    let noise_features = read_usize(buf, &mut pos)?;
    let signature_len = read_usize(buf, &mut pos)?;
    let noise_zipf_s = read_f64(buf, &mut pos)?;
    let code_zipf_s = read_f64(buf, &mut pos)?;
    let config = ScaleConfig {
        seed,
        n_bundles,
        n_parts,
        codes_per_part,
        vocab,
        pool,
        boilerplate,
        noise_features,
        noise_zipf_s,
        code_zipf_s,
        signature_len,
    };
    // counts drive allocations below; sanity-bound them against the buffer
    // so a corrupt header cannot request terabytes
    let n_codes = n_parts
        .checked_mul(codes_per_part)
        .filter(|&n| n.saturating_mul(signature_len) <= buf.len() * 8)
        .ok_or_else(|| ScaleFileError::Format("implausible code count".into()))?;
    if n_bundles > buf.len() {
        return Err(ScaleFileError::Format("implausible bundle count".into()));
    }
    let read_vec = |buf: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u32>, ScaleFileError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(read_u32(buf, pos)?);
        }
        Ok(v)
    };
    let part_salts = read_vec(buf, &mut pos, n_parts)?;
    let signatures = read_vec(buf, &mut pos, n_codes * signature_len)?;
    let parts = read_vec(buf, &mut pos, n_bundles)?;
    let codes = read_vec(buf, &mut pos, n_bundles)?;
    let lens = read_vec(buf, &mut pos, n_bundles)?;
    let mut starts = Vec::with_capacity(n_bundles + 1);
    starts.push(0u32);
    let mut total = 0u64;
    for &len in &lens {
        total += u64::from(len);
        let end = u32::try_from(total)
            .map_err(|_| ScaleFileError::Format("feature arena exceeds u32 offsets".into()))?;
        starts.push(end);
    }
    let mut features = Vec::with_capacity(total as usize);
    for &len in &lens {
        // delta-decode one bundle's sorted list straight into the arena
        let mut prev = 0u32;
        for _ in 0..len {
            let delta = read_u32(buf, &mut pos)?;
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| ScaleFileError::Format("feature id overflows u32".into()))?;
            features.push(prev);
        }
    }
    if pos != buf.len() {
        return Err(ScaleFileError::Format(format!(
            "{} trailing bytes after corpus",
            buf.len() - pos
        )));
    }
    Ok(ScaleCorpus {
        config,
        part_salts,
        signatures,
        parts,
        codes,
        starts,
        features,
    })
}

/// Write a corpus to `path`; returns size stats for the CLI.
pub fn save_scale_corpus(
    corpus: &ScaleCorpus,
    path: &str,
) -> Result<ScaleFileStats, ScaleFileError> {
    let bytes = encode_scale_corpus(corpus);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(ScaleFileStats {
        bytes: bytes.len() as u64,
        n_bundles: corpus.len(),
        n_features: corpus.features.len(),
    })
}

/// Read a corpus back from `path`.
pub fn load_scale_corpus(path: &str) -> Result<ScaleCorpus, ScaleFileError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    decode_scale_corpus(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> ScaleCorpus {
        ScaleCorpus::generate(ScaleConfig::custom(2_000, 13))
    }

    #[test]
    fn roundtrip_is_identity() {
        let c = corpus();
        let bytes = encode_scale_corpus(&c);
        let d = decode_scale_corpus(&bytes).expect("well-formed");
        assert_eq!(c.part_salts, d.part_salts);
        assert_eq!(c.signatures, d.signatures);
        assert_eq!(c.parts, d.parts);
        assert_eq!(c.codes, d.codes);
        assert_eq!(c.starts, d.starts);
        assert_eq!(c.features, d.features);
        assert_eq!(c.config.seed, d.config.seed);
        assert_eq!(c.config.vocab, d.config.vocab);
        // the reloaded corpus draws the same query stream
        assert_eq!(c.queries(16, 3), d.queries(16, 3));
    }

    #[test]
    fn compression_beats_fixed_width() {
        let c = corpus();
        let bytes = encode_scale_corpus(&c);
        let fixed = c.features.len() * 4;
        assert!(
            bytes.len() < fixed,
            "compressed {} >= fixed-width features alone {}",
            bytes.len(),
            fixed
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(decode_scale_corpus(b"nope").is_err());
        assert!(decode_scale_corpus(b"").is_err());
        let bytes = encode_scale_corpus(&corpus());
        // any truncation must error out, never panic
        for cut in [4, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_scale_corpus(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // trailing junk is rejected too
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_scale_corpus(&long).is_err());
    }

    #[test]
    fn save_load_via_file() {
        let c = corpus();
        let dir = std::env::temp_dir().join("qatk-scalefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.qsc");
        let path = path.to_str().unwrap();
        let stats = save_scale_corpus(&c, path).expect("save");
        assert_eq!(stats.n_bundles, c.len());
        assert!(stats.bytes > 0 && stats.bytes_per_feature() > 0.0);
        let d = load_scale_corpus(path).expect("load");
        assert_eq!(c.features, d.features);
        std::fs::remove_file(path).ok();
    }
}
