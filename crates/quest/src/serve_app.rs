//! The QUEST HTTP application: routing and JSON endpoint semantics over
//! [`RecommendationService`], served by the generic `qatk-serve` kernel
//! (which knows HTTP, not QUEST). Wire contract in DESIGN.md §10.
//!
//! Endpoints:
//!
//! * `POST /suggest` — top-10 suggestions for one bundle-shaped document;
//! * `POST /classify_batch` — rank external texts, all pinned to one epoch;
//! * `POST /learn` — enqueue learn instances and publish one new epoch;
//!   a 200 response means the instances are *published* (the handler holds
//!   the ack until [`RecommendationService::publish_pending`] returns);
//! * `GET /healthz` — epoch, knowledge-base size, recovery status, uptime;
//! * `GET /metrics` — the full `qatk_*` Prometheus exposition;
//! * `GET /debug/traces` — recently captured trace trees (JSON array);
//! * `GET /debug/traces/slow` — the always-retained slow-request log.
//!
//! Every `/suggest`, `/classify_batch` and `/learn` request runs under a
//! root span. The client may pin the trace id with an `x-qatk-trace`
//! header (hex); otherwise one is minted. Either way the id is echoed back
//! in the response's `x-qatk-trace` header.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qatk_corpus::bundle::DataBundle;
use qatk_obs::json::{self, Value};
use qatk_obs::Registry;
use qatk_repl::{LeaderStatus, ReplicaStatus};
use qatk_serve::{Handler, Method, Request, Response};

use crate::service::{RecommendationService, Suggestions};

/// Max texts per `/classify_batch` request.
pub const MAX_BATCH_TEXTS: usize = 1024;

/// Max instances per `/learn` request.
pub const MAX_LEARN_INSTANCES: usize = 1024;

/// Live replication status surfaced through `/healthz`: which role this
/// process plays and the counters the role's runtime publishes.
#[derive(Debug, Clone)]
pub enum ReplicationHealth {
    /// This process ships its WAL to followers.
    Leader(Arc<LeaderStatus>),
    /// This process replays a leader's WAL and serves read-only.
    Replica(Arc<ReplicaStatus>),
}

/// What `/healthz` reports about boot-time recovery (and, when replication
/// is on, the live replication role + lag).
#[derive(Debug, Clone, Default)]
pub struct HealthInfo {
    /// The service was recovered from a snapshot + WAL (vs freshly trained).
    pub recovered: bool,
    /// Recovery truncated a torn WAL tail.
    pub torn_tail: bool,
    pub segments_replayed: usize,
    pub records_replayed: usize,
    /// Present when this process replicates (leader or replica).
    pub replication: Option<ReplicationHealth>,
}

/// Called after `/learn` publishes a new epoch, before the 200 goes out —
/// the leader persists the published snapshot through its WAL here, so the
/// ack also means "shipped to the log". An `Err` turns the ack into a 500.
pub type PublishHook = Arc<dyn Fn(&RecommendationService) -> Result<(), String> + Send + Sync>;

/// The QUEST [`Handler`]: owns the service and the boot health report.
pub struct QuestApp {
    svc: Arc<RecommendationService>,
    health: HealthInfo,
    /// Read replicas reject `/learn`: writes belong to the leader.
    read_only: bool,
    on_publish: Option<PublishHook>,
    /// When this handler was constructed; `/healthz` reports the elapsed
    /// time as `uptime_secs`.
    boot: Instant,
    /// Monotonic count of requests routed through [`Handler::handle`].
    requests: AtomicU64,
}

impl QuestApp {
    pub fn new(svc: Arc<RecommendationService>, health: HealthInfo) -> Self {
        QuestApp {
            svc,
            health,
            read_only: false,
            on_publish: None,
            boot: Instant::now(),
            requests: AtomicU64::new(0),
        }
    }

    /// Serve read-only: `/learn` answers 403 pointing writers at the leader.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Install a hook that runs after every `/learn` publish, before the ack.
    pub fn with_publish_hook(mut self, hook: PublishHook) -> Self {
        self.on_publish = Some(hook);
        self
    }

    pub fn service(&self) -> &Arc<RecommendationService> {
        &self.svc
    }

    fn suggest(&self, req: &Request) -> Response {
        let doc = match parse_body(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let bundle = match bundle_from_json(&doc) {
            Ok(b) => b,
            Err(msg) => return bad_request(&msg),
        };
        // pin one snapshot so the reported epoch is the one that ranked
        let snapshot = self.svc.snapshot();
        let s = self.svc.suggest_on(&snapshot, &bundle);
        Response::json(200, render_suggestions_json(snapshot.epoch(), &s)).with_endpoint("suggest")
    }

    fn classify_batch(&self, req: &Request) -> Response {
        let doc = match parse_body(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let Some(texts_json) = doc.get("texts").and_then(Value::as_arr) else {
            return bad_request("field \"texts\" (array of strings) is required");
        };
        if texts_json.len() > MAX_BATCH_TEXTS {
            return bad_request(&format!(
                "at most {MAX_BATCH_TEXTS} texts per batch (got {})",
                texts_json.len()
            ));
        }
        let mut texts = Vec::with_capacity(texts_json.len());
        for (i, t) in texts_json.iter().enumerate() {
            match t.as_str() {
                Some(s) => texts.push(s),
                None => return bad_request(&format!("texts[{i}] is not a string")),
            }
        }
        let part_id = doc
            .get("part_id")
            .and_then(Value::as_str)
            .unwrap_or("<external>");
        let snapshot = self.svc.snapshot();
        let results = self
            .svc
            .classify_external_batch_on(&snapshot, &texts, part_id);
        let mut out = format!("{{\"epoch\":{},\"results\":[", snapshot.epoch());
        for (i, ranked) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_scored_codes(&mut out, ranked);
        }
        out.push_str("]}");
        Response::json(200, out).with_endpoint("classify_batch")
    }

    fn learn(&self, req: &Request) -> Response {
        if self.read_only {
            return Response::error_json(
                403,
                "this node is a read-only replica; POST /learn to the leader",
            )
            .with_endpoint("learn");
        }
        let doc = match parse_body(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        // either {"instances":[...]} or a single instance object
        let instances: Vec<&Value> = match doc.get("instances") {
            Some(v) => match v.as_arr() {
                Some(a) => a.iter().collect(),
                None => return bad_request("field \"instances\" must be an array"),
            },
            None => vec![&doc],
        };
        if instances.is_empty() {
            return bad_request("no learn instances given");
        }
        if instances.len() > MAX_LEARN_INSTANCES {
            return bad_request(&format!(
                "at most {MAX_LEARN_INSTANCES} instances per request (got {})",
                instances.len()
            ));
        }
        let mut parsed = Vec::with_capacity(instances.len());
        for (i, inst) in instances.iter().enumerate() {
            let bundle = match bundle_from_json(inst) {
                Ok(b) => b,
                Err(msg) => return bad_request(&format!("instances[{i}]: {msg}")),
            };
            let Some(code) = inst.get("code").and_then(Value::as_str) else {
                return bad_request(&format!("instances[{i}]: field \"code\" is required"));
            };
            parsed.push((bundle, code.to_owned()));
        }
        let enqueued = parsed.len();
        for (bundle, code) in &parsed {
            self.svc.enqueue_learn(bundle, code);
        }
        // the ack contract: publish_pending() has returned — and with it the
        // epoch swap installed — before the 200 goes out. A response the
        // client saw is never lost to a later shutdown.
        let added = self.svc.publish_pending();
        if let Some(hook) = &self.on_publish {
            if let Err(e) = hook(&self.svc) {
                return Response::error_json(
                    500,
                    &format!("persisting published epoch failed: {e}"),
                )
                .with_endpoint("learn");
            }
        }
        let body = format!(
            "{{\"enqueued\":{enqueued},\"added\":{added},\"epoch\":{}}}",
            self.svc.epoch()
        );
        Response::json(200, body).with_endpoint("learn")
    }

    fn healthz(&self) -> Response {
        let snapshot = self.svc.snapshot();
        let mut body = format!(
            "{{\"status\":\"ok\",\"epoch\":{},\"kb_len\":{},\"pending\":{},\"model\":\"{}\",\"classifier\":\"{}\",\"measure\":\"{}\",\"recovered\":{},\"torn_tail\":{},\"segments_replayed\":{},\"records_replayed\":{}",
            snapshot.epoch(),
            snapshot.kb().len(),
            self.svc.pending_len(),
            json::escape(&snapshot.model().label()),
            snapshot.ranker_config().family.label(),
            snapshot.ranker_config().measure.label(),
            self.health.recovered,
            self.health.torn_tail,
            self.health.segments_replayed,
            self.health.records_replayed,
        );
        body.push_str(&format!(
            ",\"uptime_secs\":{},\"requests_total\":{}",
            self.boot.elapsed().as_secs(),
            self.requests.load(Ordering::Relaxed),
        ));
        match &self.health.replication {
            None => {}
            Some(ReplicationHealth::Leader(status)) => {
                let (tip_segment, tip_offset) = status.tip();
                let (acked_segment, acked_offset) = match status.min_acked() {
                    Some(c) => (c.segment as i64, c.offset as i64),
                    None => (-1, -1),
                };
                body.push_str(&format!(
                    ",\"replication\":{{\"role\":\"leader\",\"followers\":{},\"sessions_started\":{},\"tip_segment\":{tip_segment},\"tip_offset\":{tip_offset},\"min_acked_segment\":{acked_segment},\"min_acked_offset\":{acked_offset}}}",
                    status.followers(),
                    status.sessions_started(),
                ));
            }
            Some(ReplicationHealth::Replica(status)) => {
                let applied = status.applied();
                let (leader_segment, leader_offset) = status.leader_tip();
                body.push_str(&format!(
                    ",\"replication\":{{\"role\":\"replica\",\"connected\":{},\"applied_watermark\":{},\"applied_segment\":{},\"applied_offset\":{},\"leader_tip_segment\":{leader_segment},\"leader_tip_offset\":{leader_offset},\"lag_bytes\":{},\"records_applied\":{}}}",
                    status.connected(),
                    applied.watermark,
                    applied.segment,
                    applied.offset,
                    status.lag_bytes(),
                    status.records_applied(),
                ));
            }
        }
        body.push('}');
        Response::json(200, body).with_endpoint("healthz")
    }

    fn metrics(&self) -> Response {
        // The Prometheus text exposition format carries its version in the
        // content type; scrapers key on it.
        Response::new(
            200,
            "text/plain; version=0.0.4",
            Registry::global().render_prometheus(),
        )
        .with_endpoint("metrics")
    }

    fn debug_traces(&self, slow: bool) -> Response {
        let store = qatk_trace::store();
        let trees = if slow { store.slow() } else { store.recent() };
        Response::json(200, qatk_trace::render::render_trees_json(&trees)).with_endpoint(if slow {
            "debug_traces_slow"
        } else {
            "debug_traces"
        })
    }

    /// Run one endpoint handler under a root span, honouring an incoming
    /// `x-qatk-trace` header and echoing the trace id on the response. With
    /// tracing disabled no span is captured, but a client-pinned id still
    /// round-trips.
    fn traced(&self, name: &'static str, req: &Request, f: impl FnOnce() -> Response) -> Response {
        let incoming = req
            .header("x-qatk-trace")
            .and_then(qatk_trace::TraceId::parse_hex);
        let span = qatk_trace::root_span(name, incoming);
        let trace = span
            .trace_id()
            .or(incoming)
            .map_or(0, qatk_trace::TraceId::as_u64);
        f().with_trace(trace)
    }
}

impl Handler for QuestApp {
    fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let get_like = matches!(req.method, Method::Get | Method::Head);
        match req.path() {
            "/suggest" if req.method == Method::Post => {
                self.traced("serve.suggest", req, || self.suggest(req))
            }
            "/classify_batch" if req.method == Method::Post => {
                self.traced("serve.classify_batch", req, || self.classify_batch(req))
            }
            "/learn" if req.method == Method::Post => {
                self.traced("serve.learn", req, || self.learn(req))
            }
            "/healthz" if get_like => self.healthz(),
            "/metrics" if get_like => self.metrics(),
            "/debug/traces" if get_like => self.debug_traces(false),
            "/debug/traces/slow" if get_like => self.debug_traces(true),
            "/suggest" | "/classify_batch" | "/learn" => {
                Response::error_json(405, "use POST").with_allow("POST")
            }
            "/healthz" | "/metrics" | "/debug/traces" | "/debug/traces/slow" => {
                Response::error_json(405, "use GET").with_allow("GET, HEAD")
            }
            _ => Response::error_json(404, "no such endpoint"),
        }
    }
}

fn bad_request(msg: &str) -> Response {
    Response::error_json(400, msg)
}

/// Parse the request body as a JSON document.
fn parse_body(req: &Request) -> Result<Value, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| bad_request("request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(bad_request(
            "request body is empty; expected a JSON document",
        ));
    }
    json::parse(text).map_err(|e| bad_request(&format!("invalid JSON: {e}")))
}

/// Build a [`DataBundle`] from a request document. Only `part_id` is
/// required; text fields default to empty and `"text"` is an alias for the
/// supplier report (the strongest single source, paper §5.2).
fn bundle_from_json(doc: &Value) -> Result<DataBundle, String> {
    if doc.as_obj().is_none() {
        return Err("expected a JSON object".to_owned());
    }
    let field = |name: &str| -> Result<String, String> {
        match doc.get(name) {
            None | Some(Value::Null) => Ok(String::new()),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("field \"{name}\" is not a string")),
        }
    };
    let opt = |name: &str| -> Result<Option<String>, String> {
        Ok(Some(field(name)?).filter(|s| !s.is_empty()))
    };
    let part_id = field("part_id")?;
    if part_id.is_empty() {
        return Err("field \"part_id\" is required".to_owned());
    }
    let mut supplier_report = field("supplier_report")?;
    if supplier_report.is_empty() {
        supplier_report = field("text")?;
    }
    Ok(DataBundle {
        reference_number: field("reference_number")?,
        article_code: field("article_code")?,
        part_id,
        error_code: None,
        responsibility_code: opt("responsibility_code")?,
        mechanic_report: field("mechanic_report")?,
        initial_report: opt("initial_report")?,
        supplier_report,
        final_report: opt("final_report")?,
        part_description: field("part_description")?,
        error_description: None,
    })
}

fn render_suggestions_json(epoch: u64, s: &Suggestions) -> String {
    let mut out = format!(
        "{{\"epoch\":{epoch},\"reference_number\":\"{}\",\"top\":",
        json::escape(&s.reference_number)
    );
    push_scored_codes(&mut out, &s.top);
    out.push_str(",\"all_codes_for_part\":[");
    for (i, code) in s.all_codes_for_part.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(code));
        out.push('"');
    }
    out.push_str("]}");
    out
}

fn push_scored_codes(out: &mut String, ranked: &[qatk_core::prelude::ScoredCode]) {
    out.push('[');
    for (i, sc) in ranked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"score\":{:.6}}}",
            json::escape(&sc.code),
            sc.score
        ));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_core::prelude::{ClassifierFamily, FeatureModel, RankerConfig, SimilarityMeasure};
    use qatk_corpus::generator::{Corpus, CorpusConfig};
    use qatk_serve::http::RequestParser;

    fn app() -> QuestApp {
        let corpus = Corpus::generate(CorpusConfig::small(31));
        let svc = RecommendationService::train(
            &corpus,
            FeatureModel::BagOfWords,
            SimilarityMeasure::Overlap,
        );
        QuestApp::new(Arc::new(svc), HealthInfo::default())
    }

    /// Same corpus, same handler construction — only the classifier family
    /// behind the snapshot differs.
    fn app_with_family(family: ClassifierFamily) -> QuestApp {
        let corpus = Corpus::generate(CorpusConfig::small(31));
        let svc = RecommendationService::train_with(
            &corpus,
            FeatureModel::BagOfWords,
            RankerConfig::new(family, SimilarityMeasure::Overlap),
        );
        QuestApp::new(Arc::new(svc), HealthInfo::default())
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut p = RequestParser::new(Default::default());
        p.push(raw.as_bytes());
        p.take_request().unwrap().unwrap()
    }

    #[test]
    fn suggest_roundtrip_and_epoch() {
        let app = app();
        let resp = app.handle(&request(
            "POST",
            "/suggest",
            "{\"part_id\":\"P003\",\"text\":\"oil leaking from the housing\"}",
        ));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("epoch").and_then(Value::as_u64),
            Some(app.svc.epoch())
        );
        assert!(doc.get("top").and_then(Value::as_arr).is_some());
        assert!(doc
            .get("all_codes_for_part")
            .and_then(Value::as_arr)
            .is_some());
    }

    #[test]
    fn suggest_requires_part_id_and_valid_json() {
        let app = app();
        let resp = app.handle(&request("POST", "/suggest", "{\"text\":\"x\"}"));
        assert_eq!(resp.status, 400);
        let resp = app.handle(&request("POST", "/suggest", "{not json"));
        assert_eq!(resp.status, 400);
        let resp = app.handle(&request("POST", "/suggest", ""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn classify_batch_pins_epoch_and_validates() {
        let app = app();
        let resp = app.handle(&request(
            "POST",
            "/classify_batch",
            "{\"texts\":[\"engine stalls\",\"window rattles\"]}",
        ));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("results")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(2)
        );
        let resp = app.handle(&request("POST", "/classify_batch", "{\"texts\":\"x\"}"));
        assert_eq!(resp.status, 400);
        let resp = app.handle(&request("POST", "/classify_batch", "{\"texts\":[1]}"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn learn_publishes_one_epoch_for_the_whole_batch() {
        let app = app();
        let before = app.svc.epoch();
        let body = "{\"instances\":[\
            {\"part_id\":\"P003\",\"text\":\"new failure mode alpha\",\"code\":\"E003-01\"},\
            {\"part_id\":\"P003\",\"text\":\"new failure mode beta\",\"code\":\"E003-01\"}]}";
        let resp = app.handle(&request("POST", "/learn", body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("enqueued").and_then(Value::as_u64), Some(2));
        assert_eq!(app.svc.epoch(), before + 1, "one epoch per learn batch");
        assert_eq!(app.svc.pending_len(), 0, "ack implies published");
        // single-instance shorthand
        let resp = app.handle(&request(
            "POST",
            "/learn",
            "{\"part_id\":\"P004\",\"text\":\"gamma\",\"code\":\"E004-01\"}",
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        // unknown code for the part: still learnable (codes are created by
        // training), but a missing code field is a 400
        let resp = app.handle(&request("POST", "/learn", "{\"part_id\":\"P004\"}"));
        assert_eq!(resp.status, 400);
    }

    /// Key invariant of the classifier zoo: serving a different family takes
    /// ZERO changes in the HTTP layer. The exact same `Handler` code path —
    /// routing, parsing, rendering — serves `/suggest` for every family; the
    /// dispatch happens inside the snapshot's trained ranker.
    #[test]
    fn suggest_serves_multiple_classifier_families_through_one_handler() {
        let body = "{\"part_id\":\"P003\",\"text\":\"oil leaking from the housing\"}";
        let mut per_family = Vec::new();
        for family in [
            ClassifierFamily::Knn,
            ClassifierFamily::Centroid,
            ClassifierFamily::NaiveBayes,
        ] {
            let app = app_with_family(family);
            let resp = app.handle(&request("POST", "/suggest", body));
            assert_eq!(resp.status, 200, "family {}", family.label());
            let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let top_len = doc
                .get("top")
                .and_then(Value::as_arr)
                .map(<[Value]>::len)
                .unwrap();
            assert!(top_len > 0, "family {} returned no codes", family.label());

            // /healthz attributes the traffic to the active family
            let resp = app.handle(&request("GET", "/healthz", ""));
            let health = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            assert_eq!(
                health.get("classifier").and_then(Value::as_str),
                Some(family.label())
            );
            per_family.push(top_len);
        }
        // every family produced a ranked list through the identical handler
        assert_eq!(per_family.len(), 3);
    }

    #[test]
    fn healthz_and_metrics_and_routing() {
        let app = app();
        let resp = app.handle(&request("GET", "/healthz", ""));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert!(doc.get("kb_len").and_then(Value::as_u64).unwrap() > 0);
        // the active feature model + classifier are reported
        assert_eq!(
            doc.get("model").and_then(Value::as_str),
            Some("bag-of-words")
        );
        assert_eq!(doc.get("classifier").and_then(Value::as_str), Some("knn"));
        assert_eq!(doc.get("measure").and_then(Value::as_str), Some("overlap"));

        // the uptime/request counters land in the same document
        assert!(doc.get("uptime_secs").and_then(Value::as_u64).is_some());
        let first = doc.get("requests_total").and_then(Value::as_u64).unwrap();
        assert!(first >= 1);
        let resp = app.handle(&request("GET", "/healthz", ""));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("requests_total").and_then(Value::as_u64),
            Some(first + 1),
            "requests_total is monotonic"
        );

        let resp = app.handle(&request("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        assert!(String::from_utf8_lossy(&resp.body).contains("qatk_"));

        let resp = app.handle(&request("GET", "/debug/traces", ""));
        assert_eq!(resp.status, 200);
        assert!(json::parse(std::str::from_utf8(&resp.body).unwrap())
            .unwrap()
            .as_arr()
            .is_some());
        let resp = app.handle(&request("GET", "/debug/traces/slow", ""));
        assert_eq!(resp.status, 200);

        let resp = app.handle(&request("GET", "/suggest", ""));
        assert_eq!(resp.status, 405);
        assert_eq!(resp.allow, Some("POST"));
        let resp = app.handle(&request("POST", "/healthz", ""));
        assert_eq!(resp.status, 405);
        let resp = app.handle(&request("POST", "/debug/traces", ""));
        assert_eq!(resp.status, 405);
        assert_eq!(resp.allow, Some("GET, HEAD"));
        let resp = app.handle(&request("GET", "/nope", ""));
        assert_eq!(resp.status, 404);
    }

    /// Satellite: `/metrics` conforms to the Prometheus text exposition
    /// format — every non-empty line is either a `# HELP`/`# TYPE` comment
    /// or a `name{labels} value` sample (an OpenMetrics-style exemplar
    /// suffix is allowed), and no metric gets two TYPE lines.
    #[test]
    fn metrics_exposition_conforms_to_text_format() {
        let app = app();
        // drive some traffic so histograms and counters are populated
        app.handle(&request(
            "POST",
            "/suggest",
            "{\"part_id\":\"P003\",\"text\":\"oil leak\"}",
        ));
        let resp = app.handle(&request("GET", "/metrics", ""));
        let text = String::from_utf8(resp.body).unwrap();
        let mut typed = std::collections::HashSet::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let (kind, rest) = rest.split_once(' ').expect("comment has a metric name");
                assert!(
                    kind == "HELP" || kind == "TYPE",
                    "unknown comment kind in {line:?}"
                );
                if kind == "TYPE" {
                    let name = rest.split_whitespace().next().unwrap();
                    assert!(typed.insert(name.to_owned()), "duplicate TYPE for {name}");
                }
                continue;
            }
            // sample line: strip an exemplar suffix, then `name{...} value`
            let sample = match line.split_once(" # ") {
                Some((s, _)) => s.trim_end(),
                None => line,
            };
            let (name_part, value) = sample.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
            let name = name_part.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            if let Some(rest) = name_part.split_once('{').map(|(_, r)| r) {
                assert!(rest.ends_with('}'), "unterminated label set in {line:?}");
            }
        }
        assert!(!typed.is_empty());
    }

    /// Tentpole acceptance: the trace id round-trips through the
    /// `x-qatk-trace` header, and a `/suggest` request leaves a retrievable
    /// tree whose root is `serve.suggest` with rank + text children.
    #[test]
    fn suggest_trace_round_trips_and_captures_a_tree() {
        let _guard = qatk_trace::test_lock();
        qatk_trace::set_enabled(true);
        qatk_trace::store().clear();
        let app = app();
        let mut req = request(
            "POST",
            "/suggest",
            "{\"part_id\":\"P003\",\"text\":\"oil leaking from the housing\"}",
        );
        req.headers
            .push(("x-qatk-trace".to_owned(), "00000000c0ffee00".to_owned()));
        let resp = app.handle(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.trace, 0xC0FF_EE00, "header id echoed back");
        let id = qatk_trace::TraceId::from_u64(0xC0FF_EE00).unwrap();
        let trees = qatk_trace::store().lookup(id);
        assert_eq!(trees.len(), 1, "one tree captured for the pinned id");
        let names: Vec<&str> = trees[0].spans.iter().map(|s| s.name).collect();
        assert_eq!(names[0], "serve.suggest");
        assert!(names.contains(&"core.rank"), "names: {names:?}");
        assert!(
            names.contains(&"text.tokenize") || names.contains(&"text.annotate"),
            "names: {names:?}"
        );

        // with tracing disabled the header still round-trips, silently
        qatk_trace::set_enabled(false);
        let mut req = request("POST", "/suggest", "{\"part_id\":\"P003\",\"text\":\"x\"}");
        req.headers
            .push(("x-qatk-trace".to_owned(), "beef".to_owned()));
        let resp = app.handle(&req);
        qatk_trace::set_enabled(true);
        assert_eq!(resp.trace, 0xBEEF);
        assert!(qatk_trace::store()
            .lookup(qatk_trace::TraceId::from_u64(0xBEEF).unwrap())
            .is_empty());
    }
}
