//! The part-evaluation workflow of paper Fig. 2.
//!
//! "The removed and potentially damaged car part is first evaluated in a
//! short textual report by the mechanic ... It is then shipped to the OEM,
//! where an optional initial report can be written. Next, the car part is
//! sent on to the supplier ... writes a textual report and assigns a damage
//! responsibility code. Eventually, a quality expert at the OEM assigns the
//! car part a final error code and writes a short final report." This module
//! is that process as a state machine with an audit trail.

use std::fmt;

/// Workflow stages, in process order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Part registered, nothing reported yet.
    Registered,
    /// Mechanic report received.
    MechanicReported,
    /// Optional initial OEM assessment done.
    InitiallyAssessed,
    /// Supplier report + responsibility code received.
    SupplierAssessed,
    /// Final error code assigned; case closed.
    Finalized,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Registered => "registered",
            Stage::MechanicReported => "mechanic-reported",
            Stage::InitiallyAssessed => "initially-assessed",
            Stage::SupplierAssessed => "supplier-assessed",
            Stage::Finalized => "finalized",
        };
        f.write_str(s)
    }
}

/// One audit entry: who moved the case to which stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    pub stage: Stage,
    pub actor: String,
    pub note: String,
}

/// Workflow violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Transition not allowed from the current stage.
    InvalidTransition { from: Stage, to: Stage },
    /// The case is closed.
    Finalized,
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::InvalidTransition { from, to } => {
                write!(f, "cannot move from {from} to {to}")
            }
            WorkflowError::Finalized => write!(f, "case is finalized"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// One evaluation case for a damaged part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationCase {
    pub reference_number: String,
    pub part_id: String,
    stage: Stage,
    pub mechanic_report: Option<String>,
    pub initial_report: Option<String>,
    pub supplier_report: Option<String>,
    pub responsibility_code: Option<String>,
    pub final_report: Option<String>,
    pub error_code: Option<String>,
    audit: Vec<AuditEntry>,
}

impl EvaluationCase {
    /// Register a new case.
    pub fn register(
        reference_number: impl Into<String>,
        part_id: impl Into<String>,
        actor: &str,
    ) -> Self {
        let mut case = EvaluationCase {
            reference_number: reference_number.into(),
            part_id: part_id.into(),
            stage: Stage::Registered,
            mechanic_report: None,
            initial_report: None,
            supplier_report: None,
            responsibility_code: None,
            final_report: None,
            error_code: None,
            audit: Vec::new(),
        };
        case.log(Stage::Registered, actor, "case opened");
        case
    }

    fn log(&mut self, stage: Stage, actor: &str, note: &str) {
        self.audit.push(AuditEntry {
            stage,
            actor: actor.to_owned(),
            note: note.to_owned(),
        });
    }

    pub fn stage(&self) -> Stage {
        self.stage
    }

    pub fn audit_trail(&self) -> &[AuditEntry] {
        &self.audit
    }

    fn guard(&self, expected: &[Stage], to: Stage) -> Result<(), WorkflowError> {
        if self.stage == Stage::Finalized {
            return Err(WorkflowError::Finalized);
        }
        if expected.contains(&self.stage) {
            Ok(())
        } else {
            Err(WorkflowError::InvalidTransition {
                from: self.stage,
                to,
            })
        }
    }

    /// Attach the mechanic report (first step).
    pub fn add_mechanic_report(&mut self, actor: &str, text: &str) -> Result<(), WorkflowError> {
        self.guard(&[Stage::Registered], Stage::MechanicReported)?;
        self.mechanic_report = Some(text.to_owned());
        self.stage = Stage::MechanicReported;
        self.log(self.stage, actor, "mechanic report received");
        Ok(())
    }

    /// Attach the optional initial OEM report.
    pub fn add_initial_report(&mut self, actor: &str, text: &str) -> Result<(), WorkflowError> {
        self.guard(&[Stage::MechanicReported], Stage::InitiallyAssessed)?;
        self.initial_report = Some(text.to_owned());
        self.stage = Stage::InitiallyAssessed;
        self.log(self.stage, actor, "initial OEM assessment");
        Ok(())
    }

    /// Attach the supplier report and responsibility code. Allowed directly
    /// after the mechanic report (the initial assessment is optional).
    pub fn add_supplier_report(
        &mut self,
        actor: &str,
        text: &str,
        responsibility_code: &str,
    ) -> Result<(), WorkflowError> {
        self.guard(
            &[Stage::MechanicReported, Stage::InitiallyAssessed],
            Stage::SupplierAssessed,
        )?;
        self.supplier_report = Some(text.to_owned());
        self.responsibility_code = Some(responsibility_code.to_owned());
        self.stage = Stage::SupplierAssessed;
        self.log(self.stage, actor, "supplier assessment");
        Ok(())
    }

    /// Close the case with a final error code and report.
    pub fn finalize(
        &mut self,
        actor: &str,
        error_code: &str,
        final_report: &str,
    ) -> Result<(), WorkflowError> {
        self.guard(&[Stage::SupplierAssessed], Stage::Finalized)?;
        self.error_code = Some(error_code.to_owned());
        self.final_report = Some(final_report.to_owned());
        self.stage = Stage::Finalized;
        self.log(self.stage, actor, "final code assigned");
        Ok(())
    }

    /// The texts available *right now* for classification — what QUEST can
    /// feed the recommender at each point of the process (Experiment 2's
    /// "point of entry" question).
    pub fn available_texts(&self) -> Vec<(&'static str, &str)> {
        let mut out = Vec::new();
        if let Some(t) = &self.mechanic_report {
            out.push(("mechanic_report", t.as_str()));
        }
        if let Some(t) = &self.initial_report {
            out.push(("initial_oem_report", t.as_str()));
        }
        if let Some(t) = &self.supplier_report {
            out.push(("supplier_report", t.as_str()));
        }
        if let Some(t) = &self.final_report {
            out.push(("final_oem_report", t.as_str()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> EvaluationCase {
        EvaluationCase::register("R-1", "P-07", "system")
    }

    #[test]
    fn happy_path_with_initial() {
        let mut c = case();
        assert_eq!(c.stage(), Stage::Registered);
        c.add_mechanic_report("shop-42", "radio dead").unwrap();
        c.add_initial_report("oem-1", "id test 470").unwrap();
        c.add_supplier_report("supplier-x", "Kontakt defekt", "RC-2")
            .unwrap();
        c.finalize("anna", "E0701", "contact melted").unwrap();
        assert_eq!(c.stage(), Stage::Finalized);
        assert_eq!(c.error_code.as_deref(), Some("E0701"));
        assert_eq!(c.audit_trail().len(), 5);
        assert_eq!(c.audit_trail()[4].actor, "anna");
    }

    #[test]
    fn initial_report_is_optional() {
        let mut c = case();
        c.add_mechanic_report("shop", "dead").unwrap();
        c.add_supplier_report("sup", "broken", "RC-1").unwrap();
        assert_eq!(c.stage(), Stage::SupplierAssessed);
        assert!(c.initial_report.is_none());
    }

    #[test]
    fn out_of_order_rejected() {
        let mut c = case();
        assert!(matches!(
            c.add_supplier_report("sup", "x", "RC-1"),
            Err(WorkflowError::InvalidTransition { .. })
        ));
        assert!(matches!(
            c.finalize("anna", "E1", "x"),
            Err(WorkflowError::InvalidTransition { .. })
        ));
        c.add_mechanic_report("shop", "x").unwrap();
        assert!(matches!(
            c.add_mechanic_report("shop", "again"),
            Err(WorkflowError::InvalidTransition { .. })
        ));
        // initial after supplier is too late
        c.add_supplier_report("sup", "x", "RC-1").unwrap();
        assert!(c.add_initial_report("oem", "late").is_err());
    }

    #[test]
    fn finalized_cases_are_closed() {
        let mut c = case();
        c.add_mechanic_report("shop", "x").unwrap();
        c.add_supplier_report("sup", "y", "RC-3").unwrap();
        c.finalize("anna", "E1", "done").unwrap();
        assert!(matches!(
            c.finalize("anna", "E2", "again"),
            Err(WorkflowError::Finalized)
        ));
        assert!(matches!(
            c.add_mechanic_report("shop", "late"),
            Err(WorkflowError::Finalized)
        ));
    }

    #[test]
    fn available_texts_accumulate() {
        let mut c = case();
        assert!(c.available_texts().is_empty());
        c.add_mechanic_report("shop", "m").unwrap();
        assert_eq!(c.available_texts().len(), 1);
        c.add_supplier_report("sup", "s", "RC-1").unwrap();
        let texts = c.available_texts();
        assert_eq!(texts.len(), 2);
        assert_eq!(texts[0].0, "mechanic_report");
        assert_eq!(texts[1].0, "supplier_report");
        c.finalize("anna", "E1", "f").unwrap();
        assert_eq!(c.available_texts().len(), 3);
    }

    #[test]
    fn stage_ordering_and_display() {
        assert!(Stage::Registered < Stage::Finalized);
        assert_eq!(Stage::SupplierAssessed.to_string(), "supplier-assessed");
        let e = WorkflowError::InvalidTransition {
            from: Stage::Registered,
            to: Stage::Finalized,
        };
        assert!(e.to_string().contains("registered"));
    }
}
