//! Users and roles of the QUEST web application.
//!
//! Paper §4.5.4: QUEST reconstructs the OEM's quality-engineering software —
//! "users can view the data and assign error codes", "users with extended
//! rights can define new error codes right in the QUEST interface", and the
//! admin side can "maintain users".

use std::collections::HashMap;
use std::fmt;

/// Access role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// View data and suggestions only.
    Viewer,
    /// Assign final error codes.
    QualityExpert,
    /// QualityExpert + define new error codes ("extended rights").
    Admin,
}

impl Role {
    pub fn can_assign_codes(self) -> bool {
        matches!(self, Role::QualityExpert | Role::Admin)
    }

    pub fn can_create_codes(self) -> bool {
        matches!(self, Role::Admin)
    }

    pub fn can_manage_users(self) -> bool {
        matches!(self, Role::Admin)
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Viewer => "viewer",
            Role::QualityExpert => "quality-expert",
            Role::Admin => "admin",
        };
        f.write_str(s)
    }
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    pub name: String,
    pub role: Role,
    pub active: bool,
}

/// User registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserError {
    Exists(String),
    NotFound(String),
    Forbidden { user: String, action: &'static str },
    Inactive(String),
}

impl fmt::Display for UserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserError::Exists(u) => write!(f, "user `{u}` already exists"),
            UserError::NotFound(u) => write!(f, "no user `{u}`"),
            UserError::Forbidden { user, action } => {
                write!(f, "user `{user}` may not {action}")
            }
            UserError::Inactive(u) => write!(f, "user `{u}` is deactivated"),
        }
    }
}

impl std::error::Error for UserError {}

/// In-memory user registry.
#[derive(Debug, Default, Clone)]
pub struct UserRegistry {
    users: HashMap<String, User>,
}

impl UserRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new user.
    pub fn add(&mut self, name: impl Into<String>, role: Role) -> Result<(), UserError> {
        let name = name.into();
        if self.users.contains_key(&name) {
            return Err(UserError::Exists(name));
        }
        self.users.insert(
            name.clone(),
            User {
                name,
                role,
                active: true,
            },
        );
        Ok(())
    }

    /// Look up a user.
    pub fn get(&self, name: &str) -> Result<&User, UserError> {
        self.users
            .get(name)
            .ok_or_else(|| UserError::NotFound(name.to_owned()))
    }

    /// Change a user's role (admin action, checked by the caller/service).
    pub fn set_role(&mut self, name: &str, role: Role) -> Result<(), UserError> {
        self.users
            .get_mut(name)
            .map(|u| u.role = role)
            .ok_or_else(|| UserError::NotFound(name.to_owned()))
    }

    /// Deactivate a user (no deletion — audit trails reference users).
    pub fn deactivate(&mut self, name: &str) -> Result<(), UserError> {
        self.users
            .get_mut(name)
            .map(|u| u.active = false)
            .ok_or_else(|| UserError::NotFound(name.to_owned()))
    }

    /// Check that `name` exists, is active, and passes `check` on its role.
    pub fn authorize(
        &self,
        name: &str,
        action: &'static str,
        check: impl Fn(Role) -> bool,
    ) -> Result<&User, UserError> {
        let user = self.get(name)?;
        if !user.active {
            return Err(UserError::Inactive(name.to_owned()));
        }
        if !check(user.role) {
            return Err(UserError::Forbidden {
                user: name.to_owned(),
                action,
            });
        }
        Ok(user)
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_permissions() {
        assert!(!Role::Viewer.can_assign_codes());
        assert!(Role::QualityExpert.can_assign_codes());
        assert!(!Role::QualityExpert.can_create_codes());
        assert!(Role::Admin.can_create_codes());
        assert!(Role::Admin.can_manage_users());
        assert!(!Role::Viewer.can_manage_users());
    }

    #[test]
    fn registry_lifecycle() {
        let mut r = UserRegistry::new();
        r.add("anna", Role::QualityExpert).unwrap();
        r.add("ben", Role::Viewer).unwrap();
        assert_eq!(r.len(), 2);
        assert!(matches!(
            r.add("anna", Role::Admin),
            Err(UserError::Exists(_))
        ));
        assert_eq!(r.get("anna").unwrap().role, Role::QualityExpert);
        r.set_role("ben", Role::Admin).unwrap();
        assert_eq!(r.get("ben").unwrap().role, Role::Admin);
        assert!(r.set_role("ghost", Role::Viewer).is_err());
        assert!(r.get("ghost").is_err());
    }

    #[test]
    fn authorization() {
        let mut r = UserRegistry::new();
        r.add("anna", Role::QualityExpert).unwrap();
        r.add("ben", Role::Viewer).unwrap();
        assert!(r
            .authorize("anna", "assign codes", Role::can_assign_codes)
            .is_ok());
        assert!(matches!(
            r.authorize("ben", "assign codes", Role::can_assign_codes),
            Err(UserError::Forbidden { .. })
        ));
        assert!(matches!(
            r.authorize("ghost", "assign codes", Role::can_assign_codes),
            Err(UserError::NotFound(_))
        ));
        r.deactivate("anna").unwrap();
        assert!(matches!(
            r.authorize("anna", "assign codes", Role::can_assign_codes),
            Err(UserError::Inactive(_))
        ));
    }

    #[test]
    fn error_display() {
        for e in [
            UserError::Exists("x".into()),
            UserError::NotFound("x".into()),
            UserError::Forbidden {
                user: "x".into(),
                action: "y",
            },
            UserError::Inactive("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(Role::Admin.to_string(), "admin");
    }
}
