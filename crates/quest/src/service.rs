//! The recommendation service behind the QUEST error-code assignment screen.
//!
//! Paper §4.5.4: "the user is first presented with a selection of the 10 most
//! likely error codes in descending order of likelihood. If the user decides
//! that the correct error code is not among these 10 codes, they can access
//! the list of all error codes available for the part ID of the current data
//! bundle". Scored suggestions and final assignments are persisted
//! relationally (§4.3: "These scored error codes are stored in a relational
//! database and presented to the quality worker via the web app interface").

use qatk_core::prelude::*;
use qatk_corpus::bundle::{DataBundle, SourceSelection};
use qatk_corpus::generator::Corpus;
use qatk_store::prelude::*;
use qatk_text::engine::Pipeline;

use crate::users::{Role, UserError, UserRegistry};

/// Number of suggestions shown on the first screen.
pub const TOP_SUGGESTIONS: usize = 10;

/// What the assignment screen shows for one bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestions {
    pub reference_number: String,
    /// The ranked top-10 (at most).
    pub top: Vec<ScoredCode>,
    /// Fallback: every code known for this part ID, sorted.
    pub all_codes_for_part: Vec<String>,
}

/// Service errors.
#[derive(Debug)]
pub enum ServiceError {
    Store(StoreError),
    User(UserError),
    UnknownCode { code: String, part_id: String },
    AlreadyAssigned { reference: String, code: String },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Store(e) => write!(f, "storage error: {e}"),
            ServiceError::User(e) => write!(f, "user error: {e}"),
            ServiceError::UnknownCode { code, part_id } => {
                write!(f, "code {code} is not defined for part {part_id}")
            }
            ServiceError::AlreadyAssigned { reference, code } => {
                write!(f, "bundle {reference} already carries code {code}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<UserError> for ServiceError {
    fn from(e: UserError) -> Self {
        ServiceError::User(e)
    }
}

/// Result table names used by the service.
pub mod tables {
    /// Scored suggestions per (bundle, code).
    pub const RECOMMENDATIONS: &str = "recommendations";
    /// Final assignments with the assigning user.
    pub const ASSIGNMENTS: &str = "assignments";
}

/// The recommendation service: a trained knowledge base plus the analytics
/// pipeline and the persistence of its outputs.
pub struct RecommendationService {
    kb: KnowledgeBase,
    knn: RankedKnn,
    pipeline: Pipeline,
    space: FeatureSpace,
    model: FeatureModel,
    /// Codes created interactively via [`RecommendationService::create_code`]
    /// (paper: admins "can define new error codes right in the QUEST
    /// interface").
    extra_codes: Vec<(String, String)>,
}

impl RecommendationService {
    /// Train from the coded bundles of a corpus.
    pub fn train(corpus: &Corpus, model: FeatureModel, measure: SimilarityMeasure) -> Self {
        let pipeline = build_pipeline(corpus, model);
        let mut space = FeatureSpace::new();
        let mut kb = KnowledgeBase::new();
        for b in &corpus.bundles {
            let Some(code) = b.error_code.as_deref() else {
                continue;
            };
            let mut cas = b.to_cas(SourceSelection::Training);
            pipeline
                .process(&mut cas)
                .expect("corpus text never fails the pipeline");
            let features = space.extract(&cas, model);
            kb.insert(b.part_id.clone(), code, features);
        }
        RecommendationService {
            kb,
            knn: RankedKnn::new(measure),
            pipeline,
            space,
            model,
            extra_codes: Vec::new(),
        }
    }

    /// Knowledge-base size (configuration instances).
    pub fn kb_len(&self) -> usize {
        self.kb.len()
    }

    /// Suggestions for a (possibly not yet coded) bundle.
    pub fn suggest(&mut self, bundle: &DataBundle) -> Suggestions {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.suggest_latency_ns);
        m.suggest_total.inc();
        let features = self.extract(bundle);
        let ranked = self.knn.rank(&self.kb, &bundle.part_id, &features);
        self.assemble(bundle, ranked)
    }

    /// Suggestions for a whole worklist at once. The rankings come out of
    /// [`RankedKnn::classify_batch`], which fans the bundles across scoped
    /// worker threads with per-thread scratch state — per-bundle results are
    /// identical to calling [`RecommendationService::suggest`] in a loop.
    pub fn suggest_batch(&mut self, bundles: &[&DataBundle]) -> Vec<Suggestions> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.suggest_batch_latency_ns);
        m.suggest_batch_total.inc();
        m.suggest_batch_size.record(bundles.len() as u64);
        let features: Vec<FeatureSet> = bundles.iter().map(|b| self.extract(b)).collect();
        let queries: Vec<BatchQuery<'_>> = bundles
            .iter()
            .zip(&features)
            .map(|(b, f)| BatchQuery {
                part_id: &b.part_id,
                features: f,
            })
            .collect();
        let rankings = self.knn.classify_batch(&self.kb, &queries);
        bundles
            .iter()
            .zip(rankings)
            .map(|(b, ranked)| self.assemble(b, ranked))
            .collect()
    }

    fn extract(&mut self, bundle: &DataBundle) -> FeatureSet {
        let mut cas = bundle.to_cas(SourceSelection::Test);
        self.pipeline
            .process(&mut cas)
            .expect("corpus text never fails the pipeline");
        self.space.extract(&cas, self.model)
    }

    fn assemble(&self, bundle: &DataBundle, mut top: Vec<ScoredCode>) -> Suggestions {
        top.truncate(TOP_SUGGESTIONS);
        let mut all: Vec<String> = self
            .kb
            .codes_for_part(&bundle.part_id)
            .into_iter()
            .map(str::to_owned)
            .collect();
        for (part, code) in &self.extra_codes {
            if part == &bundle.part_id && !all.contains(code) {
                all.push(code.clone());
            }
        }
        all.sort();
        Suggestions {
            reference_number: bundle.reference_number.clone(),
            top,
            all_codes_for_part: all,
        }
    }

    /// Persist scored suggestions (idempotent per bundle: re-suggestion
    /// replaces earlier rows).
    pub fn persist_suggestions(
        &self,
        db: &mut Database,
        s: &Suggestions,
    ) -> Result<(), ServiceError> {
        if !db.has_table(tables::RECOMMENDATIONS) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("reference_number", DataType::Text)
                .col("error_code", DataType::Text)
                .col("score", DataType::Float)
                .col("rank", DataType::Int)
                .build()?;
            db.create_table(tables::RECOMMENDATIONS, schema)?;
            db.table_mut(tables::RECOMMENDATIONS)?.create_index(
                "rec_by_ref",
                "reference_number",
                IndexKind::Hash,
            )?;
        }
        // drop earlier suggestions for this bundle
        let stale: Vec<Value> = db
            .table(tables::RECOMMENDATIONS)?
            .lookup(
                "reference_number",
                &Value::from(s.reference_number.as_str()),
            )?
            .iter()
            .map(|r| r.values()[0].clone())
            .collect();
        for pk in stale {
            db.delete(tables::RECOMMENDATIONS, &pk)?;
        }
        for (rank, sc) in s.top.iter().enumerate() {
            db.insert(
                tables::RECOMMENDATIONS,
                row![
                    format!("{}#{}", s.reference_number, sc.code),
                    s.reference_number.clone(),
                    sc.code.clone(),
                    sc.score,
                    rank as i64
                ],
            )?;
        }
        Ok(())
    }

    /// Record a final code assignment by an authorized user.
    pub fn assign(
        &self,
        db: &mut Database,
        users: &UserRegistry,
        user: &str,
        bundle: &DataBundle,
        code: &str,
    ) -> Result<(), ServiceError> {
        users.authorize(user, "assign error codes", Role::can_assign_codes)?;
        let known = self.kb.codes_for_part(&bundle.part_id).contains(&code)
            || self
                .extra_codes
                .iter()
                .any(|(p, c)| p == &bundle.part_id && c == code);
        if !known {
            return Err(ServiceError::UnknownCode {
                code: code.to_owned(),
                part_id: bundle.part_id.clone(),
            });
        }
        if !db.has_table(tables::ASSIGNMENTS) {
            let schema = SchemaBuilder::new()
                .pk("reference_number", DataType::Text)
                .col("error_code", DataType::Text)
                .col("assigned_by", DataType::Text)
                .build()?;
            db.create_table(tables::ASSIGNMENTS, schema)?;
        }
        if let Some(prev) = db.get(
            tables::ASSIGNMENTS,
            &Value::from(bundle.reference_number.as_str()),
        )? {
            let prev_code = prev.get(1).and_then(Value::as_text).unwrap_or_default();
            return Err(ServiceError::AlreadyAssigned {
                reference: bundle.reference_number.clone(),
                code: prev_code.to_owned(),
            });
        }
        db.insert(
            tables::ASSIGNMENTS,
            row![
                bundle.reference_number.clone(),
                code.to_owned(),
                user.to_owned()
            ],
        )?;
        Ok(())
    }

    /// Define a new error code (extended rights required).
    pub fn create_code(
        &mut self,
        users: &UserRegistry,
        user: &str,
        part_id: &str,
        code: &str,
    ) -> Result<(), ServiceError> {
        users.authorize(user, "create error codes", Role::can_create_codes)?;
        if !self
            .extra_codes
            .iter()
            .any(|(p, c)| p == part_id && c == code)
        {
            self.extra_codes.push((part_id.to_owned(), code.to_owned()));
        }
        Ok(())
    }

    /// Borrow the trained knowledge base (e.g. for cross-source comparison).
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Online learning: once a quality expert has assigned a final code, the
    /// bundle becomes a training instance. kNN is a lazy learner (paper
    /// §4.2), so "learning" is just inserting the new configuration into the
    /// knowledge base — no retraining pass. Returns `true` if the instance
    /// added a new configuration (dedup may absorb it).
    pub fn learn(&mut self, bundle: &DataBundle, code: &str) -> bool {
        let mut cas = bundle.to_cas(SourceSelection::Training);
        // the freshly assigned code's description is not part of the bundle
        // yet; the reports and part description carry the signal
        self.pipeline
            .process(&mut cas)
            .expect("corpus text never fails the pipeline");
        let features = self.space.extract(&cas, self.model);
        self.kb.insert(bundle.part_id.clone(), code, features)
    }

    /// Convenience: record the assignment *and* learn from it in one step.
    pub fn assign_and_learn(
        &mut self,
        db: &mut Database,
        users: &UserRegistry,
        user: &str,
        bundle: &DataBundle,
        code: &str,
    ) -> Result<bool, ServiceError> {
        self.assign(db, users, user, bundle, code)?;
        Ok(self.learn(bundle, code))
    }

    /// Classify a free text with an unknown part ID (the §5.4 external-source
    /// path: the NHTSA complaint has no OEM part ID, so candidate selection
    /// falls back across the whole knowledge base).
    pub fn classify_external(&mut self, text: &str) -> Vec<ScoredCode> {
        self.classify_external_for_part(text, "<external>")
    }

    /// Classify an external text against one part type's knowledge — the
    /// per-part comparison screen, where the external source was pre-filtered
    /// by component category.
    pub fn classify_external_for_part(&mut self, text: &str, part_id: &str) -> Vec<ScoredCode> {
        let features = self.extract_external(text);
        self.knn.rank(&self.kb, part_id, &features)
    }

    /// Batch variant of [`RecommendationService::classify_external_for_part`]:
    /// all texts share one part ID (or `"<external>"` for the unscoped path)
    /// and are ranked in parallel via [`RankedKnn::classify_batch`].
    pub fn classify_external_batch(
        &mut self,
        texts: &[&str],
        part_id: &str,
    ) -> Vec<Vec<ScoredCode>> {
        let features: Vec<FeatureSet> = texts.iter().map(|t| self.extract_external(t)).collect();
        let queries: Vec<BatchQuery<'_>> = features
            .iter()
            .map(|f| BatchQuery {
                part_id,
                features: f,
            })
            .collect();
        self.knn.classify_batch(&self.kb, &queries)
    }

    fn extract_external(&mut self, text: &str) -> FeatureSet {
        let mut cas = qatk_text::cas::Cas::new();
        cas.add_segment("external_text", text);
        self.pipeline
            .process(&mut cas)
            .expect("plain text never fails the pipeline");
        self.space.extract(&cas, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_corpus::generator::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(31))
    }

    fn users() -> UserRegistry {
        let mut u = UserRegistry::new();
        u.add("anna", Role::QualityExpert).unwrap();
        u.add("root", Role::Admin).unwrap();
        u.add("guest", Role::Viewer).unwrap();
        u
    }

    #[test]
    fn suggestions_capped_at_ten_with_fallback_list() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        assert!(svc.kb_len() > 0);
        let b = &c.bundles[0];
        let s = svc.suggest(b);
        assert!(s.top.len() <= TOP_SUGGESTIONS);
        assert!(!s.all_codes_for_part.is_empty());
        // fallback list covers the part's full code inventory observed in data
        for sc in &s.top {
            assert!(s.all_codes_for_part.contains(&sc.code));
        }
        // scores descend
        for w in s.top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn true_code_usually_in_top_ten() {
        let c = corpus();
        let mut svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Jaccard);
        let mut hits = 0;
        let total = 100.min(c.bundles.len());
        for b in c.bundles.iter().take(total) {
            let s = svc.suggest(b);
            let truth = b.error_code.as_deref().unwrap();
            if s.top.iter().any(|sc| sc.code == truth) {
                hits += 1;
            }
        }
        // training data is in the KB, so this is optimistic by construction
        assert!(hits * 10 >= total * 8, "only {hits}/{total} in top-10");
    }

    #[test]
    fn suggest_batch_matches_sequential_suggest() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let worklist: Vec<&DataBundle> = c.bundles.iter().take(40).collect();
        let batch = svc.suggest_batch(&worklist);
        assert_eq!(batch.len(), worklist.len());
        for (b, got) in worklist.iter().zip(&batch) {
            let expected = svc.suggest(b);
            assert_eq!(*got, expected, "batch diverges for {}", b.reference_number);
        }
    }

    #[test]
    fn external_batch_matches_sequential_classification() {
        let c = corpus();
        let mut svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Overlap);
        let texts = [
            "THE COOLING FAN EXHIBITED GRINDING NOISE",
            "SPEAKER RATTLE AT HIGH VOLUME",
            "",
        ];
        let part = c.bundles[0].part_id.clone();
        let batch = svc.classify_external_batch(&texts, &part);
        assert_eq!(batch.len(), texts.len());
        for (t, got) in texts.iter().zip(&batch) {
            let expected = svc.classify_external_for_part(t, &part);
            assert_eq!(*got, expected);
        }
    }

    #[test]
    fn persist_suggestions_roundtrip_and_replace() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let mut db = Database::new();
        let s = svc.suggest(&c.bundles[0]);
        svc.persist_suggestions(&mut db, &s).unwrap();
        let n = db.table(tables::RECOMMENDATIONS).unwrap().len();
        assert_eq!(n, s.top.len());
        // re-persisting replaces, not duplicates
        svc.persist_suggestions(&mut db, &s).unwrap();
        assert_eq!(db.table(tables::RECOMMENDATIONS).unwrap().len(), n);
    }

    #[test]
    fn assignment_requires_rights_and_known_code() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let users = users();
        let mut db = Database::new();
        let b = &c.bundles[0];
        let code = b.error_code.clone().unwrap();

        assert!(matches!(
            svc.assign(&mut db, &users, "guest", b, &code),
            Err(ServiceError::User(UserError::Forbidden { .. }))
        ));
        assert!(matches!(
            svc.assign(&mut db, &users, "anna", b, "E-unknown"),
            Err(ServiceError::UnknownCode { .. })
        ));
        svc.assign(&mut db, &users, "anna", b, &code).unwrap();
        assert!(matches!(
            svc.assign(&mut db, &users, "anna", b, &code),
            Err(ServiceError::AlreadyAssigned { .. })
        ));
        let stored = db
            .get(
                tables::ASSIGNMENTS,
                &Value::from(b.reference_number.as_str()),
            )
            .unwrap()
            .unwrap();
        assert_eq!(stored.get(2).and_then(Value::as_text), Some("anna"));
    }

    #[test]
    fn code_creation_gated_and_visible() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let users = users();
        let b = c.bundles[0].clone();

        assert!(matches!(
            svc.create_code(&users, "anna", &b.part_id, "E-NEW"),
            Err(ServiceError::User(UserError::Forbidden { .. }))
        ));
        svc.create_code(&users, "root", &b.part_id, "E-NEW")
            .unwrap();
        // idempotent
        svc.create_code(&users, "root", &b.part_id, "E-NEW")
            .unwrap();
        let s = svc.suggest(&b);
        assert!(s.all_codes_for_part.contains(&"E-NEW".to_owned()));
        // and assignable now
        let mut db = Database::new();
        svc.assign(&mut db, &users, "anna", &b, "E-NEW").unwrap();
    }

    #[test]
    fn online_learning_adds_configurations() {
        let c = corpus();
        let svc2 = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let before = svc2.kb_len();
        // a brand-new bundle for a known part with a fresh admin-created code
        let mut fresh = c.bundles[0].clone();
        fresh.reference_number = "R-FRESH".into();
        fresh.supplier_report = "Unit received, speaker inspected. Found grinding noise at speaker.              Root cause confirmed per analysis zzqq-99."
            .into();
        fresh.error_code = None;
        fresh.error_description = None;

        let users = users();
        let mut svc2 = svc2;
        svc2.create_code(&users, "root", &fresh.part_id, "E-LEARN")
            .unwrap();
        let mut db = Database::new();
        let added = svc2
            .assign_and_learn(&mut db, &users, "anna", &fresh, "E-LEARN")
            .unwrap();
        assert!(added);
        assert_eq!(svc2.kb_len(), before + 1);
        // the new code is now recommendable for similar future bundles
        let mut similar = fresh.clone();
        similar.reference_number = "R-SIMILAR".into();
        let s = svc2.suggest(&similar);
        assert!(s.top.iter().any(|sc| sc.code == "E-LEARN"));
    }

    #[test]
    fn learning_identical_configuration_is_deduped() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let before = svc.kb_len();
        let b = c.bundles[0].clone();
        let code = b.error_code.clone().unwrap();
        // the exact training bundle re-learned adds nothing
        let added = svc.learn(&b, &code);
        assert!(!added);
        assert_eq!(svc.kb_len(), before);
    }

    #[test]
    fn external_classification_works_without_part_id() {
        let c = corpus();
        let mut svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let ranked = svc.classify_external("THE COOLING FAN EXHIBITED GRINDING NOISE");
        // unknown part falls back across the whole KB; some suggestion appears
        assert!(!ranked.is_empty());
    }
}
