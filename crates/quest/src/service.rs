//! The recommendation service behind the QUEST error-code assignment screen.
//!
//! Paper §4.5.4: "the user is first presented with a selection of the 10 most
//! likely error codes in descending order of likelihood. If the user decides
//! that the correct error code is not among these 10 codes, they can access
//! the list of all error codes available for the part ID of the current data
//! bundle". Scored suggestions and final assignments are persisted
//! relationally (§4.3: "These scored error codes are stored in a relational
//! database and presented to the quality worker via the web app interface").
//!
//! ## Concurrency model (DESIGN.md §8)
//!
//! The whole serving path is `&self`: every query loads the currently
//! published [`KnowledgeSnapshot`] from an [`EpochCell`] (one read lock + one
//! `Arc` clone) and runs entirely against that immutable snapshot — frozen
//! vocabulary, sealed knowledge base, precomputed per-part code lists.
//! Writers ([`RecommendationService::learn`],
//! [`RecommendationService::create_code`], or the batched
//! [`RecommendationService::enqueue_learn`] →
//! [`RecommendationService::publish_pending`] path) serialize on a pending
//! mutex, rebuild the next snapshot copy-on-write, and publish it with one
//! atomic pointer swap. In-flight readers finish on the epoch they loaded;
//! new queries observe the new epoch.

use std::sync::{Arc, Mutex, PoisonError};

use qatk_core::prelude::*;
use qatk_corpus::bundle::{DataBundle, SourceSelection};
use qatk_corpus::generator::Corpus;
use qatk_store::prelude::*;
use qatk_text::cas::Cas;
use qatk_text::engine::Pipeline;

use crate::users::{Role, UserError, UserRegistry};

/// Number of suggestions shown on the first screen.
pub const TOP_SUGGESTIONS: usize = 10;

/// What the assignment screen shows for one bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestions {
    pub reference_number: String,
    /// The ranked top-10 (at most).
    pub top: Vec<ScoredCode>,
    /// Fallback: every code known for this part ID, sorted. A cheap clone of
    /// the list the snapshot precomputed at seal time.
    pub all_codes_for_part: Arc<[String]>,
}

/// Service errors.
#[derive(Debug)]
pub enum ServiceError {
    Store(StoreError),
    User(UserError),
    UnknownCode { code: String, part_id: String },
    AlreadyAssigned { reference: String, code: String },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Store(e) => write!(f, "storage error: {e}"),
            ServiceError::User(e) => write!(f, "user error: {e}"),
            ServiceError::UnknownCode { code, part_id } => {
                write!(f, "code {code} is not defined for part {part_id}")
            }
            ServiceError::AlreadyAssigned { reference, code } => {
                write!(f, "bundle {reference} already carries code {code}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<UserError> for ServiceError {
    fn from(e: UserError) -> Self {
        ServiceError::User(e)
    }
}

/// Result table names used by the service.
pub mod tables {
    /// Scored suggestions per (bundle, code).
    pub const RECOMMENDATIONS: &str = "recommendations";
    /// Final assignments with the assigning user.
    pub const ASSIGNMENTS: &str = "assignments";
}

/// What [`RecommendationService::recover`] reconstructed from disk.
pub struct RecoveredService {
    /// The service, if the recovered store held a persisted knowledge
    /// snapshot (`None` on a fresh store).
    pub service: Option<RecommendationService>,
    /// The recovered store, ready for further logged writes.
    pub store: LoggedDatabase,
    /// What recovery found: snapshot, segments, replayed records, torn tail.
    pub report: RecoveryReport,
}

/// A learn instance waiting for the next snapshot publish: the raw training
/// CAS plus its (part, code) label. Processing and extraction happen at
/// publish time against the builder's growing vocabulary.
struct PendingInstance {
    cas: Cas,
    part_id: String,
    code: String,
}

/// The recommendation service: an epoch-swapped knowledge snapshot serving
/// `&self` queries, plus a pending delta for incremental learning and the
/// persistence of its outputs.
///
/// Ranking is fully snapshot-driven: the snapshot carries the ranker trained
/// at seal time ([`KnowledgeSnapshot::ranker`]), so the service — and the
/// HTTP layer above it — never names a classifier family. Adding a family to
/// the zoo requires zero changes here.
pub struct RecommendationService {
    current: EpochCell<KnowledgeSnapshot>,
    pending: Mutex<Vec<PendingInstance>>,
}

impl RecommendationService {
    /// Train from the coded bundles of a corpus with the paper's ranked kNN.
    pub fn train(corpus: &Corpus, model: FeatureModel, measure: SimilarityMeasure) -> Self {
        Self::train_with(
            corpus,
            model,
            RankerConfig::new(ClassifierFamily::Knn, measure),
        )
    }

    /// Train from the coded bundles of a corpus with an explicit classifier
    /// family + measure (the `--classifier` path of the CLI).
    pub fn train_with(corpus: &Corpus, model: FeatureModel, ranker: RankerConfig) -> Self {
        let pipeline = Arc::new(build_pipeline(corpus, model));
        let mut builder = SnapshotBuilder::new(pipeline, model).with_ranker(ranker);
        for b in &corpus.bundles {
            let Some(code) = b.error_code.as_deref() else {
                continue;
            };
            let mut cas = b.to_cas(SourceSelection::Training);
            builder
                .train_instance(&mut cas, &b.part_id, code)
                .expect("corpus text never fails the pipeline");
        }
        Self::from_snapshot(builder.seal())
    }

    /// Wrap an already sealed snapshot (e.g. one loaded from a database).
    /// The snapshot brings its own trained ranker.
    pub fn from_snapshot(snapshot: KnowledgeSnapshot) -> Self {
        crate::metrics::metrics().epoch.set(snapshot.epoch() as i64);
        RecommendationService {
            current: EpochCell::new(snapshot),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Resume from the newest snapshot persisted in `db`, if any. The
    /// classifier family and measure come from the persisted snapshot meta.
    pub fn load_latest(db: &Database, pipeline: Arc<Pipeline>) -> StoreResult<Option<Self>> {
        Ok(KnowledgeSnapshot::load_latest(db, pipeline)?.map(Self::from_snapshot))
    }

    /// Persist the currently published snapshot under its epoch.
    pub fn save_snapshot(&self, db: &mut Database) -> StoreResult<()> {
        self.current.load().save_to_db(db)
    }

    /// Persist the published snapshot into `db` and write the whole
    /// database to `path` atomically (temp file + fsync + rename + parent
    /// directory fsync): a crash mid-save never destroys the previous
    /// snapshot file.
    pub fn save_snapshot_file(
        &self,
        db: &mut Database,
        path: impl AsRef<std::path::Path>,
    ) -> StoreResult<()> {
        self.save_snapshot(db)?;
        db.save(path)
    }

    /// Crash-safe resume: recover the store from `snapshot_path` plus every
    /// surviving WAL segment (DESIGN.md §9), then rebuild the service from
    /// the newest knowledge snapshot persisted in it. Damage surfaces as an
    /// `Err` and a store without a persisted snapshot as `service: None` —
    /// recovery reports its outcome instead of panicking.
    pub fn recover(
        snapshot_path: impl AsRef<std::path::Path>,
        wal_path: impl AsRef<std::path::Path>,
        policy: SyncPolicy,
        pipeline: Arc<Pipeline>,
    ) -> StoreResult<RecoveredService> {
        Self::recover_with_retention(
            snapshot_path,
            wal_path,
            policy,
            SegmentRetention::default(),
            pipeline,
        )
    }

    /// [`RecommendationService::recover`] with an explicit sealed-segment
    /// retention policy. A replicating leader opens with
    /// [`SegmentRetention::Keep`] so followers can resume from recent
    /// sealed segments instead of forcing a full snapshot reseed.
    pub fn recover_with_retention(
        snapshot_path: impl AsRef<std::path::Path>,
        wal_path: impl AsRef<std::path::Path>,
        policy: SyncPolicy,
        retention: SegmentRetention,
        pipeline: Arc<Pipeline>,
    ) -> StoreResult<RecoveredService> {
        let (store, report) =
            LoggedDatabase::open_with_retention(snapshot_path, wal_path, policy, retention)?;
        let service = Self::load_latest(store.db(), pipeline)?;
        Ok(RecoveredService {
            service,
            store,
            report,
        })
    }

    /// The currently published snapshot. Hold the `Arc` to pin an epoch
    /// across several calls (e.g. a consistent paginated worklist).
    pub fn snapshot(&self) -> Arc<KnowledgeSnapshot> {
        self.current.load()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.load().epoch()
    }

    /// Knowledge-base size (configuration instances).
    pub fn kb_len(&self) -> usize {
        self.current.load().kb().len()
    }

    /// Label of the feature model the published snapshot was trained under
    /// (e.g. `bag-of-concepts`, `char-ngrams-3-5`).
    pub fn model_label(&self) -> String {
        self.current.load().model().label()
    }

    /// Label of the classifier family serving queries (e.g. `knn`,
    /// `centroid`).
    pub fn classifier_label(&self) -> &'static str {
        self.current.load().ranker_config().family.label()
    }

    /// Label of the similarity measure configured for the ranker.
    pub fn measure_label(&self) -> &'static str {
        self.current.load().ranker_config().measure.label()
    }

    /// Suggestions for a (possibly not yet coded) bundle.
    pub fn suggest(&self, bundle: &DataBundle) -> Suggestions {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.suggest_latency_ns);
        m.suggest_total.inc();
        self.suggest_on(&self.current.load(), bundle)
    }

    /// [`RecommendationService::suggest`] against a caller-pinned snapshot —
    /// every bundle of a worklist sees the same epoch even if a publish
    /// lands mid-iteration.
    pub fn suggest_on(&self, snapshot: &KnowledgeSnapshot, bundle: &DataBundle) -> Suggestions {
        let features = Self::extract_with(snapshot, bundle);
        // dispatch through the snapshot's seal-time-trained ranker; the kNN
        // family serves off the sealed segment (same results as the live
        // index, asserted by `ranking_equivalence`)
        let ranked = snapshot.ranker().rank(
            snapshot.kb(),
            Some(snapshot.index()),
            &bundle.part_id,
            &features,
        );
        Self::assemble(snapshot, bundle, ranked)
    }

    /// Suggestions for a whole worklist at once. The rankings come out of
    /// [`qatk_core::zoo::Classifier::rank_batch`], which fans the bundles
    /// across scoped worker threads — per-bundle results are identical to
    /// calling [`RecommendationService::suggest`] in a loop, and the whole
    /// batch runs on one pinned snapshot regardless of concurrent publishes.
    pub fn suggest_batch(&self, bundles: &[&DataBundle]) -> Vec<Suggestions> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.suggest_batch_latency_ns);
        m.suggest_batch_total.inc();
        m.suggest_batch_size.record(bundles.len() as u64);
        let snapshot = self.current.load();
        let features: Vec<FeatureSet> = bundles
            .iter()
            .map(|b| Self::extract_with(&snapshot, b))
            .collect();
        let queries: Vec<BatchQuery<'_>> = bundles
            .iter()
            .zip(&features)
            .map(|(b, f)| BatchQuery {
                part_id: &b.part_id,
                features: f,
            })
            .collect();
        let rankings =
            snapshot
                .ranker()
                .rank_batch(snapshot.kb(), Some(snapshot.index()), &queries);
        bundles
            .iter()
            .zip(rankings)
            .map(|(b, ranked)| Self::assemble(&snapshot, b, ranked))
            .collect()
    }

    fn extract_with(snapshot: &KnowledgeSnapshot, bundle: &DataBundle) -> FeatureSet {
        let mut cas = bundle.to_cas(SourceSelection::Test);
        snapshot
            .process_and_extract(&mut cas)
            .expect("corpus text never fails the pipeline")
    }

    fn assemble(
        snapshot: &KnowledgeSnapshot,
        bundle: &DataBundle,
        mut top: Vec<ScoredCode>,
    ) -> Suggestions {
        top.truncate(TOP_SUGGESTIONS);
        Suggestions {
            reference_number: bundle.reference_number.clone(),
            top,
            all_codes_for_part: snapshot.codes_for_part(&bundle.part_id),
        }
    }

    /// Persist scored suggestions (idempotent per bundle: re-suggestion
    /// replaces earlier rows).
    pub fn persist_suggestions(
        &self,
        db: &mut Database,
        s: &Suggestions,
    ) -> Result<(), ServiceError> {
        if !db.has_table(tables::RECOMMENDATIONS) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("reference_number", DataType::Text)
                .col("error_code", DataType::Text)
                .col("score", DataType::Float)
                .col("rank", DataType::Int)
                .build()?;
            db.create_table(tables::RECOMMENDATIONS, schema)?;
            db.table_mut(tables::RECOMMENDATIONS)?.create_index(
                "rec_by_ref",
                "reference_number",
                IndexKind::Hash,
            )?;
        }
        // drop earlier suggestions for this bundle
        let stale: Vec<Value> = db
            .table(tables::RECOMMENDATIONS)?
            .lookup(
                "reference_number",
                &Value::from(s.reference_number.as_str()),
            )?
            .iter()
            .map(|r| r.values()[0].clone())
            .collect();
        for pk in stale {
            db.delete(tables::RECOMMENDATIONS, &pk)?;
        }
        for (rank, sc) in s.top.iter().enumerate() {
            db.insert(
                tables::RECOMMENDATIONS,
                row![
                    format!("{}#{}", s.reference_number, sc.code),
                    s.reference_number.clone(),
                    sc.code.clone(),
                    sc.score,
                    rank as i64
                ],
            )?;
        }
        Ok(())
    }

    /// Record a final code assignment by an authorized user.
    pub fn assign(
        &self,
        db: &mut Database,
        users: &UserRegistry,
        user: &str,
        bundle: &DataBundle,
        code: &str,
    ) -> Result<(), ServiceError> {
        users.authorize(user, "assign error codes", Role::can_assign_codes)?;
        let known = self
            .current
            .load()
            .codes_for_part(&bundle.part_id)
            .iter()
            .any(|c| c == code);
        if !known {
            return Err(ServiceError::UnknownCode {
                code: code.to_owned(),
                part_id: bundle.part_id.clone(),
            });
        }
        if !db.has_table(tables::ASSIGNMENTS) {
            let schema = SchemaBuilder::new()
                .pk("reference_number", DataType::Text)
                .col("error_code", DataType::Text)
                .col("assigned_by", DataType::Text)
                .build()?;
            db.create_table(tables::ASSIGNMENTS, schema)?;
        }
        if let Some(prev) = db.get(
            tables::ASSIGNMENTS,
            &Value::from(bundle.reference_number.as_str()),
        )? {
            let prev_code = prev.get(1).and_then(Value::as_text).unwrap_or_default();
            return Err(ServiceError::AlreadyAssigned {
                reference: bundle.reference_number.clone(),
                code: prev_code.to_owned(),
            });
        }
        db.insert(
            tables::ASSIGNMENTS,
            row![
                bundle.reference_number.clone(),
                code.to_owned(),
                user.to_owned()
            ],
        )?;
        Ok(())
    }

    /// Define a new error code (extended rights required). Publishes a new
    /// epoch whose per-part code lists include it.
    pub fn create_code(
        &self,
        users: &UserRegistry,
        user: &str,
        part_id: &str,
        code: &str,
    ) -> Result<(), ServiceError> {
        users.authorize(user, "create error codes", Role::can_create_codes)?;
        self.mutate(|builder| {
            builder.declare_code(part_id, code);
        });
        Ok(())
    }

    /// The currently published knowledge base. The returned guard is the
    /// whole snapshot — hold it while reading the knowledge base.
    pub fn knowledge_base(&self) -> Arc<KnowledgeSnapshot> {
        self.current.load()
    }

    /// Online learning: once a quality expert has assigned a final code, the
    /// bundle becomes a training instance. kNN is a lazy learner (paper
    /// §4.2), so "learning" inserts the new configuration into a
    /// copy-on-write successor snapshot and publishes it as the next epoch —
    /// no retraining pass, and concurrent readers are never blocked. Returns
    /// `true` if the instance added a new configuration (dedup may absorb
    /// it). Any instances enqueued via
    /// [`RecommendationService::enqueue_learn`] ride along in the same
    /// publish.
    pub fn learn(&self, bundle: &DataBundle, code: &str) -> bool {
        // the freshly assigned code's description is not part of the bundle
        // yet; the reports and part description carry the signal
        let mut cas = bundle.to_cas(SourceSelection::Training);
        let part_id = bundle.part_id.clone();
        let added = self.mutate(|builder| {
            builder
                .train_instance(&mut cas, &part_id, code)
                .expect("corpus text never fails the pipeline")
        });
        if added {
            crate::metrics::metrics().learned_total.inc();
        }
        added
    }

    /// Enqueue a learn instance without publishing: the bundle's training CAS
    /// joins the pending delta and becomes visible only at the next
    /// [`RecommendationService::publish_pending`] (or any other publish).
    /// Lets a burst of assignments amortize one epoch swap.
    pub fn enqueue_learn(&self, bundle: &DataBundle, code: &str) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        pending.push(PendingInstance {
            cas: bundle.to_cas(SourceSelection::Training),
            part_id: bundle.part_id.clone(),
            code: code.to_owned(),
        });
        crate::metrics::metrics()
            .pending_delta
            .set(pending.len() as i64);
    }

    /// Learn instances enqueued but not yet published.
    pub fn pending_len(&self) -> usize {
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Publish every enqueued learn instance as one new epoch. Returns how
    /// many added a new configuration (dedup may absorb some). No-op — and no
    /// epoch churn — when nothing is pending.
    pub fn publish_pending(&self) -> usize {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        if pending.is_empty() {
            return 0;
        }
        let snapshot = self.current.load();
        let mut builder = SnapshotBuilder::from_snapshot(&snapshot);
        let added = Self::drain_into(&mut pending, &mut builder);
        self.install(builder.seal());
        crate::metrics::metrics().learned_total.add(added as u64);
        added
    }

    /// Single-writer mutation: serializes on the pending lock, folds any
    /// enqueued instances into a copy-on-write builder, applies `f`, seals,
    /// and publishes the next epoch.
    fn mutate<R>(&self, f: impl FnOnce(&mut SnapshotBuilder) -> R) -> R {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        let snapshot = self.current.load();
        let mut builder = SnapshotBuilder::from_snapshot(&snapshot);
        Self::drain_into(&mut pending, &mut builder);
        let out = f(&mut builder);
        self.install(builder.seal());
        out
    }

    /// Move every pending instance into the builder; returns how many added
    /// a new configuration. Caller holds the pending lock.
    fn drain_into(pending: &mut Vec<PendingInstance>, builder: &mut SnapshotBuilder) -> usize {
        let mut added = 0;
        for mut p in pending.drain(..) {
            if builder
                .train_instance(&mut p.cas, &p.part_id, &p.code)
                .expect("corpus text never fails the pipeline")
            {
                added += 1;
            }
        }
        crate::metrics::metrics().pending_delta.set(0);
        added
    }

    /// Publish an externally produced snapshot as the new epoch — the read
    /// replica path: a follower replays the leader's WAL, loads the newest
    /// persisted epoch, and republishes it here so `/suggest` serves it with
    /// zero serve-layer changes. The caller is responsible for monotonicity
    /// (the replica loop tracks the last persisted epoch it republished).
    pub fn publish_snapshot(&self, next: KnowledgeSnapshot) {
        self.install(next);
    }

    /// Publish a sealed snapshot as the new epoch and update the gauges.
    fn install(&self, next: KnowledgeSnapshot) {
        let m = crate::metrics::metrics();
        m.epoch.set(next.epoch() as i64);
        m.epoch_swaps_total.inc();
        self.current.publish(next);
    }

    /// Convenience: record the assignment *and* learn from it in one step.
    pub fn assign_and_learn(
        &self,
        db: &mut Database,
        users: &UserRegistry,
        user: &str,
        bundle: &DataBundle,
        code: &str,
    ) -> Result<bool, ServiceError> {
        self.assign(db, users, user, bundle, code)?;
        Ok(self.learn(bundle, code))
    }

    /// Classify a free text with an unknown part ID (the §5.4 external-source
    /// path: the NHTSA complaint has no OEM part ID, so candidate selection
    /// falls back across the whole knowledge base).
    pub fn classify_external(&self, text: &str) -> Vec<ScoredCode> {
        self.classify_external_for_part(text, "<external>")
    }

    /// Classify an external text against one part type's knowledge — the
    /// per-part comparison screen, where the external source was pre-filtered
    /// by component category.
    pub fn classify_external_for_part(&self, text: &str, part_id: &str) -> Vec<ScoredCode> {
        let snapshot = self.current.load();
        let features = Self::extract_external(&snapshot, text);
        snapshot
            .ranker()
            .rank(snapshot.kb(), Some(snapshot.index()), part_id, &features)
    }

    /// Batch variant of [`RecommendationService::classify_external_for_part`]:
    /// all texts share one part ID (or `"<external>"` for the unscoped path)
    /// and are ranked in parallel via
    /// [`qatk_core::zoo::Classifier::rank_batch`].
    pub fn classify_external_batch(&self, texts: &[&str], part_id: &str) -> Vec<Vec<ScoredCode>> {
        self.classify_external_batch_on(&self.current.load(), texts, part_id)
    }

    /// [`RecommendationService::classify_external_batch`] against a
    /// caller-pinned snapshot — the serving layer reports the epoch a batch
    /// actually ran on, so the whole batch must see exactly that epoch even
    /// if a publish lands mid-request.
    pub fn classify_external_batch_on(
        &self,
        snapshot: &KnowledgeSnapshot,
        texts: &[&str],
        part_id: &str,
    ) -> Vec<Vec<ScoredCode>> {
        let features: Vec<FeatureSet> = texts
            .iter()
            .map(|t| Self::extract_external(snapshot, t))
            .collect();
        let queries: Vec<BatchQuery<'_>> = features
            .iter()
            .map(|f| BatchQuery {
                part_id,
                features: f,
            })
            .collect();
        snapshot
            .ranker()
            .rank_batch(snapshot.kb(), Some(snapshot.index()), &queries)
    }

    fn extract_external(snapshot: &KnowledgeSnapshot, text: &str) -> FeatureSet {
        let mut cas = Cas::new();
        cas.add_segment("external_text", text);
        snapshot
            .process_and_extract(&mut cas)
            .expect("plain text never fails the pipeline")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_corpus::generator::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(31))
    }

    fn users() -> UserRegistry {
        let mut u = UserRegistry::new();
        u.add("anna", Role::QualityExpert).unwrap();
        u.add("root", Role::Admin).unwrap();
        u.add("guest", Role::Viewer).unwrap();
        u
    }

    /// Regression for the poisoned-mutex policy: a request thread that
    /// panics while holding the pending-delta lock must not wedge the
    /// service — the lock guards plain data that stays consistent across a
    /// panic, so later learns and publishes recover it via
    /// `PoisonError::into_inner` and keep publishing epochs.
    #[test]
    fn learns_still_publish_after_a_panicked_thread_poisons_the_lock() {
        let c = corpus();
        let svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Jaccard);
        let before = svc.epoch();

        // poison the pending lock: panic while holding the guard
        std::thread::scope(|scope| {
            let poisoner = scope.spawn(|| {
                let _guard = svc.pending.lock().unwrap();
                panic!("poison the pending lock");
            });
            assert!(poisoner.join().is_err(), "the poisoner must panic");
        });
        assert!(svc.pending.is_poisoned(), "lock is poisoned");

        // every pending-lock path still works
        let bundle = &c.bundles[0];
        svc.enqueue_learn(bundle, "E999-01");
        assert_eq!(svc.pending_len(), 1);
        let added = svc.publish_pending();
        assert_eq!(added, 1);
        assert_eq!(svc.epoch(), before + 1, "the learn published a new epoch");
        assert!(svc.learn(bundle, "E999-02"));
        assert_eq!(svc.epoch(), before + 2);
    }

    #[test]
    fn suggestions_capped_at_ten_with_fallback_list() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        assert!(svc.kb_len() > 0);
        let b = &c.bundles[0];
        let s = svc.suggest(b);
        assert!(s.top.len() <= TOP_SUGGESTIONS);
        assert!(!s.all_codes_for_part.is_empty());
        // fallback list covers the part's full code inventory observed in data
        for sc in &s.top {
            assert!(s.all_codes_for_part.contains(&sc.code));
        }
        // scores descend
        for w in s.top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn true_code_usually_in_top_ten() {
        let c = corpus();
        let svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Jaccard);
        let mut hits = 0;
        let total = 100.min(c.bundles.len());
        for b in c.bundles.iter().take(total) {
            let s = svc.suggest(b);
            let truth = b.error_code.as_deref().unwrap();
            if s.top.iter().any(|sc| sc.code == truth) {
                hits += 1;
            }
        }
        // training data is in the KB, so this is optimistic by construction
        assert!(hits * 10 >= total * 8, "only {hits}/{total} in top-10");
    }

    #[test]
    fn suggest_batch_matches_sequential_suggest() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let worklist: Vec<&DataBundle> = c.bundles.iter().take(40).collect();
        let batch = svc.suggest_batch(&worklist);
        assert_eq!(batch.len(), worklist.len());
        for (b, got) in worklist.iter().zip(&batch) {
            let expected = svc.suggest(b);
            assert_eq!(*got, expected, "batch diverges for {}", b.reference_number);
        }
    }

    #[test]
    fn external_batch_matches_sequential_classification() {
        let c = corpus();
        let svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Overlap);
        let texts = [
            "THE COOLING FAN EXHIBITED GRINDING NOISE",
            "SPEAKER RATTLE AT HIGH VOLUME",
            "",
        ];
        let part = c.bundles[0].part_id.clone();
        let batch = svc.classify_external_batch(&texts, &part);
        assert_eq!(batch.len(), texts.len());
        for (t, got) in texts.iter().zip(&batch) {
            let expected = svc.classify_external_for_part(t, &part);
            assert_eq!(*got, expected);
        }
    }

    #[test]
    fn persist_suggestions_roundtrip_and_replace() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let mut db = Database::new();
        let s = svc.suggest(&c.bundles[0]);
        svc.persist_suggestions(&mut db, &s).unwrap();
        let n = db.table(tables::RECOMMENDATIONS).unwrap().len();
        assert_eq!(n, s.top.len());
        // re-persisting replaces, not duplicates
        svc.persist_suggestions(&mut db, &s).unwrap();
        assert_eq!(db.table(tables::RECOMMENDATIONS).unwrap().len(), n);
    }

    #[test]
    fn assignment_requires_rights_and_known_code() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let users = users();
        let mut db = Database::new();
        let b = &c.bundles[0];
        let code = b.error_code.clone().unwrap();

        assert!(matches!(
            svc.assign(&mut db, &users, "guest", b, &code),
            Err(ServiceError::User(UserError::Forbidden { .. }))
        ));
        assert!(matches!(
            svc.assign(&mut db, &users, "anna", b, "E-unknown"),
            Err(ServiceError::UnknownCode { .. })
        ));
        svc.assign(&mut db, &users, "anna", b, &code).unwrap();
        assert!(matches!(
            svc.assign(&mut db, &users, "anna", b, &code),
            Err(ServiceError::AlreadyAssigned { .. })
        ));
        let stored = db
            .get(
                tables::ASSIGNMENTS,
                &Value::from(b.reference_number.as_str()),
            )
            .unwrap()
            .unwrap();
        assert_eq!(stored.get(2).and_then(Value::as_text), Some("anna"));
    }

    #[test]
    fn code_creation_gated_and_visible() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let users = users();
        let b = c.bundles[0].clone();
        let epoch_before = svc.epoch();

        assert!(matches!(
            svc.create_code(&users, "anna", &b.part_id, "E-NEW"),
            Err(ServiceError::User(UserError::Forbidden { .. }))
        ));
        svc.create_code(&users, "root", &b.part_id, "E-NEW")
            .unwrap();
        // idempotent (each call still publishes an epoch; the code list is
        // unchanged the second time)
        svc.create_code(&users, "root", &b.part_id, "E-NEW")
            .unwrap();
        assert!(svc.epoch() > epoch_before);
        let s = svc.suggest(&b);
        assert!(s.all_codes_for_part.contains(&"E-NEW".to_owned()));
        assert_eq!(
            s.all_codes_for_part
                .iter()
                .filter(|c| c.as_str() == "E-NEW")
                .count(),
            1
        );
        // and assignable now
        let mut db = Database::new();
        svc.assign(&mut db, &users, "anna", &b, "E-NEW").unwrap();
    }

    #[test]
    fn online_learning_adds_configurations() {
        let c = corpus();
        let svc2 = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let before = svc2.kb_len();
        // a brand-new bundle for a known part with a fresh admin-created code
        let mut fresh = c.bundles[0].clone();
        fresh.reference_number = "R-FRESH".into();
        fresh.supplier_report = "Unit received, speaker inspected. Found grinding noise at speaker.              Root cause confirmed per analysis zzqq-99."
            .into();
        fresh.error_code = None;
        fresh.error_description = None;

        let users = users();
        svc2.create_code(&users, "root", &fresh.part_id, "E-LEARN")
            .unwrap();
        let mut db = Database::new();
        let added = svc2
            .assign_and_learn(&mut db, &users, "anna", &fresh, "E-LEARN")
            .unwrap();
        assert!(added);
        assert_eq!(svc2.kb_len(), before + 1);
        // the new code is now recommendable for similar future bundles
        let mut similar = fresh.clone();
        similar.reference_number = "R-SIMILAR".into();
        let s = svc2.suggest(&similar);
        assert!(s.top.iter().any(|sc| sc.code == "E-LEARN"));
    }

    #[test]
    fn learning_identical_configuration_is_deduped() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let before = svc.kb_len();
        let b = c.bundles[0].clone();
        let code = b.error_code.clone().unwrap();
        // the exact training bundle re-learned adds nothing
        let added = svc.learn(&b, &code);
        assert!(!added);
        assert_eq!(svc.kb_len(), before);
    }

    #[test]
    fn learn_publishes_a_new_epoch_old_readers_unaffected() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let pinned = svc.snapshot();
        let epoch0 = pinned.epoch();
        let kb0 = pinned.kb().len();

        let mut fresh = c.bundles[0].clone();
        fresh.reference_number = "R-EPOCH".into();
        fresh.supplier_report = "entirely fresh supplier narrative qq-17".into();
        svc.learn(&fresh, c.bundles[0].error_code.as_deref().unwrap());

        // the pinned snapshot still answers from the old epoch …
        assert_eq!(pinned.epoch(), epoch0);
        assert_eq!(pinned.kb().len(), kb0);
        // … while the service has moved on
        assert_eq!(svc.epoch(), epoch0 + 1);
    }

    #[test]
    fn enqueue_then_publish_batches_one_epoch_swap() {
        let c = corpus();
        // bag-of-words: the fresh narrative tokens below become features, so
        // neither instance dedups away
        let svc =
            RecommendationService::train(&c, FeatureModel::BagOfWords, SimilarityMeasure::Jaccard);
        let epoch0 = svc.epoch();
        let kb0 = svc.kb_len();

        let code = c.bundles[0].error_code.clone().unwrap();
        for (i, report) in ["fresh narrative aa-1", "fresh narrative bb-2"]
            .iter()
            .enumerate()
        {
            let mut fresh = c.bundles[0].clone();
            fresh.reference_number = format!("R-PEND-{i}");
            fresh.supplier_report = (*report).into();
            svc.enqueue_learn(&fresh, &code);
        }
        assert_eq!(svc.pending_len(), 2);
        // nothing visible yet — no publish happened
        assert_eq!(svc.epoch(), epoch0);
        assert_eq!(svc.kb_len(), kb0);

        let added = svc.publish_pending();
        assert_eq!(added, 2);
        assert_eq!(svc.pending_len(), 0);
        // exactly one epoch swap for the whole batch
        assert_eq!(svc.epoch(), epoch0 + 1);
        assert_eq!(svc.kb_len(), kb0 + 2);
        // republishing with an empty delta is a no-op
        assert_eq!(svc.publish_pending(), 0);
        assert_eq!(svc.epoch(), epoch0 + 1);
    }

    #[test]
    fn snapshot_persistence_roundtrip_through_service() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        // move past epoch 0 so load-latest has something to choose
        let mut fresh = c.bundles[0].clone();
        fresh.reference_number = "R-PERSIST".into();
        fresh.supplier_report = "narrative for persistence cc-3".into();
        svc.learn(&fresh, c.bundles[0].error_code.as_deref().unwrap());

        let mut db = Database::new();
        svc.save_snapshot(&mut db).unwrap();

        let pipeline = Arc::clone(svc.snapshot().pipeline());
        let restored = RecommendationService::load_latest(&db, pipeline)
            .unwrap()
            .unwrap();
        assert_eq!(restored.epoch(), svc.epoch());
        assert_eq!(restored.kb_len(), svc.kb_len());
        // restored service suggests identically
        for b in c.bundles.iter().take(10) {
            assert_eq!(restored.suggest(b), svc.suggest(b));
        }
        // an empty database yields no service
        assert!(RecommendationService::load_latest(
            &Database::new(),
            Arc::clone(svc.snapshot().pipeline()),
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn recover_resumes_service_from_atomic_snapshot_file() {
        let dir = std::env::temp_dir().join(format!("qatk_svc_recover_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("service.qdb");
        let wal = dir.join("service.wal");

        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let mut db = Database::new();
        svc.save_snapshot_file(&mut db, &snap).unwrap();
        assert!(snap.exists());
        assert!(
            !dir.join("service.qdb.tmp").exists(),
            "tmp file left behind"
        );

        let pipeline = Arc::clone(svc.snapshot().pipeline());
        let recovered =
            RecommendationService::recover(&snap, &wal, SyncPolicy::OsOnly, Arc::clone(&pipeline))
                .unwrap();
        assert!(recovered.report.snapshot_loaded);
        assert!(!recovered.report.torn_tail);
        let restored = recovered
            .service
            .expect("persisted snapshot yields a service");
        assert_eq!(restored.epoch(), svc.epoch());
        assert_eq!(restored.kb_len(), svc.kb_len());
        for b in c.bundles.iter().take(5) {
            assert_eq!(restored.suggest(b), svc.suggest(b));
        }

        // a fresh pair of paths recovers to an empty store with no service
        let snap2 = dir.join("fresh.qdb");
        let wal2 = dir.join("fresh.wal");
        let empty =
            RecommendationService::recover(&snap2, &wal2, SyncPolicy::OsOnly, pipeline).unwrap();
        assert!(empty.service.is_none());
        assert!(!empty.report.snapshot_loaded);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_knn_family_serves_learns_and_persists_through_same_service() {
        let c = corpus();
        let svc = RecommendationService::train_with(
            &c,
            FeatureModel::BagOfWords,
            RankerConfig::new(ClassifierFamily::NaiveBayes, SimilarityMeasure::Jaccard),
        );
        assert_eq!(svc.classifier_label(), "naive-bayes");
        let b = &c.bundles[0];
        let s = svc.suggest(b);
        assert!(s.top.len() <= TOP_SUGGESTIONS);
        for w in s.top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }

        // online learning retrains the family's model at the epoch swap
        let mut fresh = b.clone();
        fresh.reference_number = "R-NB".into();
        fresh.supplier_report = "fresh naive bayes narrative zz-42".into();
        svc.learn(&fresh, b.error_code.as_deref().unwrap());
        assert_eq!(svc.classifier_label(), "naive-bayes");

        // persistence keeps the family without the caller restating it
        let mut db = Database::new();
        svc.save_snapshot(&mut db).unwrap();
        let restored =
            RecommendationService::load_latest(&db, Arc::clone(svc.snapshot().pipeline()))
                .unwrap()
                .unwrap();
        assert_eq!(restored.classifier_label(), "naive-bayes");
        for b in c.bundles.iter().take(5) {
            assert_eq!(restored.suggest(b), svc.suggest(b));
        }
    }

    #[test]
    fn external_classification_works_without_part_id() {
        let c = corpus();
        let svc = RecommendationService::train(
            &c,
            FeatureModel::BagOfConcepts,
            SimilarityMeasure::Jaccard,
        );
        let ranked = svc.classify_external("THE COOLING FAN EXHIBITED GRINDING NOISE");
        // unknown part falls back across the whole KB; some suggestion appears
        assert!(!ranked.is_empty());
    }
}
