//! Torn-input property suite for the incremental HTTP parser (ISSUE 6
//! satellite 1): parsing a byte stream must be byte-for-byte independent of
//! how the stream was split across socket reads. Every corpus document is
//! fed one byte at a time and at random split points, and the outcome —
//! requests extracted, terminal error, bytes left buffered — must equal the
//! one-shot parse. The parser must also never consume bytes beyond the
//! requests it returns (pipelined successors survive).

use proptest::collection::vec;
use proptest::prelude::*;
use qatk_serve::{HttpError, Limits, Request, RequestParser};

/// Valid and invalid wire documents, exercising every branch of the
/// error-code contract plus pipelining and odd-but-legal shapes.
const CORPUS: &[&[u8]] = &[
    // --- valid ---
    b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
    b"GET /metrics?format=text HTTP/1.0\r\n\r\n",
    b"HEAD /healthz HTTP/1.1\r\n\r\n",
    b"POST /suggest HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 17\r\n\r\n{\"part_id\":\"P01\"}",
    b"POST /learn HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    b"OPTIONS * HTTP/1.1\r\n\r\n",
    b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
    b"GET / HTTP/1.1\r\nX-Empty:\r\nX-Pad:   spaced   \r\n\r\n",
    // stray CRLFs between pipelined requests are legal
    b"\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
    // pipelined pair in one document
    b"POST /suggest HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n",
    // binary body bytes (Content-Length framing, no interpretation)
    b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n\x00\xff\r\n",
    // --- invalid: the 400 family ---
    b"GE T / HTTP/1.1\r\n\r\n",
    b"GET nopath HTTP/1.1\r\n\r\n",
    b"GET / HTTP/2.0\r\n\r\n",
    b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
    b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
    b"GET / HTTP/1.1\r\nA: b\r\n folded\r\n\r\n",
    b"POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n",
    b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
    b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    // --- invalid: 411 / 413 ---
    b"POST / HTTP/1.1\r\n\r\n",
    b"POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n",
];

/// Outcome of draining one parser over one fully-pushed document.
#[derive(Debug, PartialEq)]
struct Outcome {
    requests: Vec<Request>,
    error: Option<HttpError>,
    leftover: usize,
}

fn one_shot(doc: &[u8]) -> Outcome {
    let mut p = RequestParser::new(Limits::default());
    p.push(doc);
    let mut requests = Vec::new();
    let error = loop {
        match p.take_request() {
            Ok(Some(r)) => requests.push(r),
            Ok(None) => break None,
            Err(e) => break Some(e),
        }
    };
    Outcome {
        requests,
        error,
        leftover: p.buffered(),
    }
}

/// Parse `doc` split into the chunks delimited by `cuts` (sorted, deduped),
/// draining the parser after every chunk — exactly how the server's
/// connection loop interleaves reads and parses.
fn torn(doc: &[u8], cuts: &[usize]) -> Outcome {
    let mut p = RequestParser::new(Limits::default());
    let mut requests = Vec::new();
    let mut prev = 0;
    let bounds: Vec<usize> = cuts.iter().copied().chain([doc.len()]).collect();
    for cut in bounds {
        p.push(&doc[prev..cut]);
        prev = cut;
        loop {
            match p.take_request() {
                Ok(Some(r)) => requests.push(r),
                Ok(None) => break,
                Err(e) => {
                    return Outcome {
                        requests,
                        error: Some(e),
                        leftover: p.buffered(),
                    }
                }
            }
        }
    }
    Outcome {
        requests,
        error: None,
        leftover: p.buffered(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random split points over a random corpus document: identical
    /// requests, identical terminal error, identical leftover bytes. (When
    /// the error fires early in torn mode, unpushed bytes can't be
    /// buffered — leftovers are only compared on success.)
    #[test]
    fn random_splits_equal_one_shot(
        idx in 0usize..CORPUS.len(),
        raw_cuts in vec(0usize..512, 0..8),
    ) {
        let doc = CORPUS[idx];
        let expected = one_shot(doc);
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (doc.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let got = torn(doc, &cuts);
        prop_assert_eq!(&got.requests, &expected.requests);
        prop_assert_eq!(&got.error, &expected.error);
        if expected.error.is_none() {
            prop_assert_eq!(got.leftover, expected.leftover);
        }
    }

    /// The degenerate worst case: one byte per read.
    #[test]
    fn byte_by_byte_equals_one_shot(idx in 0usize..CORPUS.len()) {
        let doc = CORPUS[idx];
        let expected = one_shot(doc);
        let cuts: Vec<usize> = (1..doc.len()).collect();
        let got = torn(doc, &cuts);
        prop_assert_eq!(&got.requests, &expected.requests);
        prop_assert_eq!(&got.error, &expected.error);
        if expected.error.is_none() {
            prop_assert_eq!(got.leftover, expected.leftover);
        }
    }

    /// No over-read: two valid documents concatenated and split anywhere
    /// parse to the concatenation of their requests, with nothing left.
    #[test]
    fn pipelined_concatenation_consumes_exactly(
        a in 0usize..11, // the valid prefix of CORPUS
        b in 0usize..11,
        raw_cuts in vec(0usize..512, 0..6),
    ) {
        let mut doc = CORPUS[a].to_vec();
        doc.extend_from_slice(CORPUS[b]);
        let mut expected = one_shot(CORPUS[a]).requests;
        expected.extend(one_shot(CORPUS[b]).requests);
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (doc.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let got = torn(&doc, &cuts);
        prop_assert_eq!(got.error, None);
        prop_assert_eq!(got.requests, expected);
        prop_assert_eq!(got.leftover, 0);
    }

    /// Arbitrary garbage must never panic or hang — worst case it errors or
    /// waits for more input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 128,
            max_body_bytes: 64,
        });
        for chunk in bytes.chunks(7) {
            p.push(chunk);
            loop {
                match p.take_request() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return Ok(()),
                }
            }
        }
    }
}

#[test]
fn corpus_sanity() {
    // the first 11 entries are the valid prefix the pipelining property
    // relies on; every one of them must parse clean
    for (i, doc) in CORPUS[..11].iter().enumerate() {
        let out = one_shot(doc);
        assert!(
            out.error.is_none(),
            "corpus[{i}] should be valid: {:?}",
            out.error
        );
        assert!(!out.requests.is_empty(), "corpus[{i}] yielded no request");
        assert_eq!(out.leftover, 0, "corpus[{i}] left bytes buffered");
    }
    // and every remaining entry must fail
    for (i, doc) in CORPUS[11..].iter().enumerate() {
        let out = one_shot(doc);
        assert!(out.error.is_some(), "corpus[{}] should be invalid", 11 + i);
    }
}
