//! # qatk-serve — zero-dependency HTTP/1.1 serving layer
//!
//! The wire-protocol front of the toolkit (DESIGN.md §10): a hand-rolled
//! incremental HTTP/1.1 request parser, a fixed-thread-pool blocking server
//! over `std::net`, a matching keep-alive client, and a closed/open-loop
//! load generator. No async runtime, no external crates — the build
//! environment is offline and the query path underneath is already a
//! lock-free `&self` snapshot read, so a handful of blocking threads is the
//! entire concurrency story.
//!
//! Layering: this crate knows HTTP, not QUEST. Routing and endpoint
//! semantics live behind the [`Handler`] trait; the `quest` crate implements
//! it over `RecommendationService` and owns the `quest serve` / `quest
//! loadgen` CLI entry points.
//!
//! ## Protocol contract (tested by `tests/serve_protocol.rs`)
//!
//! | condition                              | status | connection |
//! |----------------------------------------|--------|------------|
//! | malformed request line / header        | 400    | close      |
//! | `Transfer-Encoding` (unsupported)      | 400    | close      |
//! | body without `Content-Length` (POST)   | 411    | close      |
//! | body larger than [`Limits::max_body_bytes`] | 413 | close     |
//! | head larger than [`Limits::max_head_bytes`] | 431 | close     |
//! | stalled mid-request past the timeout   | 408    | close      |
//! | over the accept gate                   | 503    | close      |
//! | handler panic                          | 500    | close      |
//! | unknown path (handler-side)            | 404    | keep-alive |
//! | wrong method on a known path           | 405 + `Allow` | keep-alive |
//!
//! [`Limits::max_body_bytes`]: http::Limits::max_body_bytes
//! [`Limits::max_head_bytes`]: http::Limits::max_head_bytes

pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod response;
pub mod server;

pub use client::{ClientResponse, HttpClient};
pub use http::{HttpError, Limits, Method, Request, RequestParser};
pub use loadgen::{LoadReport, LoadgenConfig, Mode, RequestTemplate};
pub use response::Response;
pub use server::{Handler, Server, ServerConfig};
