//! Incremental HTTP/1.1 request parsing (DESIGN.md §10).
//!
//! The parser is a byte-stream accumulator: callers [`RequestParser::push`]
//! whatever a socket read produced — one byte or a whole pipeline of
//! requests — and [`RequestParser::take_request`] extracts at most one
//! complete request from the front of the buffer. Parse results are
//! byte-for-byte independent of how the input was split (the torn-input
//! property suite feeds every corpus request at every split point), and the
//! parser never consumes bytes beyond the request it returns, so pipelined
//! requests survive in the buffer for the next call.
//!
//! Only the slice of HTTP/1.1 the toolkit needs is supported: one request
//! line, CRLF-terminated headers, and an optional `Content-Length` body.
//! `Transfer-Encoding` is rejected (400) rather than half-supported. Limits
//! are enforced incrementally: a head that outgrows
//! [`Limits::max_head_bytes`] fails with 431 before the terminator ever
//! arrives, and a declared body beyond [`Limits::max_body_bytes`] fails with
//! 413 before a single body byte is read.

use std::fmt;

/// Default cap on the request head (request line + headers + CRLFs).
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on a declared `Content-Length` body.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// Parser limits, enforced incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    pub max_head_bytes: usize,
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// Request method. Unknown-but-well-formed tokens parse as
/// [`Method::Other`] so routing can answer 405 instead of 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
    Head,
    Other(String),
}

impl Method {
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Other(s) => s,
        }
    }

    fn from_token(token: &str) -> Self {
        match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "HEAD" => Method::Head,
            other => Method::Other(other.to_owned()),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: Method,
    /// The raw request target (path + optional query).
    pub target: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub version_11: bool,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Keep-alive per HTTP/1.1 defaults: `Connection: close` always closes,
    /// `Connection: keep-alive` always keeps, otherwise the version decides.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => {
                let mut keep = self.version_11;
                for token in v.split(',') {
                    let t = token.trim();
                    if t.eq_ignore_ascii_case("close") {
                        return false;
                    }
                    if t.eq_ignore_ascii_case("keep-alive") {
                        keep = true;
                    }
                }
                keep
            }
            None => self.version_11,
        }
    }
}

/// Protocol-level parse failures, each mapped to exactly one status code
/// (the error-code contract of DESIGN.md §10). Every parse error closes the
/// connection: the byte stream is unsynchronized after a malformed head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — malformed request line, header, version, length, or an
    /// unsupported `Transfer-Encoding`.
    BadRequest(&'static str),
    /// 411 — POST without a `Content-Length`.
    LengthRequired,
    /// 413 — declared body larger than [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// 431 — head larger than [`Limits::max_head_bytes`].
    HeadersTooLarge,
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge => 413,
            HttpError::HeadersTooLarge => 431,
        }
    }

    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(m) => m,
            HttpError::LengthRequired => "POST requires a Content-Length",
            HttpError::BodyTooLarge => "request body exceeds the server limit",
            HttpError::HeadersTooLarge => "request head exceeds the server limit",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for HttpError {}

/// The incremental request parser: an input buffer plus the resume point of
/// the head-terminator scan, so feeding N bytes one at a time stays O(N).
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    /// Bytes already scanned for the `\r\n\r\n` terminator.
    scanned: usize,
}

impl RequestParser {
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            scanned: 0,
        }
    }

    /// Append raw socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when a request is in flight (bytes buffered but incomplete) —
    /// the slowloris discriminator: a timeout mid-request earns a 408, a
    /// timeout on an empty buffer is an idle keep-alive connection closing.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Extract one complete request from the front of the buffer, if the
    /// bytes for it have all arrived. `Ok(None)` means "need more input".
    /// Exactly the request's own bytes are consumed — pipelined successors
    /// stay buffered.
    pub fn take_request(&mut self) -> Result<Option<Request>, HttpError> {
        // tolerate stray CRLFs between pipelined requests (RFC 9112 §2.2)
        let mut lead = 0;
        while self.buf[lead..].starts_with(b"\r\n") {
            lead += 2;
        }
        if lead > 0 {
            self.buf.drain(..lead);
            self.scanned = 0;
        }
        let Some(head_end) = self.find_head_end()? else {
            return Ok(None);
        };
        let head = Head::parse(&self.buf[..head_end - 4])?;
        let content_length = head.content_length(&self.limits)?;
        let total = head_end + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        self.scanned = 0;
        Ok(Some(Request {
            method: head.method,
            target: head.target,
            version_11: head.version_11,
            headers: head.headers,
            body,
        }))
    }

    /// Position just past `\r\n\r\n`, resuming the scan where the last call
    /// stopped. Enforces the head limit even before the terminator shows up.
    fn find_head_end(&mut self) -> Result<Option<usize>, HttpError> {
        let start = self.scanned.saturating_sub(3);
        if let Some(i) = find(&self.buf[start..], b"\r\n\r\n") {
            let end = start + i + 4;
            if end > self.limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(Some(end));
        }
        self.scanned = self.buf.len();
        if self.buf.len() > self.limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        Ok(None)
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
        .or(None)
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// The parsed head, pre-body.
struct Head {
    method: Method,
    target: String,
    version_11: bool,
    headers: Vec<(String, String)>,
}

impl Head {
    /// Parse request line + headers from the head bytes (terminator
    /// excluded).
    fn parse(head: &[u8]) -> Result<Head, HttpError> {
        let mut lines = head.split_str_crlf();
        let request_line = lines.next().unwrap_or(b"");
        let (method, target, version_11) = Self::parse_request_line(request_line)?;
        let mut headers = Vec::new();
        for line in lines {
            headers.push(Self::parse_header_line(line)?);
        }
        Ok(Head {
            method,
            target,
            version_11,
            headers,
        })
    }

    fn parse_request_line(line: &[u8]) -> Result<(Method, String, bool), HttpError> {
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("request line is not valid UTF-8"))?;
        let mut parts = text.split(' ');
        let (Some(method), Some(target), Some(version), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::BadRequest(
                "request line is not `METHOD TARGET VERSION`",
            ));
        };
        if method.is_empty() || !method.bytes().all(is_token_byte) {
            return Err(HttpError::BadRequest("malformed method token"));
        }
        if !target.starts_with('/') && target != "*" {
            return Err(HttpError::BadRequest("request target must start with /"));
        }
        if !target.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
            return Err(HttpError::BadRequest(
                "request target contains invalid bytes",
            ));
        }
        let version_11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
        };
        Ok((Method::from_token(method), target.to_owned(), version_11))
    }

    fn parse_header_line(line: &[u8]) -> Result<(String, String), HttpError> {
        // obs-fold (a continuation line starting with whitespace) is obsolete
        // and rejected outright
        if line.first().is_some_and(|b| *b == b' ' || *b == b'\t') {
            return Err(HttpError::BadRequest("obsolete header line folding"));
        }
        let colon = find(line, b":").ok_or(HttpError::BadRequest("header line without colon"))?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        let value = &rest[1..];
        if !value
            .iter()
            .all(|&b| b == b'\t' || (0x20..=0x7e).contains(&b) || b >= 0x80)
        {
            return Err(HttpError::BadRequest("header value contains control bytes"));
        }
        let value = std::str::from_utf8(value)
            .map_err(|_| HttpError::BadRequest("header value is not valid UTF-8"))?
            .trim_matches([' ', '\t'])
            .to_owned();
        let name = std::str::from_utf8(name)
            .expect("token bytes are ASCII")
            .to_ascii_lowercase();
        Ok((name, value))
    }

    /// The body length this head declares, with the 400/411/413 contract
    /// applied.
    fn content_length(&self, limits: &Limits) -> Result<usize, HttpError> {
        if self.headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::BadRequest("transfer-encoding is not supported"));
        }
        let mut declared: Option<u64> = None;
        for (n, v) in &self.headers {
            if n != "content-length" {
                continue;
            }
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadRequest("malformed Content-Length"));
            }
            let parsed: u64 = v
                .parse()
                .map_err(|_| HttpError::BadRequest("Content-Length out of range"))?;
            match declared {
                Some(prev) if prev != parsed => {
                    return Err(HttpError::BadRequest("conflicting Content-Length headers"))
                }
                _ => declared = Some(parsed),
            }
        }
        match declared {
            Some(n) if n > limits.max_body_bytes as u64 => Err(HttpError::BodyTooLarge),
            Some(n) => Ok(n as usize),
            None if self.method == Method::Post => Err(HttpError::LengthRequired),
            None => Ok(0),
        }
    }
}

/// `split` on `\r\n` for byte slices.
trait SplitCrlf {
    fn split_str_crlf(&self) -> SplitCrlfIter<'_>;
}

impl SplitCrlf for [u8] {
    fn split_str_crlf(&self) -> SplitCrlfIter<'_> {
        SplitCrlfIter { rest: Some(self) }
    }
}

struct SplitCrlfIter<'a> {
    rest: Option<&'a [u8]>,
}

impl<'a> Iterator for SplitCrlfIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let rest = self.rest?;
        match find(rest, b"\r\n") {
            Some(i) => {
                self.rest = Some(&rest[i + 2..]);
                Some(&rest[..i])
            }
            None => {
                self.rest = None;
                Some(rest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<Request>, HttpError> {
        let mut p = RequestParser::new(Limits::default());
        p.push(bytes);
        let mut out = Vec::new();
        while let Some(r) = p.take_request()? {
            out.push(r);
        }
        Ok(out)
    }

    #[test]
    fn parses_get_without_body() {
        let reqs = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, Method::Get);
        assert_eq!(reqs[0].path(), "/healthz");
        assert!(reqs[0].version_11);
        assert_eq!(reqs[0].header("host"), Some("x"));
        assert!(reqs[0].body.is_empty());
        assert!(reqs[0].keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_preserves_pipeline() {
        let mut p = RequestParser::new(Limits::default());
        p.push(
            b"POST /suggest HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /metrics HTTP/1.1\r\n\r\n",
        );
        let first = p.take_request().unwrap().unwrap();
        assert_eq!(first.body, b"abcd");
        // the second request's bytes were not consumed by the first
        let second = p.take_request().unwrap().unwrap();
        assert_eq!(second.method, Method::Get);
        assert_eq!(second.target, "/metrics");
        assert_eq!(p.buffered(), 0);
        assert_eq!(p.take_request().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let raw = b"POST /learn HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let expected = parse_all(raw).unwrap();
        let mut p = RequestParser::new(Limits::default());
        let mut got = Vec::new();
        for &b in raw.iter() {
            p.push(&[b]);
            while let Some(r) = p.take_request().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn connection_close_overrides_version() {
        let reqs = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive());
        let reqs = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(reqs[0].keep_alive());
        let reqs = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive());
    }

    #[test]
    fn error_contract() {
        assert_eq!(
            parse_all(b"GE T / HTTP/1.1\r\n\r\n").unwrap_err().status(),
            400
        );
        assert_eq!(
            parse_all(b"GET nopath HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse_all(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status(),
            400
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::LengthRequired
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse_all(b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
    }

    #[test]
    fn oversized_body_fails_before_body_arrives() {
        let limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        let mut p = RequestParser::new(limits);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(p.take_request().unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn oversized_head_fails_incrementally() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\n");
        // feed header bytes with no terminator; the parser must fail as soon
        // as the head limit is crossed, long before any \r\n\r\n
        let mut result = Ok(None);
        for _ in 0..32 {
            p.push(b"X-Pad: yyyy\r\n");
            result = p.take_request();
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result.unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn conflicting_content_lengths_rejected() {
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        // duplicates that agree are fine
        let reqs =
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(reqs[0].body, b"ok");
    }
}
