//! A minimal blocking HTTP/1.1 client over `std::net`, sufficient for the
//! load generator, the test battery, and the `quest loadgen` CLI. Supports
//! keep-alive (response leftovers are retained between requests) and raw
//! byte injection for protocol tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the server signalled `Connection: close`.
    pub fn close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive HTTP/1.1 client on one TCP connection.
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (keep-alive leftovers).
    buf: Vec<u8>,
    /// The configured socket timeout, echoed in stall diagnostics.
    timeout: Duration,
}

/// An expired socket timeout surfaces as `WouldBlock` on Unix and `TimedOut`
/// on Windows. Normalize both to one typed `TimedOut` error — the same
/// mapping the server's read loop applies — so callers can match a stalled
/// peer on `ErrorKind::TimedOut` portably instead of treating it as a
/// generic I/O failure.
fn normalize_timeout(e: std::io::Error, timeout: Duration) -> std::io::Error {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("socket stalled: no bytes within the {timeout:?} timeout"),
        ),
        _ => e,
    }
}

impl HttpClient {
    /// Connect with `timeout` as connect, read, and write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            timeout,
        })
    }

    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Send one request (JSON body when present) and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: qatk\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(body.as_bytes());
        self.send_raw(&bytes)?;
        if method.eq_ignore_ascii_case("HEAD") {
            self.read_response_head_only()
        } else {
            self.read_response()
        }
    }

    /// Write raw bytes without framing — protocol tests build their own.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| normalize_timeout(e, self.timeout))
    }

    /// Read and parse one response, honouring `Content-Length` and keeping
    /// any over-read bytes for the next call.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        self.read_response_framed(false)
    }

    /// Read one response to a `HEAD` request: `Content-Length` describes the
    /// body the server *omitted*, so no body bytes are consumed.
    pub fn read_response_head_only(&mut self) -> std::io::Result<ClientResponse> {
        self.read_response_framed(true)
    }

    fn read_response_framed(&mut self, head_only: bool) -> std::io::Result<ClientResponse> {
        // accumulate until the head terminator
        let head_end = loop {
            if let Some(pos) = find_crlf2(&self.buf) {
                break pos;
            }
            self.fill()?;
        };
        let head = self.buf[..head_end].to_vec();
        let body_start = head_end + 4;
        let head_text = String::from_utf8_lossy(&head).into_owned();
        let mut lines = head_text.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| std::io::Error::other("empty response head"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line}")))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| {
                let (n, v) = l.split_once(':')?;
                Some((n.trim().to_ascii_lowercase(), v.trim().to_owned()))
            })
            .collect();
        let content_length: usize = if head_only {
            0
        } else {
            headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0)
        };
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 8 * 1024];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| normalize_timeout(e, self.timeout))?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A server that accepts and then never sends a byte must surface as the
    /// typed `TimedOut` error — not the platform's raw `WouldBlock` — so
    /// callers can portably distinguish a stalled peer from hard I/O
    /// failures (the mapping `server.rs` applies on its read loop).
    #[test]
    fn stalled_socket_maps_to_typed_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            // accept, hold the socket open, respond with nothing
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });

        let mut client = HttpClient::connect(addr, Duration::from_millis(50)).unwrap();
        let err = client.request("GET", "/healthz", None).unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::TimedOut,
            "got {err:?} instead of the normalized timeout"
        );
        assert!(
            err.to_string().contains("stalled"),
            "diagnostic names the stall: {err}"
        );
        hold.join().unwrap();
    }

    /// Non-timeout failures pass through untouched (the normalization must
    /// not swallow real errors).
    #[test]
    fn closed_connection_is_not_a_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let close = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close, no response
        });
        let mut client = HttpClient::connect(addr, Duration::from_secs(1)).unwrap();
        close.join().unwrap();
        let err = client.request("GET", "/healthz", None).unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::TimedOut, "{err:?}");
    }
}
