//! The fixed-thread-pool HTTP/1.1 server over `std::net` (DESIGN.md §10).
//!
//! One acceptor thread admits connections behind a max-in-flight gate
//! (graceful degradation: over capacity, the connection gets an immediate
//! `503` and is closed instead of queueing unboundedly) and hands them to a
//! small fixed pool of worker threads over a `Mutex<VecDeque>` + `Condvar`.
//! Each worker drives one connection at a time through a keep-alive loop:
//! incremental parse → dispatch → serialized response, with per-read
//! timeouts (stalled mid-request ⇒ `408`, idle keep-alive ⇒ silent close)
//! and a total head deadline so a trickling client cannot hold a worker
//! forever. There is no async runtime: the query path underneath is the
//! `&self` [`KnowledgeSnapshot`] serving stack, so a handful of blocking
//! threads saturate the hardware.
//!
//! [`KnowledgeSnapshot`]: ../../qatk_core/snapshot/struct.KnowledgeSnapshot.html

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{HttpError, Limits, Method, RequestParser};
use crate::metrics::{endpoint_metrics, metrics};
use crate::response::Response;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub threads: usize,
    /// Max connections admitted and not yet closed (active + queued);
    /// beyond it the accept gate answers 503 immediately.
    pub max_in_flight: usize,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Total time a request head may take to arrive before the connection
    /// is answered 408 — the slowloris bound (per-read timeouts alone never
    /// fire against a client trickling one byte per interval).
    pub header_deadline: Duration,
    /// Parser limits (431 head cap, 413 body cap).
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_in_flight: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            header_deadline: Duration::from_secs(10),
            limits: Limits::default(),
        }
    }
}

/// A request handler: routing and endpoint semantics live behind this, the
/// server owns only the protocol.
pub trait Handler: Send + Sync + 'static {
    fn handle(&self, req: &crate::http::Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&crate::http::Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &crate::http::Request) -> Response {
        self(req)
    }
}

struct Shared {
    config: ServerConfig,
    handler: Arc<dyn Handler>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
}

/// A running server: an acceptor, `threads` workers, and a bound address.
/// Dropping the server shuts it down gracefully (drain, then join).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start accepting. Port 0 picks an ephemeral port;
    /// read it back with [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            handler,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
        });
        let workers = (0..shared.config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qatk-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qatk-serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning the acceptor thread succeeds")
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections admitted and not yet closed.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Block until the server is shut down from another thread (the CLI
    /// foreground mode). Never returns under normal operation.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.finish();
    }

    /// Graceful shutdown: stop accepting, let workers finish the requests
    /// (and queued connections) already admitted, then join every thread.
    /// In-flight requests complete and their responses are written — an
    /// acked write is never dropped — but their connections close instead
    /// of staying keep-alive.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.finish();
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // unblock the acceptor's blocking accept with a dummy connection
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
    }

    fn finish(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::Acquire) {
            self.begin_shutdown();
        }
        self.finish();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let m = metrics();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // the max-in-flight gate: admit or degrade gracefully with 503
        let admitted = shared
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < shared.config.max_in_flight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            m.rejected_busy_total.inc();
            reject_busy(stream, &shared.config);
            continue;
        }
        m.connections_total.inc();
        m.connections_active
            .set(shared.in_flight.load(Ordering::Acquire) as i64);
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(stream);
        drop(queue);
        shared.available.notify_one();
    }
}

/// Best-effort 503 to a connection the gate refused.
fn reject_busy(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let resp = Response::error_json(503, "server at capacity")
        .with_close()
        .with_endpoint("rejected");
    let _ = stream.write_all(&resp.to_bytes(false));
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // a connection panic must not kill the worker: the pool would
        // silently shrink request by request
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            serve_connection(shared, stream);
        }));
        if result.is_err() {
            metrics().handler_panics_total.inc();
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        metrics()
            .connections_active
            .set(shared.in_flight.load(Ordering::Acquire) as i64);
    }
}

/// The per-connection keep-alive loop.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let m = metrics();
    let config = &shared.config;
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(config.limits);
    let mut buf = [0u8; 8 * 1024];
    // set when the first byte of a request arrives; cleared per request
    let mut head_started: Option<Instant> = None;
    loop {
        // drain complete (possibly pipelined) requests before reading more
        loop {
            match parser.take_request() {
                Ok(Some(req)) => {
                    head_started = None;
                    let started = Instant::now();
                    let mut resp = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        shared.handler.handle(&req)
                    })) {
                        Ok(r) => r,
                        Err(_) => {
                            m.handler_panics_total.inc();
                            Response::error_json(500, "internal server error")
                                .with_close()
                                .with_endpoint("panic")
                        }
                    };
                    if shared.shutdown.load(Ordering::Acquire) || !req.keep_alive() {
                        resp.close = true;
                    }
                    let head_only = req.method == Method::Head;
                    let ok = write_response(&mut stream, &resp, head_only);
                    record_request(started, &resp);
                    if !ok || resp.close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    m.parse_errors_total.inc();
                    respond_error(&mut stream, &e);
                    return;
                }
            }
        }
        // the slowloris bound: a head trickling in past the deadline is cut
        if let Some(t0) = head_started {
            if t0.elapsed() > config.header_deadline {
                m.timeouts_total.inc();
                respond_timeout(&mut stream);
                return;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                m.bytes_read_total.add(n as u64);
                if parser.has_partial() || head_started.is_none() {
                    head_started.get_or_insert_with(Instant::now);
                }
                parser.push(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if parser.has_partial() {
                    // stalled mid-request
                    m.timeouts_total.inc();
                    respond_timeout(&mut stream);
                } // else: idle keep-alive connection; close silently
                return;
            }
            Err(_) => return,
        }
    }
}

fn respond_error(stream: &mut TcpStream, e: &HttpError) {
    let resp = Response::from_http_error(e);
    let started = Instant::now();
    let _ = write_response(stream, &resp, false);
    record_request(started, &resp);
}

fn respond_timeout(stream: &mut TcpStream) {
    let resp = Response::error_json(408, "request timed out")
        .with_close()
        .with_endpoint("timeout");
    let _ = write_response(stream, &resp, false);
}

fn write_response(stream: &mut TcpStream, resp: &Response, head_only: bool) -> bool {
    let bytes = resp.to_bytes(head_only);
    let ok = stream.write_all(&bytes).is_ok() && stream.flush().is_ok();
    if ok {
        metrics().bytes_written_total.add(bytes.len() as u64);
    }
    ok
}

fn record_request(started: Instant, resp: &Response) {
    let m = metrics();
    let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    m.requests_total.inc();
    m.request_latency_ns.record(ns);
    match resp.status {
        200..=299 => m.responses_2xx_total.inc(),
        400..=499 => m.responses_4xx_total.inc(),
        _ => m.responses_5xx_total.inc(),
    }
    let ep = endpoint_metrics(resp.endpoint);
    ep.requests_total.inc();
    ep.latency_ns.record(ns);
    if resp.status >= 400 {
        ep.errors_total.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::http::Request;

    fn echo_handler(req: &Request) -> Response {
        match (req.method.clone(), req.path()) {
            (Method::Get, "/ping") => Response::text(200, "pong").with_endpoint("ping"),
            (Method::Post, "/echo") => {
                Response::new(200, "application/octet-stream", req.body.clone())
                    .with_endpoint("echo")
            }
            (_, "/ping" | "/echo") => {
                Response::error_json(405, "method not allowed").with_allow("GET, POST")
            }
            _ => Response::error_json(404, "no such endpoint"),
        }
    }

    fn spawn(config: ServerConfig) -> Server {
        Server::bind("127.0.0.1:0", config, Arc::new(echo_handler)).expect("bind loopback")
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let server = spawn(ServerConfig::default());
        let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
        for i in 0..5 {
            let r = c.request("GET", "/ping", None).unwrap();
            assert_eq!(r.status, 200, "request {i}");
            assert_eq!(r.body, b"pong");
            assert!(!r.close());
        }
        let r = c.request("POST", "/echo", Some("{\"n\":1}")).unwrap();
        assert_eq!(r.body, b"{\"n\":1}");
        server.shutdown();
    }

    #[test]
    fn concurrent_connections_all_served() {
        let server = spawn(ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let mut c = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
                    for _ in 0..20 {
                        let r = c.request("POST", "/echo", Some("x")).unwrap();
                        assert_eq!(r.status, 200);
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_in_flight_request() {
        let server = spawn(ServerConfig::default());
        let mut c = HttpClient::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
        let r = c.request("GET", "/ping", None).unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        // after shutdown the port stops accepting
        assert!(
            TcpStream::connect_timeout(&c.peer_addr().unwrap(), Duration::from_millis(200))
                .is_err()
                || HttpClient::connect(c.peer_addr().unwrap(), Duration::from_millis(200))
                    .and_then(|mut c2| c2.request("GET", "/ping", None))
                    .is_err()
        );
    }
}
