//! HTTP response construction and serialization.

use crate::http::HttpError;

/// One HTTP response. Handlers construct these; the server serializes them
/// (adding `Content-Length` and `Connection`) and uses `endpoint` as the
/// per-endpoint metrics label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Force-close the connection after this response (parse errors, over
    /// capacity, shutdown drain). Keep-alive otherwise follows the request.
    pub close: bool,
    /// Metrics label (`qatk_serve_<endpoint>_*`); `"other"` when unrouted.
    pub endpoint: &'static str,
    /// `Allow` header for 405 responses.
    pub allow: Option<&'static str>,
    /// Trace id echoed back as an `x-qatk-trace` header (16-digit lowercase
    /// hex); `0` means untraced and renders no header. The serving layer is
    /// deliberately tracing-agnostic — the application sets this raw value.
    pub trace: u64,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            body: body.into(),
            close: false,
            endpoint: "other",
            allow: None,
            trace: 0,
        }
    }

    /// A JSON response from an already serialized document.
    pub fn json(status: u16, body: String) -> Self {
        Response::new(status, "application/json", body.into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    /// The uniform error shape: `{"error": "..."}`.
    pub fn error_json(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":\"{}\"}}", qatk_obs::json::escape(message)),
        )
    }

    /// Map a parse failure to its documented status; parse errors always
    /// close (the byte stream is unsynchronized afterwards).
    pub fn from_http_error(e: &HttpError) -> Self {
        let mut r = Response::error_json(e.status(), e.message());
        r.close = true;
        r.endpoint = "protocol_error";
        r
    }

    pub fn with_endpoint(mut self, endpoint: &'static str) -> Self {
        self.endpoint = endpoint;
        self
    }

    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    pub fn with_allow(mut self, allow: &'static str) -> Self {
        self.allow = Some(allow);
        self
    }

    /// Carry a trace id back to the client (`0` = none).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }

    /// Canonical reason phrase.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize head + body. `head_only` (HEAD requests) keeps the real
    /// `Content-Length` but omits the body bytes.
    pub fn to_bytes(&self, head_only: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + if head_only { 0 } else { self.body.len() });
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
                self.status,
                Self::reason(self.status),
                self.content_type,
                self.body.len(),
                if self.close { "close" } else { "keep-alive" }
            )
            .as_bytes(),
        );
        if let Some(allow) = self.allow {
            out.extend_from_slice(format!("Allow: {allow}\r\n").as_bytes());
        }
        if self.trace != 0 {
            out.extend_from_slice(format!("x-qatk-trace: {:016x}\r\n", self.trace).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        if !head_only {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_with_length_and_connection() {
        let r = Response::json(200, "{\"ok\":true}".to_owned());
        let bytes = r.to_bytes(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn head_only_keeps_length_drops_body() {
        let r = Response::text(200, "hello");
        let text = String::from_utf8(r.to_bytes(true)).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn error_mapping_closes_and_escapes() {
        let r = Response::from_http_error(&HttpError::HeadersTooLarge);
        assert_eq!(r.status, 431);
        assert!(r.close);
        let r = Response::error_json(400, "bad \"x\"");
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"bad \\\"x\\\"\"}"
        );
    }

    #[test]
    fn allow_header_rendered() {
        let r = Response::error_json(405, "use POST").with_allow("POST");
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(text.contains("Allow: POST\r\n"));
    }

    #[test]
    fn trace_header_rendered_only_when_set() {
        let plain = Response::json(200, "{}".to_owned());
        assert!(!String::from_utf8(plain.to_bytes(false))
            .unwrap()
            .contains("x-qatk-trace"));
        let traced = Response::json(200, "{}".to_owned()).with_trace(0xBEEF);
        let text = String::from_utf8(traced.to_bytes(false)).unwrap();
        assert!(text.contains("x-qatk-trace: 000000000000beef\r\n"));
        // the header lands before the blank line, with the other headers
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("x-qatk-trace"));
    }
}
