//! Serving-layer metrics (DESIGN.md §7 naming): connection/accept-gate
//! counters plus per-endpoint request/latency/error triples registered on
//! demand under `qatk_serve_<endpoint>_*`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use qatk_obs::{Counter, Gauge, Histogram, Registry};

/// Handles to the connection-level `qatk_serve_*` metrics.
pub struct ServeMetrics {
    /// Connections admitted past the accept gate.
    pub connections_total: &'static Counter,
    /// Connections admitted and not yet closed (queued or being served).
    pub connections_active: &'static Gauge,
    /// Connections refused with 503 at the accept gate.
    pub rejected_busy_total: &'static Counter,
    /// Stalled requests answered with 408 (read timeout or head deadline).
    pub timeouts_total: &'static Counter,
    /// Requests failing HTTP parsing (the 400/411/413/431 family).
    pub parse_errors_total: &'static Counter,
    /// Handler panics turned into 500s.
    pub handler_panics_total: &'static Counter,
    /// Requests fully parsed and dispatched.
    pub requests_total: &'static Counter,
    /// 2xx / 4xx / 5xx responses written.
    pub responses_2xx_total: &'static Counter,
    pub responses_4xx_total: &'static Counter,
    pub responses_5xx_total: &'static Counter,
    /// Wall time from complete request to response written (ns).
    pub request_latency_ns: &'static Histogram,
    /// Raw socket bytes in / out.
    pub bytes_read_total: &'static Counter,
    pub bytes_written_total: &'static Counter,
}

/// The connection-level metric handles (registered on first use).
pub fn metrics() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        ServeMetrics {
            connections_total: r.counter(
                "qatk_serve_connections_total",
                "connections admitted past the accept gate",
            ),
            connections_active: r.gauge(
                "qatk_serve_connections_active",
                "admitted connections not yet closed",
            ),
            rejected_busy_total: r.counter(
                "qatk_serve_rejected_busy_total",
                "connections refused with 503 at the accept gate",
            ),
            timeouts_total: r.counter(
                "qatk_serve_timeouts_total",
                "stalled requests answered with 408",
            ),
            parse_errors_total: r.counter(
                "qatk_serve_parse_errors_total",
                "requests failing HTTP parsing",
            ),
            handler_panics_total: r.counter(
                "qatk_serve_handler_panics_total",
                "handler panics turned into 500s",
            ),
            requests_total: r.counter(
                "qatk_serve_requests_total",
                "requests fully parsed and dispatched",
            ),
            responses_2xx_total: r.counter("qatk_serve_responses_2xx_total", "2xx responses"),
            responses_4xx_total: r.counter("qatk_serve_responses_4xx_total", "4xx responses"),
            responses_5xx_total: r.counter("qatk_serve_responses_5xx_total", "5xx responses"),
            request_latency_ns: r.histogram(
                "qatk_serve_request_latency_ns",
                "request parse-to-response-written wall time (ns)",
            ),
            bytes_read_total: r.counter("qatk_serve_bytes_read_total", "raw socket bytes read"),
            bytes_written_total: r
                .counter("qatk_serve_bytes_written_total", "raw socket bytes written"),
        }
    })
}

/// Per-endpoint request/error counters and latency histogram.
pub struct EndpointMetrics {
    pub requests_total: &'static Counter,
    pub errors_total: &'static Counter,
    pub latency_ns: &'static Histogram,
}

/// The metric triple for one endpoint label, created on first use. Labels
/// come from [`crate::Response::endpoint`] — a closed, handler-chosen set —
/// so the leaked registration names stay bounded.
pub fn endpoint_metrics(label: &'static str) -> &'static EndpointMetrics {
    static MAP: OnceLock<Mutex<HashMap<&'static str, &'static EndpointMetrics>>> = OnceLock::new();
    let mut map = MAP
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(label).or_insert_with(|| {
        let r = Registry::global();
        let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
        Box::leak(Box::new(EndpointMetrics {
            requests_total: r.counter(
                leak(format!("qatk_serve_{label}_requests_total")),
                leak(format!("requests dispatched to {label}")),
            ),
            errors_total: r.counter(
                leak(format!("qatk_serve_{label}_errors_total")),
                leak(format!("non-2xx responses from {label}")),
            ),
            latency_ns: r.histogram(
                leak(format!("qatk_serve_{label}_latency_ns")),
                leak(format!("request latency of {label} (ns)")),
            ),
        }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_metrics_are_interned_per_label() {
        let a = endpoint_metrics("testep");
        let b = endpoint_metrics("testep");
        assert!(std::ptr::eq(a, b));
        a.requests_total.inc();
        assert_eq!(b.requests_total.get(), 1);
        let text = Registry::global().render_prometheus();
        assert!(text.contains("qatk_serve_testep_requests_total 1"));
    }
}
