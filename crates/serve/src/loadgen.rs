//! The quest load generator: closed-loop (back-to-back per connection) and
//! open-loop (target-QPS pacing) modes over the blocking [`HttpClient`],
//! with p50/p99/p999 log2-histogram latency estimates.
//!
//! Workload selection is deterministic: connection `k` of a run with seed
//! `s` walks the template list from a splitmix64-derived offset, so two runs
//! with the same seed, template list, connection count, and request count
//! issue byte-identical request sequences (the determinism contract tested
//! by `tests/serve_loadgen.rs`). Latency *values* are wall-clock and thus
//! not deterministic — but request counts, per-status tallies, and the
//! request-byte histogram are.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use qatk_obs::Histogram;

use crate::client::HttpClient;

/// Load-generation mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Each connection issues its next request as soon as the previous
    /// response arrives. Measures capacity.
    Closed,
    /// Requests fire on a global schedule of `target_qps` per second,
    /// spread round-robin over the connections. Measures latency at a
    /// fixed offered load; `behind` counts requests that missed their
    /// scheduled slot (coordinated omission indicator).
    Open { target_qps: f64 },
}

/// One request shape the generator can issue.
#[derive(Debug, Clone)]
pub struct RequestTemplate {
    pub method: &'static str,
    pub path: String,
    pub body: Option<String>,
}

impl RequestTemplate {
    pub fn get(path: impl Into<String>) -> Self {
        RequestTemplate {
            method: "GET",
            path: path.into(),
            body: None,
        }
    }

    pub fn post(path: impl Into<String>, body: impl Into<String>) -> Self {
        RequestTemplate {
            method: "POST",
            path: path.into(),
            body: Some(body.into()),
        }
    }

    /// Bytes of request payload (body only; the head is near-constant).
    fn body_len(&self) -> u64 {
        self.body.as_deref().map_or(0, |b| b.len() as u64)
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    pub addr: String,
    pub connections: usize,
    /// Total requests across all connections.
    pub total_requests: usize,
    pub mode: Mode,
    pub seed: u64,
    pub timeout: Duration,
    /// Also keep every raw latency sample (exact medians for the bench
    /// gate; the log2 histogram alone has ≤2× bucket error).
    pub collect_raw: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7419".to_owned(),
            connections: 4,
            total_requests: 1000,
            mode: Mode::Closed,
            seed: 42,
            timeout: Duration::from_secs(10),
            collect_raw: false,
        }
    }
}

/// Aggregated results of one run.
pub struct LoadReport {
    /// Requests attempted.
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// Transport failures (connect/read/write errors).
    pub failed: u64,
    /// Responses per status code.
    pub status_counts: BTreeMap<u16, u64>,
    pub elapsed: Duration,
    /// Completed responses per second of wall time.
    pub rps: f64,
    /// Response latency (ns), log2-bucketed.
    pub latency: Histogram,
    /// Request body bytes, log2-bucketed (deterministic across runs).
    pub request_bytes: Histogram,
    /// Raw latency samples (ns) when `collect_raw` was set, unordered.
    pub raw_latencies_ns: Vec<u64>,
    /// Open loop only: requests issued later than their scheduled slot by
    /// more than one period.
    pub behind: u64,
}

impl LoadReport {
    pub fn p50_ns(&self) -> u64 {
        self.latency.quantile(0.50)
    }

    pub fn p99_ns(&self) -> u64 {
        self.latency.quantile(0.99)
    }

    pub fn p999_ns(&self) -> u64 {
        self.latency.quantile(0.999)
    }

    /// Human-readable multi-line summary for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests          {}\nok (2xx)          {}\ntransport errors  {}\n",
            self.requests, self.ok, self.failed
        ));
        for (status, n) in &self.status_counts {
            out.push_str(&format!("  status {status}      {n}\n"));
        }
        out.push_str(&format!(
            "elapsed           {:.3} s\nthroughput        {:.1} req/s\n",
            self.elapsed.as_secs_f64(),
            self.rps
        ));
        out.push_str(&format!(
            "latency p50       {}\nlatency p99       {}\nlatency p999      {}\n",
            fmt_ns(self.p50_ns()),
            fmt_ns(self.p99_ns()),
            fmt_ns(self.p999_ns())
        ));
        if self.behind > 0 {
            out.push_str(&format!(
                "behind schedule   {} (open-loop pacing missed)\n",
                self.behind
            ));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// splitmix64 — the workspace's standard tiny PRNG step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Tally {
    ok: AtomicU64,
    failed: AtomicU64,
    behind: AtomicU64,
    issued: AtomicUsize,
    latency: Histogram,
    request_bytes: Histogram,
    status_counts: Mutex<BTreeMap<u16, u64>>,
    raw: Mutex<Vec<u64>>,
}

/// Run the generator to completion and aggregate. Panics only on internal
/// invariant violations; transport failures are counted, not fatal (a
/// connection that dies is re-established).
pub fn run(config: &LoadgenConfig, templates: &[RequestTemplate]) -> LoadReport {
    assert!(!templates.is_empty(), "loadgen needs at least one template");
    assert!(
        config.connections > 0,
        "loadgen needs at least one connection"
    );
    let tally = Tally {
        ok: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        behind: AtomicU64::new(0),
        issued: AtomicUsize::new(0),
        latency: Histogram::new(),
        request_bytes: Histogram::new(),
        status_counts: Mutex::new(BTreeMap::new()),
        raw: Mutex::new(Vec::new()),
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for k in 0..config.connections {
            let tally = &tally;
            scope.spawn(move || connection_loop(config, templates, k, started, tally));
        }
    });
    let elapsed = started.elapsed();
    let requests = tally.issued.load(Ordering::Relaxed) as u64;
    let completed = requests - tally.failed.load(Ordering::Relaxed);
    LoadReport {
        requests,
        ok: tally.ok.load(Ordering::Relaxed),
        failed: tally.failed.load(Ordering::Relaxed),
        status_counts: tally.status_counts.into_inner().unwrap(),
        elapsed,
        rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: tally.latency,
        request_bytes: tally.request_bytes,
        raw_latencies_ns: tally.raw.into_inner().unwrap(),
        behind: tally.behind.load(Ordering::Relaxed),
    }
}

/// Requests assigned to connection `k`: indices `k, k+C, k+2C, …` of the
/// global sequence, so the per-connection share is deterministic.
fn connection_loop(
    config: &LoadgenConfig,
    templates: &[RequestTemplate],
    k: usize,
    run_start: Instant,
    tally: &Tally,
) {
    let c = config.connections;
    let offset = splitmix64(config.seed ^ (k as u64)) as usize;
    let mut client: Option<HttpClient> = None;
    let mut j = 0usize; // per-connection request counter
    loop {
        let g = k + j * c; // global request index
        if g >= config.total_requests {
            return;
        }
        if let Mode::Open { target_qps } = config.mode {
            let due = Duration::from_secs_f64((g + 1) as f64 / target_qps);
            let now = run_start.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            } else if now > due + Duration::from_secs_f64(1.0 / target_qps) {
                tally.behind.fetch_add(1, Ordering::Relaxed);
            }
        }
        let template = &templates[(offset + j) % templates.len()];
        tally.issued.fetch_add(1, Ordering::Relaxed);
        tally.request_bytes.record(template.body_len());
        let outcome = with_client(&mut client, config, |cl| {
            let t0 = Instant::now();
            let resp = cl.request(template.method, &template.path, template.body.as_deref())?;
            Ok((resp, t0.elapsed()))
        });
        match outcome {
            Ok((resp, rtt)) => {
                let ns = rtt.as_nanos().min(u64::MAX as u128) as u64;
                tally.latency.record(ns);
                if config.collect_raw {
                    // one workload policy for poisoned locks (same as the
                    // quest service): a panicked sibling never aborts the
                    // whole run — plain data survives poisoning intact
                    tally
                        .raw
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(ns);
                }
                if (200..300).contains(&resp.status) {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                }
                *tally
                    .status_counts
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(resp.status)
                    .or_insert(0) += 1;
                // the server closes after parse errors / shutdown drain
                if resp.close() {
                    client = None;
                }
            }
            Err(_) => {
                tally.failed.fetch_add(1, Ordering::Relaxed);
                client = None;
            }
        }
        j += 1;
    }
}

/// Run `f` on the live connection, establishing one first if needed.
fn with_client<T>(
    client: &mut Option<HttpClient>,
    config: &LoadgenConfig,
    f: impl FnOnce(&mut HttpClient) -> std::io::Result<T>,
) -> std::io::Result<T> {
    if client.is_none() {
        *client = Some(HttpClient::connect(config.addr.as_str(), config.timeout)?);
    }
    let result = f(client.as_mut().expect("client was just established"));
    if result.is_err() {
        *client = None;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // pinned values: the determinism contract depends on this function
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn template_offsets_cover_all_connections_deterministically() {
        let a: Vec<u64> = (0..4).map(|k| splitmix64(7 ^ k)).collect();
        let b: Vec<u64> = (0..4).map(|k| splitmix64(7 ^ k)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(950), "950 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
