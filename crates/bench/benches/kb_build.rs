//! Knowledge-base construction benchmarks, including the ablation for the
//! configuration-instance dedup (§4.3 / kNN Model [7]): how much the dedup
//! shrinks the knowledge base and what building costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qatk_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Instances with heavy duplication (identical configurations recur, as
/// bag-of-concepts abstraction makes likely).
fn instances(n: usize, distinct: usize) -> Vec<(String, String, FeatureSet)> {
    let mut rng = StdRng::seed_from_u64(3);
    let pool: Vec<FeatureSet> = (0..distinct)
        .map(|_| (0..6).map(|_| rng.random_range(0..300u32)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let k = rng.random_range(0..distinct);
            (
                format!("P-{:02}", k % 7),
                format!("E{:03}", k % 60),
                pool[k].clone(),
            )
        })
        .collect()
}

fn bench_kb(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge-base");
    for &n in &[2_000usize, 10_000] {
        let data = instances(n, n / 10);
        group.bench_with_input(BenchmarkId::new("build-dedup", n), &data, |b, data| {
            b.iter(|| {
                let mut kb = KnowledgeBase::new();
                for (p, code, f) in data {
                    kb.insert(p.clone(), code.clone(), f.clone());
                }
                black_box(kb.len())
            })
        });
    }

    // persistence cost
    let data = instances(5_000, 500);
    let mut kb = KnowledgeBase::new();
    for (p, code, f) in &data {
        kb.insert(p.clone(), code.clone(), f.clone());
    }
    group.bench_function("persist-to-db/5000-instances", |b| {
        b.iter(|| {
            let mut db = qatk_store::Database::new();
            kb.save_to_db(&mut db).unwrap();
            black_box(db.total_rows())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kb);
criterion_main!(benches);
