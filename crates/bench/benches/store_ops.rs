//! Storage-engine microbenchmarks: insert throughput, indexed point lookup
//! vs full scan, and snapshot round-trip — the access paths QATK leans on
//! when it keeps kNN instances "on disk ... with on-the-fly access" (§2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qatk_store::prelude::*;

fn sample_table(rows: usize, with_index: bool) -> Table {
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("part_id", DataType::Text)
        .col("report", DataType::Text)
        .build()
        .unwrap();
    let mut t = Table::new("bundles", schema);
    for i in 0..rows as i64 {
        t.insert(row![
            i,
            format!("P-{:02}", i % 31),
            format!("supplier report body number {i} with some text")
        ])
        .unwrap();
    }
    if with_index {
        t.create_index("by_part", "part_id", IndexKind::Hash)
            .unwrap();
    }
    t
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");

    group.bench_function("insert/1000-rows", |b| {
        b.iter(|| black_box(sample_table(1000, false).len()))
    });

    for &rows in &[1_000usize, 10_000] {
        let indexed = sample_table(rows, true);
        let plain = sample_table(rows, false);
        let key = Value::from("P-07");
        group.bench_with_input(
            BenchmarkId::new("lookup-indexed", rows),
            &indexed,
            |b, t| b.iter(|| black_box(t.lookup("part_id", &key).unwrap().len())),
        );
        group.bench_with_input(BenchmarkId::new("lookup-scan", rows), &plain, |b, t| {
            b.iter(|| black_box(t.lookup("part_id", &key).unwrap().len()))
        });
    }

    let mut db = Database::new();
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("text", DataType::Text)
        .build()
        .unwrap();
    db.create_table("t", schema).unwrap();
    for i in 0..5_000i64 {
        db.insert("t", row![i, format!("row {i}")]).unwrap();
    }
    group.bench_function("snapshot-roundtrip/5000-rows", |b| {
        b.iter(|| {
            let bytes = db.to_bytes();
            black_box(Database::from_bytes(&bytes).unwrap().total_rows())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
