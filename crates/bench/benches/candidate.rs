//! Ablation benchmark: inverted-index candidate selection vs a naive scan of
//! the part's knowledge nodes (DESIGN.md §5 — the access-path design point
//! the paper's Fig. 5 "selection via the indexes of the knowledge structure"
//! encodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qatk_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_kb(nodes_per_part: usize, features_per_node: usize) -> (KnowledgeBase, FeatureSet) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut kb = KnowledgeBase::new();
    for part in 0..5 {
        for n in 0..nodes_per_part {
            let feats: FeatureSet = (0..features_per_node)
                .map(|_| rng.random_range(0..2_000u32))
                .collect();
            kb.insert(
                format!("P-{part:02}"),
                format!("E{part:02}{:03}", n % 40),
                feats,
            );
        }
    }
    let query: FeatureSet = (0..features_per_node)
        .map(|_| rng.random_range(0..2_000u32))
        .collect();
    (kb, query)
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate-selection");
    for &nodes in &[200usize, 1000, 5000] {
        let (kb, query) = build_kb(nodes, 40);
        group.bench_with_input(BenchmarkId::new("inverted-index", nodes), &kb, |b, kb| {
            b.iter(|| black_box(kb.candidates("P-02", &query).len()))
        });
        group.bench_with_input(BenchmarkId::new("naive-scan", nodes), &kb, |b, kb| {
            b.iter(|| black_box(kb.candidates_scan("P-02", &query).len()))
        });
        // the accumulation kernel does candidate selection *and* intersection
        // counting in the same index walk — the candidate set is its
        // touched-list by-product
        group.bench_with_input(
            BenchmarkId::new("accumulate-counts", nodes),
            &kb,
            |b, kb| {
                let mut scratch = ScoreScratch::new();
                b.iter(|| {
                    kb.accumulate_counts("P-02", &query, &mut scratch);
                    black_box(scratch.touched().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
