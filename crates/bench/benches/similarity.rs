//! Microbenchmark: pairwise similarity scoring — the inner loop of the
//! classifier whose cost drives the paper's §5.2.2 feasibility argument.
//! Compares the paper's measures (Jaccard, overlap) and the extensions
//! (Dice, cosine) at bag-of-words (~70 features) and bag-of-concepts (~26
//! mentions / ~5 unique) set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qatk_core::prelude::*;

fn feature_set(n: usize, offset: u32) -> FeatureSet {
    (0..n as u32).map(|i| i * 3 + offset).collect()
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for &(label, size) in &[("bag-of-concepts", 5usize), ("bag-of-words", 70usize)] {
        let a = feature_set(size, 0);
        let b = feature_set(size, 1); // partial overlap via stride collisions
        for measure in SimilarityMeasure::ALL {
            group.bench_with_input(
                BenchmarkId::new(measure.label(), label),
                &(&a, &b),
                |bench, (a, b)| bench.iter(|| black_box(measure.score(a, b))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
