//! Microbenchmark: the optimized trie annotator vs the legacy exact matcher
//! (paper §4.5.3's performance claim: "Annotation becomes faster, less
//! memory-intensive, achieves higher coverage").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_taxonomy::concept::Lang;
use qatk_text::prelude::*;

fn bench_annotators(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small(5));
    let tax = &corpus.taxonomy.taxonomy;
    let tokenizer = WhitespaceTokenizer::new();
    let optimized = ConceptAnnotator::new(tax);
    let legacy = LegacyAnnotator::new(tax, Lang::De);

    // pre-tokenized CASes, cloned per iteration
    let cases: Vec<Cas> = corpus
        .bundles
        .iter()
        .take(50)
        .map(|b| {
            let mut cas = b.to_cas(SourceSelection::Training);
            tokenizer.process(&mut cas).unwrap();
            cas
        })
        .collect();

    let mut group = c.benchmark_group("annotator");
    group.bench_function("optimized-trie/50-bundles", |b| {
        b.iter(|| {
            for cas in &cases {
                let mut cas = cas.clone();
                optimized.process(&mut cas).unwrap();
                black_box(cas.concept_mentions().count());
            }
        })
    });
    group.bench_function("legacy-exact/50-bundles", |b| {
        b.iter(|| {
            for cas in &cases {
                let mut cas = cas.clone();
                legacy.process(&mut cas).unwrap();
                black_box(cas.concept_mentions().count());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_annotators);
criterion_main!(benches);
