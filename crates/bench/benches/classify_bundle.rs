//! End-to-end per-bundle classification latency — the measurement behind the
//! paper's §5.2.2 industrial-feasibility argument (bag-of-words ≈ 0.5
//! s/bundle vs bag-of-concepts ≈ 0.14 s/bundle on their testbed; the *ratio*
//! is the reproduction target).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::{Corpus, CorpusConfig};

fn bench_classify(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig {
        n_bundles: 2000,
        pool_scale: 0.3,
        ..CorpusConfig::default()
    });

    let mut group = c.benchmark_group("classify-bundle");
    group.sample_size(20);
    for model in [
        FeatureModel::BagOfWords,
        FeatureModel::BagOfWordsNoStop,
        FeatureModel::BagOfConcepts,
    ] {
        // train once per model
        let pipeline = build_pipeline(&corpus, model);
        let mut space = FeatureSpace::new();
        let mut kb = KnowledgeBase::new();
        for b in &corpus.bundles {
            let mut cas = b.to_cas(SourceSelection::Training);
            pipeline.process(&mut cas).unwrap();
            let f = space.extract(&cas, model);
            kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
        }
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let test: Vec<_> = corpus.bundles.iter().take(25).collect();
        group.bench_with_input(
            BenchmarkId::new(model.label(), "25-bundles"),
            &test,
            |bench, test| {
                bench.iter(|| {
                    for b in test.iter() {
                        let mut cas = b.to_cas(SourceSelection::Test);
                        pipeline.process(&mut cas).unwrap();
                        let f = space.extract(&cas, model);
                        black_box(knn.rank(&kb, &b.part_id, &f).len());
                    }
                })
            },
        );
    }
    group.finish();
}

/// The posting-list accumulation kernel against the per-candidate
/// re-intersection path it replaced, and the parallel batch API against a
/// sequential loop — text processing factored out so only ranking is timed.
fn bench_rank_paths(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig {
        n_bundles: 2000,
        pool_scale: 0.3,
        ..CorpusConfig::default()
    });
    let model = FeatureModel::BagOfWords;
    let pipeline = build_pipeline(&corpus, model);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &corpus.bundles {
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).unwrap();
        let f = space.extract(&cas, model);
        kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
    }
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
    let test: Vec<(String, FeatureSet)> = corpus
        .bundles
        .iter()
        .take(100)
        .map(|b| {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).unwrap();
            (b.part_id.clone(), space.extract(&cas, model))
        })
        .collect();
    let queries: Vec<BatchQuery<'_>> = test
        .iter()
        .map(|(p, f)| BatchQuery {
            part_id: p,
            features: f,
        })
        .collect();

    let mut group = c.benchmark_group("rank-paths");
    group.sample_size(20);
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut scratch = ScoreScratch::new();
            for q in &queries {
                black_box(
                    knn.rank_with(&kb, q.part_id, q.features, &mut scratch)
                        .len(),
                );
            }
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(knn.rank_naive(&kb, q.part_id, q.features).len());
            }
        })
    });
    group.bench_function("batch-parallel", |b| {
        b.iter(|| black_box(knn.classify_batch(&kb, &queries).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_classify, bench_rank_paths);
criterion_main!(benches);
