//! model_zoo — the (feature model × classifier family) evaluation grid.
//!
//! Two deliverables from one binary:
//!
//! * **quality** (default): run every cell of the grid — four feature
//!   models (bag-of-words, bag-of-words-no-stop, bag-of-concepts, char
//!   3–5-grams) × the four zoo families — through `run_experiment`'s
//!   stratified CV on the paper corpus, and emit micro-F1, macro-F1 and
//!   accuracy@{1,5,25} per cell to `MODEL_ZOO.json` plus a table on
//!   stdout. The kNN × bag-of-words and kNN × bag-of-concepts cells are
//!   asserted against the golden-accuracy snapshot (511/548 resp.
//!   507/548 @1 on seed 20160315), so the zoo harness itself is pinned to
//!   the paper kernel's behaviour.
//! * **timing**: per-family `rank_batch` medians over one shared
//!   knowledge base (`zoo_rank_<family>`), merged into the bench-gate
//!   baseline (default `BENCH_PR10.json`) and gated by `--check` with the
//!   same 25% median + p95 tolerance as every other bench.
//!
//! `--scale 100k|1m` skips the CV grid (scale corpora carry pre-extracted
//! synthetic features, so feature models don't apply) and instead times
//! every family's rank path at tier size: `zoo_rank_<tier>_<family>`.
//!
//! Run: `cargo run --release -p qatk-bench --bin model_zoo -- \
//!       [--scale 100k|1m] [--out F] [--zoo-out F] [--check BASELINE] [--seed N]`

use std::process::ExitCode;
use std::time::Instant;

use qatk_bench::report::{
    bench, check_against, merge_entries, parse_entries, render_report, BenchResult,
    REGRESSION_TOLERANCE,
};
use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_corpus::scale::{ScaleConfig, ScaleCorpus, ScaleTier};
use qatk_obs::json::{self, Value as Json};

/// The corpus seed the golden-accuracy snapshot is pinned to.
const GOLDEN_SEED: u64 = 20160315; // EDBT 2016
/// Folds matching `crates/core/tests/golden_accuracy.rs`.
const FOLDS: usize = 3;
/// Absolute accuracy@1 drift tolerated against the golden snapshot. CV
/// on 548 items quantizes accuracy to 1/548 ≈ 0.0018, so this allows a
/// one-item wobble and nothing more.
const GOLDEN_TOLERANCE: f64 = 2.5 / 548.0;

/// The feature models under evaluation (the grid's columns).
const MODELS: [FeatureModel; 4] = [
    FeatureModel::BagOfWords,
    FeatureModel::BagOfWordsNoStop,
    FeatureModel::BagOfConcepts,
    FeatureModel::CharNgrams { lo: 3, hi: 5 },
];

/// One evaluated grid cell.
struct ZooCell {
    model: String,
    classifier: &'static str,
    label: String,
    micro_f1: f64,
    macro_f1: f64,
    acc_at: [(usize, f64); 3],
    total_tested: usize,
    cv_seconds: f64,
}

fn accuracy_at(result: &ExperimentResult, k: usize) -> f64 {
    let i = result
        .classifier
        .ks
        .iter()
        .position(|&x| x == k)
        .expect("PAPER_KS tracks 1, 5 and 25");
    result.classifier.accuracy[i]
}

/// Run one (model, family) cell through stratified CV.
fn run_cell(corpus: &Corpus, model: FeatureModel, family: ClassifierFamily) -> ZooCell {
    let config = ClassifierConfig {
        model,
        classifier: family,
        folds: FOLDS,
        ..ClassifierConfig::default()
    };
    let t = Instant::now();
    let result = run_experiment(corpus, &config);
    ZooCell {
        model: model.label(),
        classifier: family.label(),
        label: config.label(),
        micro_f1: result.micro_f1,
        macro_f1: result.macro_f1,
        acc_at: [
            (1, accuracy_at(&result, 1)),
            (5, accuracy_at(&result, 5)),
            (25, accuracy_at(&result, 25)),
        ],
        total_tested: result.total_tested,
        cv_seconds: t.elapsed().as_secs_f64(),
    }
}

/// Pin the zoo harness to the golden-accuracy snapshot: the kNN cells must
/// reproduce the exact curve `crates/core/tests/golden_accuracy.rs` pins.
fn assert_golden(cells: &[ZooCell]) -> Result<(), String> {
    for (model, golden_at_1) in [
        ("bag-of-words", 511.0 / 548.0),
        ("bag-of-concepts", 507.0 / 548.0),
    ] {
        let cell = cells
            .iter()
            .find(|c| c.model == model && c.classifier == "knn")
            .ok_or_else(|| format!("grid is missing the knn × {model} golden cell"))?;
        if cell.total_tested != 548 {
            return Err(format!(
                "{}: tested {} items, golden snapshot expects 548",
                cell.label, cell.total_tested
            ));
        }
        let got = cell.acc_at[0].1;
        if (got - golden_at_1).abs() > GOLDEN_TOLERANCE {
            return Err(format!(
                "{}: accuracy@1 {got:.6} drifted from golden {golden_at_1:.6} \
                 (tolerance {GOLDEN_TOLERANCE:.6})",
                cell.label
            ));
        }
    }
    eprintln!("golden check: knn × {{bag-of-words, bag-of-concepts}} match the pinned snapshot");
    Ok(())
}

/// Render the `qatk-model-zoo/v1` JSON document.
fn render_zoo_report(seed: u64, cells: &[ZooCell]) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"qatk-model-zoo/v1\",\n  \"corpus_seed\": {seed},\n  \
         \"folds\": {FOLDS},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"classifier\": \"{}\", \"label\": \"{}\", \
             \"micro_f1\": {:.6}, \"macro_f1\": {:.6}, \"acc_at_1\": {:.6}, \
             \"acc_at_5\": {:.6}, \"acc_at_25\": {:.6}, \"total_tested\": {}}}{}\n",
            json::escape(&c.model),
            json::escape(c.classifier),
            json::escape(&c.label),
            c.micro_f1,
            c.macro_f1,
            c.acc_at[0].1,
            c.acc_at[1].1,
            c.acc_at[2].1,
            c.total_tested,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The quality grid on the paper corpus.
fn run_grid(seed: u64) -> Vec<ZooCell> {
    eprintln!("generating paper corpus (seed {seed}) ...");
    let corpus = Corpus::generate(CorpusConfig::small(seed));
    let mut cells = Vec::with_capacity(MODELS.len() * ClassifierFamily::ALL.len());
    for model in MODELS {
        for family in ClassifierFamily::ALL {
            let cell = run_cell(&corpus, model, family);
            eprintln!(
                "  {:32} micro-F1 {:.4}  macro-F1 {:.4}  @1 {:.4}  ({:.1}s)",
                cell.label, cell.micro_f1, cell.macro_f1, cell.acc_at[0].1, cell.cv_seconds
            );
            cells.push(cell);
        }
    }
    cells
}

fn print_grid(cells: &[ZooCell]) {
    println!(
        "\n== model zoo ({FOLDS}-fold stratified CV, {} items) ==",
        cells[0].total_tested
    );
    println!(
        "{:24} {:12} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "model", "classifier", "micro-F1", "macro-F1", "acc@1", "acc@5", "acc@25"
    );
    for c in cells {
        println!(
            "{:24} {:12} {:>9.4} {:>9.4} {:>7.4} {:>7.4} {:>7.4}",
            c.model,
            c.classifier,
            c.micro_f1,
            c.macro_f1,
            c.acc_at[0].1,
            c.acc_at[1].1,
            c.acc_at[2].1
        );
    }
}

/// Build the (part, features) query set and KB for the timing benches:
/// full-corpus training under `model`, first 120 bundles as the worklist.
fn paper_kb(
    corpus: &Corpus,
    model: FeatureModel,
) -> Result<(KnowledgeBase, Vec<(String, FeatureSet)>), String> {
    let pipeline = build_pipeline(corpus, model);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &corpus.bundles {
        let Some(code) = b.error_code.as_deref() else {
            continue;
        };
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).map_err(|e| e.to_string())?;
        kb.insert(b.part_id.clone(), code, space.extract(&cas, model));
    }
    let queries = corpus
        .bundles
        .iter()
        .take(120)
        .map(|b| {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).expect("corpus text is clean");
            (b.part_id.clone(), space.extract(&cas, model))
        })
        .collect();
    Ok((kb, queries))
}

/// Per-family rank_batch medians over one shared KB; `tag` distinguishes
/// the paper corpus ("") from the scale tiers ("_100k"). `batch_reps`
/// replicates the worklist within a single timed batch: the paper-corpus
/// batches are only ~100µs, so the scoped-thread spawn cost of the eager
/// families lands straight in p95 unless amortized over a larger batch.
fn bench_families(
    kb: &KnowledgeBase,
    queries: &[(String, FeatureSet)],
    tag: &str,
    samples: usize,
    batch_reps: usize,
) -> Vec<BenchResult> {
    let refs: Vec<BatchQuery<'_>> = std::iter::repeat_n(queries.iter(), batch_reps.max(1))
        .flatten()
        .map(|(part, f)| BatchQuery {
            part_id: part,
            features: f,
        })
        .collect();
    let mut benches = Vec::new();
    for family in ClassifierFamily::ALL {
        let t = Instant::now();
        let ranker = RankerConfig::new(family, SimilarityMeasure::Jaccard).train(kb);
        eprintln!(
            "  trained {} in {:.1}s; benchmarking zoo_rank{tag}_{} ...",
            family.label(),
            t.elapsed().as_secs_f64(),
            family.label()
        );
        let name = format!("zoo_rank{tag}_{}", family.label().replace('-', "_"));
        benches.push(bench(&name, refs.len() as u64, 1, samples, || {
            std::hint::black_box(ranker.rank_batch(kb, None, &refs));
        }));
    }
    benches
}

/// The scale-tier timing pass: every family at tier size over synthetic
/// pre-extracted features (feature models don't apply here — the tiers
/// have no text to extract from).
fn run_scale(tier: ScaleTier, seed: u64) -> Vec<BenchResult> {
    let label = tier.label();
    let config = ScaleConfig::tier(tier, seed);
    eprintln!(
        "generating {label} scale corpus ({} bundles, seed {seed}) ...",
        config.n_bundles
    );
    let corpus = ScaleCorpus::generate(config);
    let mut kb = KnowledgeBase::new();
    for b in corpus.bundles() {
        kb.insert(
            ScaleCorpus::part_name(b.part),
            ScaleCorpus::code_name(b.code),
            FeatureSet::from_unsorted(b.features.to_vec()),
        );
    }
    eprintln!("  {} nodes", kb.len());
    let queries: Vec<(String, FeatureSet)> = corpus
        .queries(120, seed)
        .into_iter()
        .map(|(part, feats)| {
            (
                ScaleCorpus::part_name(part),
                FeatureSet::from_unsorted(feats),
            )
        })
        .collect();
    bench_families(&kb, &queries, &format!("_{label}"), 3, 1)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_PR10.json");
    let zoo_out = flag_value(&args, "--zoo-out").unwrap_or("MODEL_ZOO.json");
    let check_path = flag_value(&args, "--check");
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(GOLDEN_SEED);
    let scale = flag_value(&args, "--scale")
        .map(|s| {
            ScaleTier::parse(s).ok_or_else(|| format!("bad --scale `{s}` (expected 100k|1m|10m)"))
        })
        .transpose()?;

    let benches = match scale {
        Some(tier) => run_scale(tier, seed),
        None => {
            let cells = run_grid(seed);
            print_grid(&cells);
            if seed == GOLDEN_SEED {
                assert_golden(&cells)?;
            } else {
                eprintln!("golden check skipped: seed {seed} is not the pinned {GOLDEN_SEED}");
            }
            std::fs::write(zoo_out, render_zoo_report(seed, &cells))
                .map_err(|e| format!("writing {zoo_out}: {e}"))?;
            println!("wrote {zoo_out} ({} cells)", cells.len());

            eprintln!("\ntiming pass (bag-of-concepts KB, 120-query batches) ...");
            let corpus = Corpus::generate(CorpusConfig::small(seed));
            let (kb, queries) = paper_kb(&corpus, FeatureModel::BagOfConcepts)?;
            bench_families(&kb, &queries, "", 20, 8)
        }
    };

    println!("\n== model_zoo timings ==");
    for b in &benches {
        println!(
            "{:24} median {:>12} ns  p95 {:>12} ns  {:>14.1} items/s",
            b.bench, b.median_ns, b.p95_ns, b.throughput
        );
    }

    // merge into the shared bench baseline, exactly like bench_report
    let (previous, prev_obs, prev_trace_rank, prev_trace_serve) =
        match std::fs::read_to_string(out_path) {
            Ok(text) => {
                let prev =
                    json::parse(&text).map_err(|e| format!("parsing existing {out_path}: {e}"))?;
                (
                    parse_entries(&prev)?,
                    prev.get("obs_overhead_pct").and_then(Json::as_f64),
                    prev.get("trace_overhead_rank_pct").and_then(Json::as_f64),
                    prev.get("trace_overhead_serve_pct").and_then(Json::as_f64),
                )
            }
            Err(_) => (Vec::new(), None, None, None),
        };
    let merged = merge_entries(&previous, &benches);
    let report = render_report(
        &merged,
        prev_obs.unwrap_or(0.0),
        prev_trace_rank.unwrap_or(0.0),
        prev_trace_serve.unwrap_or(0.0),
    );
    std::fs::write(out_path, &report).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "wrote {out_path} ({} entries, {} fresh)",
        merged.len(),
        benches.len()
    );

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = json::parse(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let regressions = check_against(&baseline, &benches)?;
        if !regressions.is_empty() {
            return Err(format!(
                "bench gate: {} regression(s) beyond {:.0}%:\n  {}",
                regressions.len(),
                REGRESSION_TOLERANCE * 100.0,
                regressions.join("\n  ")
            ));
        }
        println!("bench gate: all benches within tolerance");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
