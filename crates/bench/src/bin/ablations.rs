//! Ablation studies for the design choices DESIGN.md §5 calls out, beyond
//! the paper's own figures:
//!
//! 1. **Similarity measures** — the paper's Jaccard/overlap plus the Dice
//!    and cosine extensions (§4.2: the algorithm "can easily be used with
//!    different similarity or distance measures").
//! 2. **Taxonomy synonym expansion** (§4.5.3) — bag-of-concepts accuracy
//!    with the raw vs the substring-expanded taxonomy.
//! 3. **Configuration-instance dedup** (§4.3) — knowledge-base size with and
//!    without the dedup abstraction.
//! 4. **Stemming** (§6 future work) — bag-of-stems vs plain bag-of-words.
//! 5. **Ranked list vs standard majority-vote kNN** (Fig. 6/7) — why the
//!    paper abandons majority vote: its accuracy depends on the k choice,
//!    while the ranked list has no such parameter.
//!
//! Run: `cargo run --release -p qatk-bench --bin ablations [-- --small]`

use qatk_bench::{pct, print_curves, HarnessArgs};
use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::Corpus;
use qatk_taxonomy::expansion::{expand_taxonomy, ExpansionConfig};
use qatk_text::concept_annotator::ConceptAnnotator;
use qatk_text::engine::Pipeline;
use qatk_text::langdetect::LanguageDetector;
use qatk_text::tokenizer::WhitespaceTokenizer;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();

    similarity_measures(&corpus);
    taxonomy_expansion(&corpus);
    dedup_ratio(&corpus);
    stemming(&corpus);
    majority_vote_vs_ranked(&corpus);
}

fn majority_vote_vs_ranked(corpus: &Corpus) {
    // single fold, bag-of-words + Jaccard: accuracy@1 of the ranked list vs
    // majority-vote kNN across k choices
    let model = FeatureModel::BagOfWords;
    let pipeline = build_pipeline(corpus, model);
    let bundles = corpus.evaluable_bundles();
    let codes: Vec<&str> = bundles
        .iter()
        .map(|b| b.error_code.as_deref().unwrap())
        .collect();
    let folds = stratified_folds(&codes, 5, 0x5EED);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for (i, b) in bundles.iter().enumerate() {
        if folds[i] == 0 {
            continue;
        }
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).unwrap();
        let f = space.extract(&cas, model);
        kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
    }

    let test: Vec<(usize, FeatureSet)> = bundles
        .iter()
        .enumerate()
        .filter(|(i, _)| folds[*i] == 0)
        .map(|(i, b)| {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).unwrap();
            (i, space.extract(&cas, model))
        })
        .collect();

    println!(
        "
== Ablation 5 — majority-vote kNN vs ranked list (Fig. 6/7, fold 0) =="
    );
    let ranked = RankedKnn::new(SimilarityMeasure::Jaccard);
    let mut hits = 0usize;
    for (i, f) in &test {
        let list = ranked.rank(&kb, &bundles[*i].part_id, f);
        if list.first().map(|s| s.code.as_str()) == bundles[*i].error_code.as_deref() {
            hits += 1;
        }
    }
    println!(
        "ranked list (k-free)         @1 {}",
        pct(hits as f64 / test.len() as f64)
    );
    for k in [1usize, 3, 6, 15, 25] {
        for weighted in [false, true] {
            let knn = MajorityVoteKnn {
                k,
                measure: SimilarityMeasure::Jaccard,
                weighted,
            };
            let mut hits = 0usize;
            for (i, f) in &test {
                if knn.classify(&kb, &bundles[*i].part_id, f).as_deref()
                    == bundles[*i].error_code.as_deref()
                {
                    hits += 1;
                }
            }
            println!(
                "majority vote k={k:<2} {}  @1 {}",
                if weighted {
                    "(weighted)  "
                } else {
                    "(unweighted)"
                },
                pct(hits as f64 / test.len() as f64)
            );
        }
    }
}

fn similarity_measures(corpus: &Corpus) {
    let mut results = Vec::new();
    for measure in SimilarityMeasure::ALL {
        let config = ClassifierConfig {
            model: FeatureModel::BagOfConcepts,
            measure,
            ..ClassifierConfig::default()
        };
        eprintln!("[measures] running {} ...", config.label());
        results.push(run_experiment(corpus, &config));
    }
    let curves: Vec<&AccuracyCurve> = results.iter().map(|r| &r.classifier).collect();
    print_curves(
        "Ablation 1 — similarity measures (bag-of-concepts)",
        &curves,
    );
}

fn taxonomy_expansion(corpus: &Corpus) {
    // Baseline: concepts with the expanded taxonomy vs the raw one. The
    // corpus was *written* against the raw taxonomy, so expansion here
    // measures robustness, not cheating: expanded terms match paraphrases.
    let raw = run_experiment(
        corpus,
        &ClassifierConfig {
            model: FeatureModel::BagOfConcepts,
            ..ClassifierConfig::default()
        },
    );

    let (expanded_tax, stats) =
        expand_taxonomy(&corpus.taxonomy.taxonomy, &ExpansionConfig::default()).unwrap();
    eprintln!(
        "[expansion] added {} terms to {} originals",
        stats.added_terms, stats.original_terms
    );
    // classification with a custom pipeline over the expanded taxonomy
    let pipeline = Pipeline::builder()
        .add(WhitespaceTokenizer::new())
        .add(LanguageDetector::new())
        .add(ConceptAnnotator::new(&expanded_tax))
        .build();
    // one fold worth of manual train/test split for the expanded variant
    let bundles = corpus.evaluable_bundles();
    let codes: Vec<&str> = bundles
        .iter()
        .map(|b| b.error_code.as_deref().unwrap())
        .collect();
    let folds = stratified_folds(&codes, 5, 0x5EED);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for (i, b) in bundles.iter().enumerate() {
        if folds[i] == 0 {
            continue;
        }
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).unwrap();
        let f = space.extract(&cas, FeatureModel::BagOfConcepts);
        kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
    }
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
    let mut acc = AccuracyCounter::new(&PAPER_KS);
    for (i, b) in bundles.iter().enumerate() {
        if folds[i] != 0 {
            continue;
        }
        let mut cas = b.to_cas(SourceSelection::Test);
        pipeline.process(&mut cas).unwrap();
        let f = space.extract(&cas, FeatureModel::BagOfConcepts);
        let ranked = knn.rank(&kb, &b.part_id, &f);
        acc.record(knn.rank_of(&ranked, b.error_code.as_deref().unwrap()));
    }

    println!("\n== Ablation 2 — taxonomy synonym expansion (bag-of-concepts) ==");
    println!(
        "raw taxonomy       @1 {}  @10 {}   (5-fold CV)",
        pct(raw.classifier.at(1).unwrap()),
        pct(raw.classifier.at(10).unwrap())
    );
    println!(
        "expanded taxonomy  @1 {}  @10 {}   (fold 0 only; +{} synonym terms)",
        pct(acc.at(1).unwrap()),
        pct(acc.at(10).unwrap()),
        stats.added_terms
    );
}

fn dedup_ratio(corpus: &Corpus) {
    // KB built over the full corpus: instances offered vs nodes kept
    for model in [FeatureModel::BagOfConcepts, FeatureModel::BagOfWords] {
        let pipeline = build_pipeline(corpus, model);
        let mut space = FeatureSpace::new();
        let mut kb = KnowledgeBase::new();
        for b in &corpus.bundles {
            let mut cas = b.to_cas(SourceSelection::Training);
            pipeline.process(&mut cas).unwrap();
            let f = space.extract(&cas, model);
            kb.insert(b.part_id.clone(), b.error_code.clone().unwrap(), f);
        }
        if model == FeatureModel::BagOfConcepts {
            println!("\n== Ablation 3 — configuration-instance dedup (§4.3) ==");
        }
        println!(
            "{:18} instances {} -> nodes {} ({:.1}% kept)",
            model.label(),
            kb.instances_offered(),
            kb.len(),
            kb.len() as f64 / kb.instances_offered() as f64 * 100.0
        );
    }
}

fn stemming(corpus: &Corpus) {
    let mut results = Vec::new();
    for model in [
        FeatureModel::BagOfWords,
        FeatureModel::BagOfWordsNoStop,
        FeatureModel::BagOfStems,
    ] {
        let config = ClassifierConfig {
            model,
            ..ClassifierConfig::default()
        };
        eprintln!("[stemming] running {} ...", config.label());
        results.push(run_experiment(corpus, &config));
    }
    let curves: Vec<&AccuracyCurve> = results.iter().map(|r| &r.classifier).collect();
    print_curves(
        "Ablation 4 — stemming (§6 'more linguistic preprocessing')",
        &curves,
    );
    println!(
        "seconds/bundle: words {:.5}, nostop {:.5}, stems {:.5}",
        results[0].seconds_per_bundle, results[1].seconds_per_bundle, results[2].seconds_per_bundle
    );
}
