//! Experiment E7 — regenerates **Figure 14** (paper §5.4): the side-by-side
//! comparison of the top-3 error-code distributions in the proprietary data
//! set and the (synthetic) NHTSA complaints database, the latter classified
//! fully automatically with the internal knowledge base.
//!
//! The screen is part-scoped, as the paper's pie chart implies (top-3 codes
//! carrying ~84 % / ~70 % of each pie): one part type, complaints filtered
//! to the matching NHTSA component category.
//!
//! Run: `cargo run --release -p qatk-bench --bin fig14 [-- --small]`

use qatk_bench::HarnessArgs;
use qatk_core::prelude::*;
use qatk_corpus::nhtsa::{category_for, generate_complaints, NhtsaConfig};
use quest::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();
    let complaints = generate_complaints(
        &corpus,
        &NhtsaConfig {
            n_complaints: if args.small { 1000 } else { 6000 },
            ..NhtsaConfig::default()
        },
    );

    // The part type under comparison: the largest pool (P-01).
    let part = &corpus.world.parts[0];
    let category = category_for(&part.system);
    let scoped: Vec<_> = complaints
        .iter()
        .filter(|c| c.component_category == category)
        .cloned()
        .collect();

    // The bag-of-concepts model is the cross-source choice: "the
    // bag-of-concepts approach is in principle independent of the document
    // language or other text features" (§5.4).
    eprintln!("training bag-of-concepts service on the internal corpus ...");
    let svc = RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    eprintln!(
        "classifying {} complaints of category {category} against {} ...",
        scoped.len(),
        part.part_id
    );
    let internal = corpus
        .bundles
        .iter()
        .filter(|b| b.part_id == part.part_id)
        .filter_map(|b| b.error_code.clone());
    let report = compare_part_with_complaints(&svc, &part.part_id, internal, &scoped, 3);

    println!("\n== Figure 14 — error distribution comparison (top 3 + Other) ==\n");
    println!("{}", report.render());

    println!("-- shape checks --");
    println!(
        "distinct head codes across sources: {}",
        report.left.top_code() != report.right.top_code()
    );
    println!(
        "internal top-3 mass {:.0}% vs external top-3 mass {:.0}% (paper: 84% vs 70%)",
        (1.0 - report.left.other_share) * 100.0,
        (1.0 - report.right.other_share) * 100.0
    );
}
