//! bench_report — the performance-trajectory report behind the CI bench gate.
//!
//! Two modes share one report file and one gate:
//!
//! * **classic** (default): fixed micro-benchmarks over the hot paths
//!   metered by `qatk-obs` (classify_batch, the rank kernel, concurrent
//!   `&self` suggest over one shared snapshot, the HTTP serving layer
//!   end-to-end over loopback, concept annotation, tokenization, WAL
//!   appends — both OS-buffered and fsync-per-batch), plus the
//!   observability-overhead estimate on classify_batch (must stay < 5%);
//! * **scale** (`--scale 100k|1m`): the synthetic scale tiers of DESIGN.md
//!   §11 — build the tier's knowledge base, seal it into the compressed
//!   segment + LSH index, and measure `rank_<tier>` (LSH-pruned),
//!   `rank_<tier>_exact` (full posting-list kernel over the sealed arena)
//!   and `suggest_<tier>` (eight threads sharing the sealed snapshot,
//!   pruned path). The 1m tier *asserts* the headline numbers: pruned
//!   median ≥ 5x faster than exact, and ≥ 95% differential top-25 recall
//!   against the exact oracle over 256 seeded queries.
//!
//! A third mode, `--repl`, runs the `replica_catchup` benchmark of
//! DESIGN.md §13: a fresh follower syncing a leader's sealed WAL segments
//! over loopback until its applied cursor reaches the leader's tip
//! (median = lag-to-converge, throughput = segments/sec).
//!
//! The classic run also measures the qatk-trace overhead twice — on the
//! bare rank kernel (no root span live: child-span probes must be free)
//! and on the serve request path, end to end over loopback HTTP (root
//! span + children + ring publication, as a client experiences it) —
//! and fails if either enabled-vs-disabled delta exceeds 3%.
//!
//! Writing `--out FILE` (default `BENCH_PR10.json`) **merges** into an
//! existing report: fresh entries replace same-named ones in place, new
//! names append — so the committed baseline accumulates the classic, 100k
//! and 1m tiers from separate runs (plus the `model_zoo` binary's
//! per-family entries). `--check BASELINE` fails on any median
//! *or p95* regression beyond 25% (see `qatk_bench::report`); baseline
//! entries the current mode didn't run are ignored.
//!
//! Run: `cargo run --release -p qatk-bench --bin bench_report -- \
//!       [--scale 100k|1m] [--repl] [--out F] [--check BASELINE] [--seed N]`

use std::process::ExitCode;
use std::time::Instant;

use qatk_bench::report::{
    bench, check_against, merge_entries, parse_entries, render_report, BenchResult,
    REGRESSION_TOLERANCE,
};
use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_corpus::scale::{ScaleConfig, ScaleCorpus, ScaleTier};
use qatk_obs::json::{self, Value as Json};
use qatk_store::prelude::*;
use qatk_text::engine::Pipeline;
use qatk_text::tokenizer::WhitespaceTokenizer;

/// Maximum instrumentation overhead tolerated on classify_batch. The
/// enabled-vs-disabled estimate carries a noise floor of a few percent on a
/// shared host even after min-of-pass/median-of-passes smoothing (single
/// passes of the original estimator swing from -6% to +11% on the same
/// binary), so the limit leaves headroom above that floor while still
/// catching any gross instrumentation regression.
const MAX_OBS_OVERHEAD_PCT: f64 = 5.0;

/// Maximum tracing overhead tolerated, enabled vs disabled, on the rank
/// kernel and on the serve request path. Tighter than the obs limit
/// because the tentpole claim is that tracing is cheap enough to leave on:
/// the kernel pays one atomic load + one TLS probe per child span, the
/// request path adds one allocation per span plus one ring publication.
const MAX_TRACE_OVERHEAD_PCT: f64 = 3.0;

/// Pruned-vs-exact speedup the 1m tier must clear.
const MIN_1M_SPEEDUP: f64 = 5.0;
/// Differential top-25 recall the pruned path must keep at the 1m tier.
const MIN_1M_RECALL: f64 = 0.95;
/// Seeded queries behind the recall measurement.
const RECALL_QUERIES: usize = 256;

/// Enabled-vs-disabled classify_batch timings, interleaved so drift hits
/// both arms equally. One interleave pass compares the *fastest* sample of
/// each arm — like `BENCH_REPS` min-of-medians, preemption and frequency
/// scaling only ever slow a sample down — and the reported overhead is the
/// median of several independent passes, since a single pass still swings a
/// few percent either way on a busy host. Returns the overhead in percent
/// (negative = noise).
fn measure_obs_overhead(knn: &RankedKnn, kb: &KnowledgeBase, queries: &[BatchQuery<'_>]) -> f64 {
    fn one_pass(knn: &RankedKnn, kb: &KnowledgeBase, queries: &[BatchQuery<'_>]) -> f64 {
        let rounds = 24;
        // several batch calls per sample: one call is ~100µs dominated by
        // worker spawn/join jitter, so each timed sample amortizes it
        let calls_per_sample = 4;
        let mut on = Vec::with_capacity(rounds);
        let mut off = Vec::with_capacity(rounds);
        for i in 0..rounds * 2 {
            qatk_obs::set_enabled(i % 2 == 0);
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                std::hint::black_box(knn.classify_batch(kb, queries));
            }
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if i % 2 == 0 {
                on.push(ns);
            } else {
                off.push(ns);
            }
        }
        let on = *on.iter().min().expect("rounds > 0") as f64;
        let off = *off.iter().min().expect("rounds > 0") as f64;
        (on - off) / off * 100.0
    }
    let mut estimates: Vec<f64> = (0..7).map(|_| one_pass(knn, kb, queries)).collect();
    qatk_obs::set_enabled(true);
    estimates.sort_by(|a, b| a.total_cmp(b));
    estimates[estimates.len() / 2]
}

/// Enabled-vs-disabled timing of `work` under the qatk-trace flag, with
/// the same smoothing as [`measure_obs_overhead`]: interleaved arms,
/// min-of-arm per pass, median of 7 passes. Returns percent (negative =
/// noise).
fn measure_trace_overhead(mut work: impl FnMut()) -> f64 {
    let one_pass = |work: &mut dyn FnMut()| -> f64 {
        let rounds = 32;
        let calls_per_sample = 8;
        let mut on = Vec::with_capacity(rounds);
        let mut off = Vec::with_capacity(rounds);
        for i in 0..rounds * 2 {
            qatk_trace::set_enabled(i % 2 == 0);
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                work();
            }
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if i % 2 == 0 {
                on.push(ns);
            } else {
                off.push(ns);
            }
        }
        let on = *on.iter().min().expect("rounds > 0") as f64;
        let off = *off.iter().min().expect("rounds > 0") as f64;
        (on - off) / off * 100.0
    };
    let mut estimates: Vec<f64> = (0..7).map(|_| one_pass(&mut work)).collect();
    qatk_trace::set_enabled(true);
    estimates.sort_by(|a, b| a.total_cmp(b));
    estimates[estimates.len() / 2]
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The classic micro-benchmarks; returns the results plus the measured
/// observability overhead and the two tracing-overhead estimates
/// (rank kernel, serve request path).
fn run_classic(seed: u64) -> Result<(Vec<BenchResult>, f64, f64, f64), String> {
    eprintln!("preparing corpus and knowledge base (seed {seed}) ...");
    let corpus = Corpus::generate(CorpusConfig::small(seed));
    let pipeline = build_pipeline(&corpus, FeatureModel::BagOfConcepts);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &corpus.bundles {
        let Some(code) = b.error_code.as_deref() else {
            continue;
        };
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).map_err(|e| e.to_string())?;
        kb.insert(
            b.part_id.clone(),
            code,
            space.extract(&cas, FeatureModel::BagOfConcepts),
        );
    }
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);

    let probe_bundles: Vec<_> = corpus.bundles.iter().take(120).collect();
    let features: Vec<FeatureSet> = probe_bundles
        .iter()
        .map(|b| {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).expect("corpus text is clean");
            space.extract(&cas, FeatureModel::BagOfConcepts)
        })
        .collect();
    let queries: Vec<BatchQuery<'_>> = probe_bundles
        .iter()
        .zip(&features)
        .map(|(b, f)| BatchQuery {
            part_id: &b.part_id,
            features: f,
        })
        .collect();

    let mut benches = Vec::new();

    eprintln!("benchmarking classify_batch ...");
    benches.push(bench("classify_batch", queries.len() as u64, 3, 30, || {
        std::hint::black_box(knn.classify_batch(&kb, &queries));
    }));

    eprintln!("benchmarking rank kernel ...");
    let (q0, f0) = (&probe_bundles[0], &features[0]);
    benches.push(bench("rank", 1, 50, 200, || {
        std::hint::black_box(knn.rank(&kb, &q0.part_id, f0));
    }));

    eprintln!("benchmarking suggest_concurrent (8 threads, shared snapshot) ...");
    let svc = quest::service::RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    const SUGGEST_THREADS: usize = 8;
    let suggest_bundles: Vec<_> = corpus.bundles.iter().take(SUGGEST_THREADS * 8).collect();
    benches.push(bench(
        "suggest_concurrent",
        suggest_bundles.len() as u64,
        2,
        20,
        || {
            std::thread::scope(|scope| {
                for chunk in suggest_bundles.chunks(suggest_bundles.len() / SUGGEST_THREADS) {
                    let svc = &svc;
                    scope.spawn(move || {
                        for b in chunk {
                            std::hint::black_box(svc.suggest(b));
                        }
                    });
                }
            });
        },
    ));

    eprintln!("benchmarking serve_rps (HTTP /suggest over loopback, 4 connections) ...");
    let svc = std::sync::Arc::new(svc);
    let app = std::sync::Arc::new(quest::serve_app::QuestApp::new(
        std::sync::Arc::clone(&svc),
        quest::serve_app::HealthInfo::default(),
    ));
    let server = qatk_serve::Server::bind(
        "127.0.0.1:0",
        qatk_serve::ServerConfig {
            threads: 4,
            ..qatk_serve::ServerConfig::default()
        },
        app,
    )
    .map_err(|e| format!("bind loopback for serve_rps: {e}"))?;
    let serve_addr = server.local_addr().to_string();
    let serve_templates: Vec<qatk_serve::RequestTemplate> = corpus
        .bundles
        .iter()
        .take(64)
        .map(|b| {
            qatk_serve::RequestTemplate::post(
                "/suggest",
                format!(
                    "{{\"part_id\":\"{}\",\"text\":\"{}\"}}",
                    json::escape(&b.part_id),
                    json::escape(&b.supplier_report)
                ),
            )
        })
        .collect();
    const SERVE_REQUESTS: u64 = 256;
    benches.push(bench("serve_rps", SERVE_REQUESTS, 1, 6, || {
        let report = qatk_serve::loadgen::run(
            &qatk_serve::LoadgenConfig {
                addr: serve_addr.clone(),
                connections: 4,
                total_requests: SERVE_REQUESTS as usize,
                mode: qatk_serve::Mode::Closed,
                seed: 42,
                timeout: std::time::Duration::from_secs(10),
                collect_raw: false,
            },
            &serve_templates,
        );
        assert_eq!(report.failed, 0, "serve_rps bench dropped requests");
        std::hint::black_box(report);
    }));
    server.shutdown();

    eprintln!("benchmarking annotate (bag-of-concepts pipeline) ...");
    let ann_bundles: Vec<_> = corpus.bundles.iter().take(32).collect();
    benches.push(bench("annotate", ann_bundles.len() as u64, 3, 40, || {
        for b in &ann_bundles {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).expect("corpus text is clean");
            std::hint::black_box(&cas);
        }
    }));

    eprintln!("benchmarking tokenize ...");
    let tok_pipeline = Pipeline::builder().add(WhitespaceTokenizer::new()).build();
    benches.push(bench("tokenize", ann_bundles.len() as u64, 3, 40, || {
        for b in &ann_bundles {
            let mut cas = b.to_cas(SourceSelection::Test);
            tok_pipeline.process(&mut cas).expect("tokenizer is total");
            std::hint::black_box(&cas);
        }
    }));

    eprintln!("benchmarking wal_append ...");
    let wal_path =
        std::env::temp_dir().join(format!("qatk_bench_report_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let mut wal = WalWriter::open(&wal_path).map_err(|e| e.to_string())?;
    let record = WalRecord::Insert {
        table: "bench".into(),
        row: row![1i64, "R-000001".to_owned(), "E-BENCH".to_owned()],
    };
    benches.push(bench("wal_append", 64, 3, 50, || {
        for _ in 0..64 {
            wal.append(&record).expect("temp wal append succeeds");
        }
    }));
    drop(wal);
    let _ = std::fs::remove_file(&wal_path);

    eprintln!("benchmarking wal_append_fsync (SyncPolicy::Always) ...");
    let fsync_path = std::env::temp_dir().join(format!(
        "qatk_bench_report_{}_fsync.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&fsync_path);
    let mut fsync_wal =
        WalWriter::open_with(&fsync_path, SyncPolicy::Always).map_err(|e| e.to_string())?;
    // few items and samples: every append pays a real sync_data, so one
    // sample is already milliseconds on spinning metal and the gate only
    // needs the order of magnitude
    benches.push(bench("wal_append_fsync", 8, 1, 12, || {
        for _ in 0..8 {
            fsync_wal
                .append(&record)
                .expect("temp wal fsync append succeeds");
        }
    }));
    drop(fsync_wal);
    let _ = std::fs::remove_file(&fsync_path);

    eprintln!("measuring observability overhead on classify_batch ...");
    let obs_overhead_pct = measure_obs_overhead(&knn, &kb, &queries);
    eprintln!("observability overhead: {obs_overhead_pct:+.2}% (limit {MAX_OBS_OVERHEAD_PCT}%)");
    if obs_overhead_pct > MAX_OBS_OVERHEAD_PCT {
        return Err(format!(
            "observability overhead {obs_overhead_pct:.2}% exceeds {MAX_OBS_OVERHEAD_PCT}% on classify_batch"
        ));
    }

    eprintln!("measuring tracing overhead on the rank kernel (no root span) ...");
    let trace_rank_pct = measure_trace_overhead(|| {
        std::hint::black_box(knn.rank(&kb, &q0.part_id, f0));
    });
    eprintln!("tracing overhead (rank): {trace_rank_pct:+.2}% (limit {MAX_TRACE_OVERHEAD_PCT}%)");

    eprintln!("measuring tracing overhead on the serve request path (loopback HTTP) ...");
    let trace_app = std::sync::Arc::new(quest::serve_app::QuestApp::new(
        std::sync::Arc::clone(&svc),
        quest::serve_app::HealthInfo::default(),
    ));
    let trace_server = qatk_serve::Server::bind(
        "127.0.0.1:0",
        qatk_serve::ServerConfig {
            threads: 2,
            ..qatk_serve::ServerConfig::default()
        },
        trace_app,
    )
    .map_err(|e| format!("bind loopback for trace overhead: {e}"))?;
    let suggest_body = format!(
        "{{\"part_id\":\"{}\",\"text\":\"{}\"}}",
        json::escape(&corpus.bundles[0].part_id),
        json::escape(&corpus.bundles[0].supplier_report)
    );
    let mut trace_client = qatk_serve::HttpClient::connect(
        trace_server.local_addr(),
        std::time::Duration::from_secs(5),
    )
    .map_err(|e| format!("connect loopback for trace overhead: {e}"))?;
    let trace_serve_pct = measure_trace_overhead(|| {
        let resp = trace_client
            .request("POST", "/suggest", Some(&suggest_body))
            .expect("loopback /suggest for trace overhead");
        assert_eq!(resp.status, 200, "trace-overhead probe request failed");
    });
    trace_server.shutdown();
    eprintln!("tracing overhead (serve): {trace_serve_pct:+.2}% (limit {MAX_TRACE_OVERHEAD_PCT}%)");
    for (what, pct) in [("rank", trace_rank_pct), ("serve", trace_serve_pct)] {
        if pct > MAX_TRACE_OVERHEAD_PCT {
            return Err(format!(
                "tracing overhead {pct:.2}% exceeds {MAX_TRACE_OVERHEAD_PCT}% on the {what} path"
            ));
        }
    }
    Ok((benches, obs_overhead_pct, trace_rank_pct, trace_serve_pct))
}

/// The replication catch-up benchmark (DESIGN.md §13): a leader holds
/// `REPL_SEGMENTS` sealed WAL segments; each sample boots a *fresh*
/// follower from nothing and measures wall time until its applied cursor
/// reaches the leader's tip. The entry's median is the lag-to-converge,
/// its throughput is sealed segments per second.
fn run_repl() -> Result<Vec<BenchResult>, String> {
    use qatk_repl::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const REPL_SEGMENTS: usize = 8;
    const ROWS_PER_SEGMENT: usize = 200;

    let dir = std::env::temp_dir().join(format!("qatk_bench_repl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let leader_dir = dir.join("leader");
    std::fs::create_dir_all(&leader_dir).map_err(|e| e.to_string())?;
    let leader_paths = ReplPaths::new(leader_dir.join("snap.qdb"), leader_dir.join("wal.log"));

    eprintln!(
        "preparing leader log ({REPL_SEGMENTS} sealed segments x {ROWS_PER_SEGMENT} rows) ..."
    );
    let (mut store, _) = LoggedDatabase::open_with_retention(
        &leader_paths.snapshot,
        &leader_paths.wal,
        SyncPolicy::OsOnly,
        SegmentRetention::Keep(REPL_SEGMENTS as u64 + 2),
    )
    .map_err(|e| e.to_string())?;
    let schema = SchemaBuilder::new()
        .pk("id", DataType::Int)
        .col("body", DataType::Text)
        .build()
        .map_err(|e| e.to_string())?;
    store
        .create_table("bench", schema)
        .map_err(|e| e.to_string())?;
    store.checkpoint().map_err(|e| e.to_string())?; // DDL rides the snapshot
    let body = "defect report payload ".repeat(5);
    for s in 0..REPL_SEGMENTS {
        let rows: Vec<Row> = (0..ROWS_PER_SEGMENT)
            .map(|i| row![(s * ROWS_PER_SEGMENT + i) as i64, body.clone()])
            .collect();
        store
            .insert_many("bench", rows)
            .map_err(|e| e.to_string())?;
        store.checkpoint().map_err(|e| e.to_string())?; // seal the segment
    }

    let leader = Leader::bind("127.0.0.1:0", leader_paths, LeaderConfig::default())
        .map_err(|e| e.to_string())?;
    let addr = leader.local_addr().to_string();

    eprintln!("benchmarking replica_catchup (fresh follower to converged) ...");
    let mut sample = 0usize;
    let result = bench("replica_catchup", REPL_SEGMENTS as u64, 1, 5, || {
        sample += 1;
        let fdir = dir.join(format!("follower_{sample}"));
        std::fs::create_dir_all(&fdir).expect("follower dir");
        let paths = ReplPaths::new(fdir.join("snap.qdb"), fdir.join("wal.log"));
        let (mut follower, _) =
            Follower::open(paths, FollowerConfig::default()).expect("open fresh follower");
        let status = follower.status();
        let stop = Arc::new(AtomicBool::new(false));
        let runner = std::thread::spawn({
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            move || follower.run(&addr, &stop, &mut |_, _| {})
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while !(status.connected()
            && status.applied().segment >= REPL_SEGMENTS as u64
            && status.lag_bytes() <= 0)
        {
            assert!(Instant::now() < deadline, "catch-up stalled past 30s");
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        stop.store(true, Ordering::SeqCst);
        runner
            .join()
            .expect("follower thread")
            .expect("clean follower stop");
        let _ = std::fs::remove_dir_all(&fdir);
    });
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(vec![result])
}

/// The scale-tier benchmarks (DESIGN.md §11): exact vs LSH-pruned sealed
/// ranking plus an 8-thread shared-snapshot pass, with the differential
/// recall measured against the exact oracle.
fn run_scale(tier: ScaleTier, seed: u64) -> Result<Vec<BenchResult>, String> {
    let label = tier.label();
    let config = ScaleConfig::tier(tier, seed);
    eprintln!(
        "generating {label} scale corpus ({} bundles, seed {seed}) ...",
        config.n_bundles
    );
    let t = Instant::now();
    let corpus = ScaleCorpus::generate(config);
    eprintln!(
        "  {:.1}s, {:.1} features/bundle, {} distinct codes",
        t.elapsed().as_secs_f64(),
        corpus.avg_features(),
        corpus.distinct_codes()
    );

    eprintln!("building knowledge base ...");
    let t = Instant::now();
    let mut kb = KnowledgeBase::new();
    for b in corpus.bundles() {
        kb.insert(
            ScaleCorpus::part_name(b.part),
            ScaleCorpus::code_name(b.code),
            FeatureSet::from_unsorted(b.features.to_vec()),
        );
    }
    eprintln!("  {:.1}s, {} nodes", t.elapsed().as_secs_f64(), kb.len());

    eprintln!("sealing segment (posting arena + LSH) ...");
    let t = Instant::now();
    let idx = SealedIndex::build(&kb);
    eprintln!(
        "  {:.1}s, {:.1} MB arena, {:.1}M lsh entries",
        t.elapsed().as_secs_f64(),
        idx.postings().arena_bytes() as f64 / 1e6,
        idx.lsh().n_entries() as f64 / 1e6
    );

    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
    let raw_queries = corpus.queries(RECALL_QUERIES, seed);
    let queries: Vec<(String, FeatureSet)> = raw_queries
        .into_iter()
        .map(|(part, feats)| {
            (
                ScaleCorpus::part_name(part),
                FeatureSet::from_unsorted(feats),
            )
        })
        .collect();

    // differential recall first — it also warms every cache line the
    // benches below touch
    eprintln!("measuring top-25 differential recall over {RECALL_QUERIES} queries ...");
    let top_codes = |ranked: &[ScoredCode]| -> Vec<String> {
        ranked.iter().take(25).map(|s| s.code.clone()).collect()
    };
    let (mut overlap, mut total) = (0usize, 0usize);
    for (part, f) in &queries {
        let exact = top_codes(&knn.rank_sealed(&idx, &kb, part, f));
        let pruned = top_codes(&knn.rank_sealed_pruned(&idx, &kb, part, f));
        overlap += exact.iter().filter(|c| pruned.contains(c)).count();
        total += exact.len();
    }
    let recall = if total == 0 {
        1.0
    } else {
        overlap as f64 / total as f64
    };
    eprintln!("  recall {:.2}% ({overlap}/{total})", recall * 100.0);

    let mut benches = Vec::new();
    // medians are per query; a few samples of the whole 256-query sweep
    // keep the exact arm's wall time bounded at the 1m tier
    let n = queries.len() as u64;
    eprintln!("benchmarking rank_{label} (LSH-pruned) ...");
    benches.push(bench(&format!("rank_{label}"), n, 1, 5, || {
        for (part, f) in &queries {
            std::hint::black_box(knn.rank_sealed_pruned(&idx, &kb, part, f));
        }
    }));
    eprintln!("benchmarking rank_{label}_exact ...");
    benches.push(bench(&format!("rank_{label}_exact"), n, 1, 3, || {
        for (part, f) in &queries {
            std::hint::black_box(knn.rank_sealed(&idx, &kb, part, f));
        }
    }));

    eprintln!("benchmarking suggest_{label} (8 threads, shared sealed snapshot) ...");
    const THREADS: usize = 8;
    benches.push(bench(&format!("suggest_{label}"), n, 1, 5, || {
        std::thread::scope(|scope| {
            for chunk in queries.chunks(queries.len().div_ceil(THREADS)) {
                let (knn, idx, kb) = (&knn, &idx, &kb);
                scope.spawn(move || {
                    for (part, f) in chunk {
                        std::hint::black_box(knn.rank_sealed_pruned(idx, kb, part, f));
                    }
                });
            }
        });
    }));

    let pruned = benches[0].median_ns;
    let exact = benches[1].median_ns;
    let speedup = exact as f64 / pruned.max(1) as f64;
    println!(
        "\n== scale tier {label} ==\n\
         pruned   {pruned:>12} ns/query\n\
         exact    {exact:>12} ns/query\n\
         speedup  {speedup:>11.1}x\n\
         recall   {:>11.1}%",
        recall * 100.0
    );
    if tier == ScaleTier::T1m {
        if speedup < MIN_1M_SPEEDUP {
            return Err(format!(
                "1m tier: pruned/exact speedup {speedup:.1}x below required {MIN_1M_SPEEDUP}x"
            ));
        }
        if recall < MIN_1M_RECALL {
            return Err(format!(
                "1m tier: differential recall {:.2}% below required {:.0}%",
                recall * 100.0,
                MIN_1M_RECALL * 100.0
            ));
        }
    }
    Ok(benches)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_PR10.json");
    let repl = args.iter().any(|a| a == "--repl");
    let check_path = flag_value(&args, "--check");
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let scale = flag_value(&args, "--scale")
        .map(|s| {
            ScaleTier::parse(s).ok_or_else(|| format!("bad --scale `{s}` (expected 100k|1m|10m)"))
        })
        .transpose()?;

    let (benches, fresh_overheads) = match (repl, scale) {
        (true, _) => (run_repl()?, None),
        (false, None) => {
            let (b, o, tr, ts) = run_classic(seed)?;
            (b, Some((o, tr, ts)))
        }
        (false, Some(tier)) => (run_scale(tier, seed)?, None),
    };

    println!("\n== bench_report ==");
    for b in &benches {
        println!(
            "{:18} median {:>12} ns  p95 {:>12} ns  {:>14.1} items/s",
            b.bench, b.median_ns, b.p95_ns, b.throughput
        );
    }

    // merge over an existing report so the classic and scale tiers
    // accumulate into one baseline file
    let (previous, prev_overheads) = match std::fs::read_to_string(out_path) {
        Ok(text) => {
            let prev =
                json::parse(&text).map_err(|e| format!("parsing existing {out_path}: {e}"))?;
            let overheads = (
                prev.get("obs_overhead_pct").and_then(Json::as_f64),
                prev.get("trace_overhead_rank_pct").and_then(Json::as_f64),
                prev.get("trace_overhead_serve_pct").and_then(Json::as_f64),
            );
            (parse_entries(&prev)?, overheads)
        }
        Err(_) => (Vec::new(), (None, None, None)),
    };
    let merged = merge_entries(&previous, &benches);
    // a scale/repl run leaves the classic run's overhead estimates in place
    let (obs, trace_rank, trace_serve) = match fresh_overheads {
        Some((o, tr, ts)) => (o, tr, ts),
        None => (
            prev_overheads.0.unwrap_or(0.0),
            prev_overheads.1.unwrap_or(0.0),
            prev_overheads.2.unwrap_or(0.0),
        ),
    };
    let report = render_report(&merged, obs, trace_rank, trace_serve);
    std::fs::write(out_path, &report).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "wrote {out_path} ({} entries, {} fresh)",
        merged.len(),
        benches.len()
    );

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = json::parse(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let regressions = check_against(&baseline, &benches)?;
        if !regressions.is_empty() {
            return Err(format!(
                "bench gate: {} regression(s) beyond {:.0}%:\n  {}",
                regressions.len(),
                REGRESSION_TOLERANCE * 100.0,
                regressions.join("\n  ")
            ));
        }
        println!("bench gate: all benches within tolerance");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
