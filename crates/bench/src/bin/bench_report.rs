//! bench_report — the performance-trajectory report behind the CI bench gate.
//!
//! Runs fixed micro-benchmarks over the hot paths metered by `qatk-obs`
//! (classify_batch, the rank kernel, concurrent `&self` suggest over one
//! shared snapshot, the HTTP serving layer end-to-end over loopback,
//! concept annotation, tokenization, WAL appends — both
//! OS-buffered and fsync-per-batch), writes a
//! `BENCH_PR6.json` report, and — with `--check baseline.json` — fails if
//! any benchmark's median regressed more than 25% against the checked-in
//! baseline. It also measures the observability
//! overhead on `classify_batch` by interleaving enabled/disabled samples of
//! the same binary and asserts it stays under 5%.
//!
//! Report schema (`qatk-bench-report/v1`):
//!
//! ```json
//! {
//!   "schema": "qatk-bench-report/v1",
//!   "benches": [
//!     {"bench": "classify_batch", "median_ns": 1, "p95_ns": 2, "throughput": 3.0}
//!   ],
//!   "obs_overhead_pct": 0.4
//! }
//! ```
//!
//! `median_ns`/`p95_ns` are per processed item (query, doc, append);
//! `throughput` is items per second at the median.
//!
//! `suggest_concurrent` measures eight threads sharing one published
//! `KnowledgeSnapshot` through the `&self` serving path; its unit is one
//! suggested bundle.
//!
//! `serve_rps` measures the whole wire path — loopback TCP, the qatk-serve
//! parser and thread pool, QUEST JSON routing, and the snapshot query
//! underneath — as a closed-loop `POST /suggest` load over four keep-alive
//! connections; its unit is one served request, so `throughput` is requests
//! per second.
//!
//! Run: `cargo run --release -p qatk-bench --bin bench_report -- [--out F] [--check BASELINE]`

use std::process::ExitCode;
use std::time::Instant;

use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_obs::json::{self, Value as Json};
use qatk_store::prelude::*;
use qatk_text::engine::Pipeline;
use qatk_text::tokenizer::WhitespaceTokenizer;

/// Median regression tolerated by `--check` before the gate fails.
const REGRESSION_TOLERANCE: f64 = 0.25;
/// Maximum instrumentation overhead tolerated on classify_batch. The
/// enabled-vs-disabled estimate carries a noise floor of a few percent on a
/// shared host even after min-of-pass/median-of-passes smoothing (single
/// passes of the original estimator swing from -6% to +11% on the same
/// binary), so the limit leaves headroom above that floor while still
/// catching any gross instrumentation regression.
const MAX_OBS_OVERHEAD_PCT: f64 = 5.0;

struct BenchResult {
    bench: &'static str,
    median_ns: u64,
    p95_ns: u64,
    /// Items per second at the median.
    throughput: f64,
}

/// Repetitions per benchmark; the reported statistics come from the fastest
/// repetition. Scheduler preemption and frequency scaling only ever slow a
/// run down, so min-of-medians converges to the true cost and keeps the CI
/// gate stable where a single median flaps by 2x under host load.
const BENCH_REPS: usize = 8;

/// Time `samples` invocations of `iter` (after `warmup` unrecorded ones);
/// each invocation processes `items` units. Statistics are per unit, from
/// the fastest of [`BENCH_REPS`] repetitions.
fn bench(
    name: &'static str,
    items: u64,
    warmup: usize,
    samples: usize,
    mut iter: impl FnMut(),
) -> BenchResult {
    for _ in 0..warmup {
        iter();
    }
    let mut best: Option<(u64, u64)> = None;
    for _ in 0..BENCH_REPS {
        let mut per_item: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            iter();
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            per_item.push(ns / items.max(1));
        }
        per_item.sort_unstable();
        let median_ns = per_item[per_item.len() / 2];
        let p95_ns = per_item[(per_item.len() * 95 / 100).min(per_item.len() - 1)];
        if best.is_none_or(|(m, _)| median_ns < m) {
            best = Some((median_ns, p95_ns));
        }
    }
    let (median_ns, p95_ns) = best.expect("at least one repetition ran");
    BenchResult {
        bench: name,
        median_ns,
        p95_ns,
        throughput: if median_ns == 0 {
            0.0
        } else {
            1e9 / median_ns as f64
        },
    }
}

/// Enabled-vs-disabled classify_batch timings, interleaved so drift hits
/// both arms equally. One interleave pass compares the *fastest* sample of
/// each arm — like [`BENCH_REPS`] min-of-medians, preemption and frequency
/// scaling only ever slow a sample down — and the reported overhead is the
/// median of several independent passes, since a single pass still swings a
/// few percent either way on a busy host. Returns the overhead in percent
/// (negative = noise).
fn measure_obs_overhead(knn: &RankedKnn, kb: &KnowledgeBase, queries: &[BatchQuery<'_>]) -> f64 {
    fn one_pass(knn: &RankedKnn, kb: &KnowledgeBase, queries: &[BatchQuery<'_>]) -> f64 {
        let rounds = 24;
        // several batch calls per sample: one call is ~100µs dominated by
        // worker spawn/join jitter, so each timed sample amortizes it
        let calls_per_sample = 4;
        let mut on = Vec::with_capacity(rounds);
        let mut off = Vec::with_capacity(rounds);
        for i in 0..rounds * 2 {
            qatk_obs::set_enabled(i % 2 == 0);
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                std::hint::black_box(knn.classify_batch(kb, queries));
            }
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if i % 2 == 0 {
                on.push(ns);
            } else {
                off.push(ns);
            }
        }
        let on = *on.iter().min().expect("rounds > 0") as f64;
        let off = *off.iter().min().expect("rounds > 0") as f64;
        (on - off) / off * 100.0
    }
    let mut estimates: Vec<f64> = (0..7).map(|_| one_pass(knn, kb, queries)).collect();
    qatk_obs::set_enabled(true);
    estimates.sort_by(|a, b| a.total_cmp(b));
    estimates[estimates.len() / 2]
}

fn render_report(benches: &[BenchResult], obs_overhead_pct: f64) -> String {
    let mut out = String::from("{\n  \"schema\": \"qatk-bench-report/v1\",\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"median_ns\": {}, \"p95_ns\": {}, \"throughput\": {:.1}}}{}\n",
            json::escape(b.bench),
            b.median_ns,
            b.p95_ns,
            b.throughput,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"obs_overhead_pct\": {obs_overhead_pct:.2}\n}}\n"
    ));
    out
}

/// Compare against a baseline report; returns the list of regressions.
fn check_against(baseline: &Json, benches: &[BenchResult]) -> Result<Vec<String>, String> {
    let entries = baseline
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("baseline has no `benches` array")?;
    let mut base: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in entries {
        let name = e
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("baseline entry without `bench` name")?;
        let med = e
            .get("median_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("baseline entry `{name}` without `median_ns`"))?;
        base.insert(name, med);
    }
    let mut regressions = Vec::new();
    println!(
        "\n== bench gate (tolerance {:.0}%) ==",
        REGRESSION_TOLERANCE * 100.0
    );
    for b in benches {
        match base.get(b.bench) {
            Some(&was) => {
                let ratio = b.median_ns as f64 / was.max(1) as f64;
                let verdict = if ratio > 1.0 + REGRESSION_TOLERANCE {
                    regressions.push(format!(
                        "{}: median {} ns vs baseline {} ns ({:+.1}%)",
                        b.bench,
                        b.median_ns,
                        was,
                        (ratio - 1.0) * 100.0
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{:16} {:>12} ns  baseline {:>12} ns  {:+7.1}%  {verdict}",
                    b.bench,
                    b.median_ns,
                    was,
                    (ratio - 1.0) * 100.0
                );
            }
            None => println!("{:16} {:>12} ns  (new, no baseline)", b.bench, b.median_ns),
        }
    }
    Ok(regressions)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_PR6.json");
    let check_path = flag_value(&args, "--check");
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);

    eprintln!("preparing corpus and knowledge base (seed {seed}) ...");
    let corpus = Corpus::generate(CorpusConfig::small(seed));
    let pipeline = build_pipeline(&corpus, FeatureModel::BagOfConcepts);
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &corpus.bundles {
        let Some(code) = b.error_code.as_deref() else {
            continue;
        };
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).map_err(|e| e.to_string())?;
        kb.insert(
            b.part_id.clone(),
            code,
            space.extract(&cas, FeatureModel::BagOfConcepts),
        );
    }
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);

    let probe_bundles: Vec<_> = corpus.bundles.iter().take(120).collect();
    let features: Vec<FeatureSet> = probe_bundles
        .iter()
        .map(|b| {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).expect("corpus text is clean");
            space.extract(&cas, FeatureModel::BagOfConcepts)
        })
        .collect();
    let queries: Vec<BatchQuery<'_>> = probe_bundles
        .iter()
        .zip(&features)
        .map(|(b, f)| BatchQuery {
            part_id: &b.part_id,
            features: f,
        })
        .collect();

    let mut benches = Vec::new();

    eprintln!("benchmarking classify_batch ...");
    benches.push(bench("classify_batch", queries.len() as u64, 3, 30, || {
        std::hint::black_box(knn.classify_batch(&kb, &queries));
    }));

    eprintln!("benchmarking rank kernel ...");
    let (q0, f0) = (&probe_bundles[0], &features[0]);
    benches.push(bench("rank", 1, 50, 200, || {
        std::hint::black_box(knn.rank(&kb, &q0.part_id, f0));
    }));

    eprintln!("benchmarking suggest_concurrent (8 threads, shared snapshot) ...");
    let svc = quest::service::RecommendationService::train(
        &corpus,
        FeatureModel::BagOfConcepts,
        SimilarityMeasure::Jaccard,
    );
    const SUGGEST_THREADS: usize = 8;
    let suggest_bundles: Vec<_> = corpus.bundles.iter().take(SUGGEST_THREADS * 8).collect();
    benches.push(bench(
        "suggest_concurrent",
        suggest_bundles.len() as u64,
        2,
        20,
        || {
            std::thread::scope(|scope| {
                for chunk in suggest_bundles.chunks(suggest_bundles.len() / SUGGEST_THREADS) {
                    let svc = &svc;
                    scope.spawn(move || {
                        for b in chunk {
                            std::hint::black_box(svc.suggest(b));
                        }
                    });
                }
            });
        },
    ));

    eprintln!("benchmarking serve_rps (HTTP /suggest over loopback, 4 connections) ...");
    let svc = std::sync::Arc::new(svc);
    let app = std::sync::Arc::new(quest::serve_app::QuestApp::new(
        std::sync::Arc::clone(&svc),
        quest::serve_app::HealthInfo::default(),
    ));
    let server = qatk_serve::Server::bind(
        "127.0.0.1:0",
        qatk_serve::ServerConfig {
            threads: 4,
            ..qatk_serve::ServerConfig::default()
        },
        app,
    )
    .map_err(|e| format!("bind loopback for serve_rps: {e}"))?;
    let serve_addr = server.local_addr().to_string();
    let serve_templates: Vec<qatk_serve::RequestTemplate> = corpus
        .bundles
        .iter()
        .take(64)
        .map(|b| {
            qatk_serve::RequestTemplate::post(
                "/suggest",
                format!(
                    "{{\"part_id\":\"{}\",\"text\":\"{}\"}}",
                    json::escape(&b.part_id),
                    json::escape(&b.supplier_report)
                ),
            )
        })
        .collect();
    const SERVE_REQUESTS: u64 = 256;
    benches.push(bench("serve_rps", SERVE_REQUESTS, 1, 6, || {
        let report = qatk_serve::loadgen::run(
            &qatk_serve::LoadgenConfig {
                addr: serve_addr.clone(),
                connections: 4,
                total_requests: SERVE_REQUESTS as usize,
                mode: qatk_serve::Mode::Closed,
                seed: 42,
                timeout: std::time::Duration::from_secs(10),
                collect_raw: false,
            },
            &serve_templates,
        );
        assert_eq!(report.failed, 0, "serve_rps bench dropped requests");
        std::hint::black_box(report);
    }));
    server.shutdown();

    eprintln!("benchmarking annotate (bag-of-concepts pipeline) ...");
    let ann_bundles: Vec<_> = corpus.bundles.iter().take(32).collect();
    benches.push(bench("annotate", ann_bundles.len() as u64, 3, 40, || {
        for b in &ann_bundles {
            let mut cas = b.to_cas(SourceSelection::Test);
            pipeline.process(&mut cas).expect("corpus text is clean");
            std::hint::black_box(&cas);
        }
    }));

    eprintln!("benchmarking tokenize ...");
    let tok_pipeline = Pipeline::builder().add(WhitespaceTokenizer::new()).build();
    benches.push(bench("tokenize", ann_bundles.len() as u64, 3, 40, || {
        for b in &ann_bundles {
            let mut cas = b.to_cas(SourceSelection::Test);
            tok_pipeline.process(&mut cas).expect("tokenizer is total");
            std::hint::black_box(&cas);
        }
    }));

    eprintln!("benchmarking wal_append ...");
    let wal_path =
        std::env::temp_dir().join(format!("qatk_bench_report_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let mut wal = WalWriter::open(&wal_path).map_err(|e| e.to_string())?;
    let record = WalRecord::Insert {
        table: "bench".into(),
        row: row![1i64, "R-000001".to_owned(), "E-BENCH".to_owned()],
    };
    benches.push(bench("wal_append", 64, 3, 50, || {
        for _ in 0..64 {
            wal.append(&record).expect("temp wal append succeeds");
        }
    }));
    drop(wal);
    let _ = std::fs::remove_file(&wal_path);

    eprintln!("benchmarking wal_append_fsync (SyncPolicy::Always) ...");
    let fsync_path = std::env::temp_dir().join(format!(
        "qatk_bench_report_{}_fsync.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&fsync_path);
    let mut fsync_wal =
        WalWriter::open_with(&fsync_path, SyncPolicy::Always).map_err(|e| e.to_string())?;
    // few items and samples: every append pays a real sync_data, so one
    // sample is already milliseconds on spinning metal and the gate only
    // needs the order of magnitude
    benches.push(bench("wal_append_fsync", 8, 1, 12, || {
        for _ in 0..8 {
            fsync_wal
                .append(&record)
                .expect("temp wal fsync append succeeds");
        }
    }));
    drop(fsync_wal);
    let _ = std::fs::remove_file(&fsync_path);

    eprintln!("measuring observability overhead on classify_batch ...");
    let obs_overhead_pct = measure_obs_overhead(&knn, &kb, &queries);
    eprintln!("observability overhead: {obs_overhead_pct:+.2}% (limit {MAX_OBS_OVERHEAD_PCT}%)");

    println!("\n== bench_report ==");
    for b in &benches {
        println!(
            "{:16} median {:>12} ns  p95 {:>12} ns  {:>14.1} items/s",
            b.bench, b.median_ns, b.p95_ns, b.throughput
        );
    }

    let report = render_report(&benches, obs_overhead_pct);
    std::fs::write(out_path, &report).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path}");

    if obs_overhead_pct > MAX_OBS_OVERHEAD_PCT {
        return Err(format!(
            "observability overhead {obs_overhead_pct:.2}% exceeds {MAX_OBS_OVERHEAD_PCT}% on classify_batch"
        ));
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = json::parse(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let regressions = check_against(&baseline, &benches)?;
        if !regressions.is_empty() {
            return Err(format!(
                "bench gate: {} regression(s) beyond {:.0}%:\n  {}",
                regressions.len(),
                REGRESSION_TOLERANCE * 100.0,
                regressions.join("\n  ")
            ));
        }
        println!("bench gate: all benches within tolerance");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
