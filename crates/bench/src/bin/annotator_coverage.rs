//! Experiment E5 — regenerates the **§4.5.3 annotator-coverage comparison**:
//! "the original taxonomy annotator does not recognize any taxonomy concepts
//! in 2530 out of the 7500 data bundles, but the new annotator finds
//! concepts in all of these."
//!
//! Run: `cargo run --release -p qatk-bench --bin annotator_coverage [-- --small]`

use qatk_bench::{print_vs, HarnessArgs};
use qatk_corpus::bundle::SourceSelection;
use qatk_taxonomy::concept::Lang;
use qatk_text::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();
    let tax = &corpus.taxonomy.taxonomy;

    let tokenizer = WhitespaceTokenizer::new();
    let optimized = ConceptAnnotator::new(tax);
    // the legacy annotator was single-language, case-sensitive, single-word
    let legacy = LegacyAnnotator::new(tax, Lang::De);

    let mut legacy_zero = 0usize;
    let mut optimized_zero = 0usize;
    let mut legacy_mentions = 0usize;
    let mut optimized_mentions = 0usize;
    for b in &corpus.bundles {
        let mut cas = b.to_cas(SourceSelection::Training);
        tokenizer.process(&mut cas).unwrap();

        let mut legacy_cas = cas.clone();
        legacy.process(&mut legacy_cas).unwrap();
        let n_legacy = legacy_cas.concept_mentions().count();
        legacy_mentions += n_legacy;
        if n_legacy == 0 {
            legacy_zero += 1;
        }

        optimized.process(&mut cas).unwrap();
        let n_opt = cas.concept_mentions().count();
        optimized_mentions += n_opt;
        if n_opt == 0 {
            optimized_zero += 1;
        }
    }

    let n = corpus.bundles.len();
    println!("\n== §4.5.3 annotator coverage over {n} bundles ==");
    print_vs(
        "legacy annotator: bundles w/o any concept",
        "2530/7500",
        &format!("{legacy_zero}/{n}"),
    );
    print_vs(
        "optimized annotator: bundles w/o any concept",
        "0",
        &format!("{optimized_zero}"),
    );
    print_vs(
        "optimized mentions per bundle (mean)",
        "~26",
        &format!("{:.1}", optimized_mentions as f64 / n as f64),
    );
    println!(
        "legacy mentions per bundle (mean):          {:.1}",
        legacy_mentions as f64 / n as f64
    );
    println!("\n-- shape checks --");
    println!(
        "optimized strictly higher recall: {}",
        optimized_mentions > legacy_mentions * 2
    );
    println!("optimized covers every bundle:    {}", optimized_zero == 0);
    println!(
        "legacy misses a large fraction:   {} ({:.0}%)",
        legacy_zero * 5 > n,
        legacy_zero as f64 / n as f64 * 100.0
    );
}
