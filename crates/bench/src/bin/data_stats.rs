//! Experiment E6 — regenerates the **§3.2 data-statistics table**:
//! paper-vs-measured for every population statistic of the data set.
//!
//! Run: `cargo run --release -p qatk-bench --bin data_stats [-- --small]`

use qatk_bench::{print_vs, HarnessArgs};
use qatk_corpus::stats::CorpusStats;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();
    let got = CorpusStats::compute(&corpus);
    let paper = CorpusStats::paper_reference();

    println!("\n== §3.2 data statistics: paper vs generated corpus ==");
    print_vs(
        "data bundles",
        &paper.n_bundles.to_string(),
        &got.n_bundles.to_string(),
    );
    print_vs(
        "distinct part IDs",
        &paper.n_part_ids.to_string(),
        &got.n_part_ids.to_string(),
    );
    print_vs(
        "distinct article codes",
        &paper.n_article_codes.to_string(),
        &got.n_article_codes.to_string(),
    );
    print_vs(
        "distinct error codes",
        &paper.n_error_codes.to_string(),
        &got.n_error_codes.to_string(),
    );
    print_vs(
        "singleton error codes",
        &paper.singleton_codes.to_string(),
        &got.singleton_codes.to_string(),
    );
    print_vs(
        "usable classes (non-singleton)",
        &paper.usable_classes.to_string(),
        &got.usable_classes.to_string(),
    );
    print_vs(
        "usable bundles",
        &paper.usable_bundles.to_string(),
        &got.usable_bundles.to_string(),
    );
    print_vs(
        "max distinct codes for one part ID",
        &paper.max_codes_per_part.to_string(),
        &got.max_codes_per_part.to_string(),
    );
    print_vs(
        "part IDs with > 10 codes",
        &format!("{} of 31", paper.parts_with_over_10_codes),
        &format!("{} of {}", got.parts_with_over_10_codes, got.n_part_ids),
    );
    print_vs(
        "mean words per bundle",
        &format!("~{:.0}", paper.avg_words_per_bundle),
        &format!("{:.1}", got.avg_words_per_bundle),
    );
}
