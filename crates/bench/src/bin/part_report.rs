//! Supplementary analysis: per-part-ID accuracy breakdown of the Fig. 11
//! configuration — which part types classify well, and how accuracy relates
//! to the size of a part's error-code pool. Not a paper figure; supports the
//! §3.2 observation that the classification difficulty is driven by the
//! per-part class counts.
//!
//! Run: `cargo run --release -p qatk-bench --bin part_report [-- --small]`

use qatk_bench::{pct, HarnessArgs};
use qatk_core::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();
    let config = ClassifierConfig {
        model: FeatureModel::BagOfConcepts,
        ..ClassifierConfig::default()
    };
    eprintln!("running {} ...", config.label());
    let r = run_experiment(&corpus, &config);

    println!("\n== per-part accuracy (bag-of-concepts + jaccard) ==");
    println!(
        "{:8} {:>8} {:>8} {:>8} {:>8}",
        "part", "tested", "@1", "@10", "codes"
    );
    let mut rows: Vec<_> = r.per_part.iter().collect();
    rows.sort_by(|a, b| {
        b.1.at(1)
            .unwrap_or(0.0)
            .total_cmp(&a.1.at(1).unwrap_or(0.0))
    });
    for (part, curve, tested) in &rows {
        let pool = corpus
            .world
            .codes_by_part
            .get(part.as_str())
            .map(Vec::len)
            .unwrap_or(0);
        println!(
            "{:8} {:>8} {:>8} {:>8} {:>8}",
            part,
            tested,
            pct(curve.at(1).unwrap_or(0.0)),
            pct(curve.at(10).unwrap_or(0.0)),
            pool
        );
    }
    println!(
        "\noverall @1 {} / @10 {} over {} bundles",
        pct(r.classifier.at(1).unwrap()),
        pct(r.classifier.at(10).unwrap()),
        r.total_tested
    );
    // the shape worth checking: bigger pools are harder at k=1
    let (big, small): (Vec<_>, Vec<_>) = rows.iter().partition(|(p, _, _)| {
        corpus
            .world
            .codes_by_part
            .get(p.as_str())
            .is_some_and(|c| c.len() > 40)
    });
    let avg = |set: &[&&(String, AccuracyCurve, usize)]| {
        if set.is_empty() {
            return 0.0;
        }
        set.iter().filter_map(|(_, c, _)| c.at(1)).sum::<f64>() / set.len() as f64
    };
    println!(
        "mean @1 for parts with >40 codes: {} — with <=40 codes: {}",
        pct(avg(&big.iter().collect::<Vec<_>>())),
        pct(avg(&small.iter().collect::<Vec<_>>()))
    );
}
