//! Experiment E4 — regenerates the **§5.2.2 runtime discussion** as a table:
//! per-fold wall time and per-bundle latency for bag-of-words,
//! bag-of-concepts and bag-of-words-without-stopwords, plus the
//! accuracy-neutrality of stopword removal.
//!
//! Paper reference (absolute numbers are testbed-specific; the *ratios* are
//! the reproduction target): BoW ≈ 11 min/fold ≈ 0.5 s/bundle; BoC ≈ 3
//! min/fold ≈ 0.14 s/bundle (≈ 3.6× faster); BoW−stopwords ≈ 7 min/fold ≈
//! 0.3 s/bundle (≈ 1.7× faster than BoW) at unchanged accuracy.
//!
//! Run: `cargo run --release -p qatk-bench --bin runtime_table [-- --small]`

use qatk_bench::{pct, HarnessArgs};
use qatk_core::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();

    let models = [
        FeatureModel::BagOfWords,
        FeatureModel::BagOfWordsNoStop,
        FeatureModel::BagOfConcepts,
    ];
    let mut results = Vec::new();
    for model in models {
        let config = ClassifierConfig {
            model,
            ..ClassifierConfig::default()
        };
        eprintln!("running {} ...", config.label());
        results.push(run_experiment(&corpus, &config));
    }

    println!("\n== §5.2.2 runtime table (jaccard, all reports) ==");
    println!(
        "{:24} {:>14} {:>16} {:>10} {:>10} {:>12}",
        "variant", "s/fold (mean)", "s/bundle", "acc@1", "acc@10", "features/b"
    );
    for r in &results {
        let mean_fold = r.fold_seconds.iter().sum::<f64>() / r.fold_seconds.len() as f64;
        println!(
            "{:24} {:>14.2} {:>16.5} {:>10} {:>10} {:>12.1}",
            r.config_label,
            mean_fold,
            r.seconds_per_bundle,
            pct(r.classifier.at(1).unwrap()),
            pct(r.classifier.at(10).unwrap()),
            r.mean_features_per_bundle
        );
    }

    let bow = &results[0];
    let nostop = &results[1];
    let boc = &results[2];
    println!("\n-- ratios (paper in parentheses) --");
    println!(
        "bow / boc latency:        {:.1}x  (paper ≈ 3.6x)",
        bow.seconds_per_bundle / boc.seconds_per_bundle
    );
    println!(
        "bow / bow-nostop latency: {:.1}x  (paper ≈ 1.7x)",
        bow.seconds_per_bundle / nostop.seconds_per_bundle
    );
    let d1 = (bow.classifier.at(1).unwrap() - nostop.classifier.at(1).unwrap()).abs();
    let d10 = (bow.classifier.at(10).unwrap() - nostop.classifier.at(10).unwrap()).abs();
    println!(
        "stopword removal accuracy delta: @1 {} / @10 {} (paper: no impact)",
        pct(d1),
        pct(d10)
    );
}
