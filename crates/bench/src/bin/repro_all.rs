//! Run the complete reproduction suite — every table and figure of the
//! paper's evaluation plus the extra ablations — in one go, in the order
//! the paper presents them. Equivalent to invoking each harness binary by
//! hand; see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for a
//! recorded run.
//!
//! Run: `cargo run --release -p qatk-bench --bin repro_all [-- --small]`

use std::process::{Command, ExitCode};

const HARNESSES: &[(&str, &str)] = &[
    ("data_stats", "§3.2 data statistics"),
    ("annotator_coverage", "§4.5.3 annotator coverage"),
    ("fig11", "Figure 11 — Experiment 1 (all reports)"),
    ("fig12", "Figure 12 — Experiment 2 (mechanic only)"),
    ("fig13", "Figure 13 — Experiment 2 (supplier only)"),
    ("runtime_table", "§5.2.2 runtime table"),
    ("fig14", "Figure 14 — §5.4 cross-source comparison"),
    ("part_report", "per-part breakdown (supplementary)"),
    ("ablations", "design-choice ablations (supplementary)"),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("current executable has a directory");

    for (bin, title) in HARNESSES {
        println!("\n################################################################");
        println!("## {title}");
        println!("################################################################");
        let path = exe_dir.join(bin);
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("harness {bin} failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!(
                    "could not launch {} ({e}); build the bench crate first: \
                     cargo build --release -p qatk-bench",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!("\nreproduction suite complete.");
    ExitCode::SUCCESS
}
