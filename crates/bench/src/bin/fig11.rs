//! Experiment E1 — regenerates **Figure 11** (paper §5.2): accuracy@k of the
//! four classifier variants (bag-of-words / bag-of-concepts × Jaccard /
//! overlap) against the code-frequency baseline and the per-model candidate
//! set baselines, under stratified 5-fold cross-validation.
//!
//! Run: `cargo run --release -p qatk-bench --bin fig11 [-- --small]`

use qatk_bench::{pct, print_curves, print_vs, HarnessArgs};
use qatk_core::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();

    let variants = [
        (FeatureModel::BagOfWords, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfWords, SimilarityMeasure::Overlap),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Overlap),
    ];
    let mut results = Vec::new();
    for (model, measure) in variants {
        let config = ClassifierConfig {
            model,
            measure,
            ..ClassifierConfig::default()
        };
        eprintln!("running {} ...", config.label());
        results.push(run_experiment(&corpus, &config));
    }

    let mut curves: Vec<&AccuracyCurve> = results.iter().map(|r| &r.classifier).collect();
    // frequency baseline identical across variants; take it from the first
    curves.push(&results[0].code_frequency);
    // candidate-set baselines per feature model (bow = idx 0, boc = idx 2)
    curves.push(&results[0].candidate_set);
    curves.push(&results[2].candidate_set);
    print_curves("Figure 11 — Experiment 1: all reports", &curves);

    println!("\n-- paper reference points (Fig. 11 / §5.2.1) --");
    print_vs(
        "bag-of-words+jaccard @1",
        "81%",
        &pct(results[0].classifier.at(1).unwrap()),
    );
    print_vs(
        "bag-of-words+jaccard @5",
        "94%",
        &pct(results[0].classifier.at(5).unwrap()),
    );
    print_vs(
        "bag-of-words+overlap @1",
        "76%",
        &pct(results[1].classifier.at(1).unwrap()),
    );
    print_vs(
        "bag-of-words+overlap @5",
        "93%",
        &pct(results[1].classifier.at(5).unwrap()),
    );
    print_vs(
        "bag-of-concepts+jaccard @1",
        "56%",
        &pct(results[2].classifier.at(1).unwrap()),
    );
    print_vs(
        "bag-of-concepts+jaccard @5",
        "85%",
        &pct(results[2].classifier.at(5).unwrap()),
    );
    print_vs(
        "bag-of-concepts+jaccard @10",
        "92%",
        &pct(results[2].classifier.at(10).unwrap()),
    );
    print_vs(
        "code-frequency baseline @1",
        "35%",
        &pct(results[0].code_frequency.at(1).unwrap()),
    );
    print_vs(
        "code-frequency baseline @5",
        "76%",
        &pct(results[0].code_frequency.at(5).unwrap()),
    );
    print_vs(
        "code-frequency baseline @10",
        "88%",
        &pct(results[0].code_frequency.at(10).unwrap()),
    );
    print_vs(
        "code-frequency baseline @25",
        "100%",
        &pct(results[0].code_frequency.at(25).unwrap()),
    );
    print_vs(
        "candidate-set baseline (boc) @1",
        "<1%",
        &pct(results[2].candidate_set.at(1).unwrap()),
    );
    print_vs(
        "candidate-set baseline (boc) @25",
        "~83%",
        &pct(results[2].candidate_set.at(25).unwrap()),
    );

    println!("\n-- shape checks --");
    let bow_j = results[0].classifier.at(1).unwrap();
    let bow_o = results[1].classifier.at(1).unwrap();
    let boc_j = results[2].classifier.at(1).unwrap();
    let boc_o = results[3].classifier.at(1).unwrap();
    let freq = results[0].code_frequency.at(1).unwrap();
    println!("bow+jaccard > bow+overlap @1:        {}", bow_j > bow_o);
    println!("bow+jaccard > boc+jaccard @1:        {}", bow_j > boc_j);
    println!("boc+jaccard > freq baseline @1:      {}", boc_j > freq);
    println!(
        "boc+overlap ~ freq baseline @1:      {:.3} vs {:.3}",
        boc_o, freq
    );
    println!(
        "\nmean features/bundle: bow={:.1} boc={:.1} (paper: ~70 words / ~26 mentions)",
        results[0].mean_features_per_bundle, results[2].mean_features_per_bundle
    );
    println!(
        "seconds/bundle: bow={:.4} boc={:.4}",
        results[0].seconds_per_bundle, results[2].seconds_per_bundle
    );

    // paired bootstrap: is BoW's @1 advantage over BoC significant? Both
    // runs share corpus + CV seed, so per-item outcomes align by index.
    let hits_bow = hits_at_k(&results[0].ranks, 1);
    let hits_boc = hits_at_k(&results[2].ranks, 1);
    let sig = paired_bootstrap(&hits_bow, &hits_boc, 2000, 0xB007);
    println!(
        "\npaired bootstrap BoW vs BoC @1: diff {:+.3} (95% CI [{:+.3}, {:+.3}], p = {:.4}, {})",
        sig.observed_diff,
        sig.ci_low,
        sig.ci_high,
        sig.p_value,
        if sig.significant() {
            "significant"
        } else {
            "not significant"
        }
    );
}
