//! Experiment E3 — regenerates **Figure 13** (paper §5.3): classification on
//! test bundles that include only the *supplier report*. Expected shape:
//! accuracies nearly as good as with all reports (paper: BoW+Jaccard 78 % @1,
//! > 90 % from k=5 for BoW / k=10 for BoC; BoC+overlap ≈ frequency baseline).
//!
//! Run: `cargo run --release -p qatk-bench --bin fig13 [-- --small]`

use qatk_bench::{pct, print_curves, print_vs, HarnessArgs};
use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();

    let variants = [
        (FeatureModel::BagOfWords, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfWords, SimilarityMeasure::Overlap),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Overlap),
    ];
    let mut results = Vec::new();
    for (model, measure) in variants {
        let config = ClassifierConfig {
            model,
            measure,
            test_selection: SourceSelection::SupplierOnly,
            ..ClassifierConfig::default()
        };
        eprintln!("running SR {} ...", config.label());
        results.push(run_experiment(&corpus, &config));
    }
    // the all-reports run for the "nearly as good" comparison
    eprintln!("running all-reports reference (bow+jaccard) ...");
    let full = run_experiment(
        &corpus,
        &ClassifierConfig {
            model: FeatureModel::BagOfWords,
            ..ClassifierConfig::default()
        },
    );

    let mut curves: Vec<&AccuracyCurve> = results.iter().map(|r| &r.classifier).collect();
    curves.push(&results[0].code_frequency);
    curves.push(&results[0].candidate_set);
    print_curves("Figure 13 — Experiment 2: supplier reports only", &curves);

    println!("\n-- paper reference points (§5.3.1) --");
    print_vs(
        "SR bag-of-words+jaccard @1",
        "78%",
        &pct(results[0].classifier.at(1).unwrap()),
    );
    print_vs(
        "SR bag-of-words @5 (>90%)",
        ">90%",
        &pct(results[0].classifier.at(5).unwrap()),
    );
    print_vs(
        "SR bag-of-concepts @10 (>90%)",
        ">90%",
        &pct(results[2].classifier.at(10).unwrap()),
    );

    println!("\n-- shape checks --");
    let sr1 = results[0].classifier.at(1).unwrap();
    let full1 = full.classifier.at(1).unwrap();
    println!(
        "supplier-only ≈ all-reports @1: {} vs {} (gap {})",
        pct(sr1),
        pct(full1),
        pct((full1 - sr1).abs())
    );
    println!(
        "boc+overlap resembles frequency baseline @1: {} vs {}",
        pct(results[3].classifier.at(1).unwrap()),
        pct(results[0].code_frequency.at(1).unwrap())
    );
}
