//! Experiment E2 — regenerates **Figure 12** (paper §5.3): classification on
//! test bundles that include only the *mechanic report* (knowledge base
//! still trained on all reports). Expected shape: all four variants fall
//! below the code-frequency baseline at k=1 (paper: 16–29 % vs 35 %).
//!
//! Run: `cargo run --release -p qatk-bench --bin fig12 [-- --small]`

use qatk_bench::{pct, print_curves, print_vs, HarnessArgs};
use qatk_core::prelude::*;
use qatk_corpus::bundle::SourceSelection;

fn main() {
    let args = HarnessArgs::parse();
    let corpus = args.corpus();

    let variants = [
        (FeatureModel::BagOfWords, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfWords, SimilarityMeasure::Overlap),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Jaccard),
        (FeatureModel::BagOfConcepts, SimilarityMeasure::Overlap),
    ];
    let mut results = Vec::new();
    for (model, measure) in variants {
        let config = ClassifierConfig {
            model,
            measure,
            test_selection: SourceSelection::MechanicOnly,
            ..ClassifierConfig::default()
        };
        eprintln!("running MR {} ...", config.label());
        results.push(run_experiment(&corpus, &config));
    }

    let mut curves: Vec<&AccuracyCurve> = results.iter().map(|r| &r.classifier).collect();
    curves.push(&results[0].code_frequency);
    curves.push(&results[0].candidate_set);
    curves.push(&results[2].candidate_set);
    print_curves("Figure 12 — Experiment 2: mechanic reports only", &curves);

    println!("\n-- paper reference points (§5.3.1) --");
    print_vs(
        "all variants @1 (range)",
        "16-29%",
        &format!(
            "{}..{}",
            pct(results
                .iter()
                .map(|r| r.classifier.at(1).unwrap())
                .fold(f64::INFINITY, f64::min)),
            pct(results
                .iter()
                .map(|r| r.classifier.at(1).unwrap())
                .fold(0.0, f64::max))
        ),
    );
    print_vs(
        "code-frequency baseline @1",
        "35%",
        &pct(results[0].code_frequency.at(1).unwrap()),
    );

    println!("\n-- shape checks --");
    let freq1 = results[0].code_frequency.at(1).unwrap();
    for r in &results {
        let a1 = r.classifier.at(1).unwrap();
        println!(
            "{:30} @1 {} below frequency baseline ({}): {}",
            r.config_label,
            pct(a1),
            pct(freq1),
            a1 < freq1
        );
    }
    // BoW still slightly better than BoC (paper: "the bag-of-word models
    // perform slightly better than the bag-of-concept models")
    println!(
        "bow@1 >= boc@1 (jaccard):  {}",
        results[0].classifier.at(1).unwrap() >= results[2].classifier.at(1).unwrap()
    );
}
