//! The bench-report machinery behind the CI bench gate: timing harness,
//! JSON rendering, baseline merging, and the regression check.
//!
//! Report schema (`qatk-bench-report/v1`):
//!
//! ```json
//! {
//!   "schema": "qatk-bench-report/v1",
//!   "benches": [
//!     {"bench": "classify_batch", "median_ns": 1, "p95_ns": 2, "throughput": 3.0}
//!   ],
//!   "obs_overhead_pct": 0.4,
//!   "trace_overhead_rank_pct": 0.1,
//!   "trace_overhead_serve_pct": 1.2
//! }
//! ```
//!
//! `median_ns`/`p95_ns` are per processed item (query, doc, append);
//! `throughput` is items per second at the median.
//!
//! The gate ([`check_against`]) fails on a median regression beyond
//! [`REGRESSION_TOLERANCE`], and *also* on a p95 regression beyond the same
//! tolerance — a change that leaves the median alone but grows the tail
//! (lock contention, allocator spikes, a slow path taken 1-in-20) used to
//! slip through. Baseline entries without a `p95_ns` field only gate the
//! median, so older reports stay usable. Baseline entries with no
//! counterpart in the current run are ignored — the tiered bench policy
//! runs different subsets (classic / 100k / 1m) against one shared
//! baseline file.

use std::time::Instant;

use qatk_obs::json::{self, Value as Json};

/// Median / p95 regression tolerated by [`check_against`] before the gate
/// fails.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Repetitions per benchmark; the reported median and p95 are each the
/// minimum across repetitions. Scheduler preemption and frequency scaling
/// only ever slow a run down, so min-of-medians converges to the true cost,
/// and min-of-p95s does the same for the tail — a single repetition's p95
/// is one sample of a blip lottery (a multi-ms container preemption landing
/// in a sub-µs bench flaps its p95 by 50%+), while the best rep of eight
/// demonstrates the code's own tail behaviour.
pub const BENCH_REPS: usize = 8;

/// One benchmark's reported statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    pub bench: String,
    pub median_ns: u64,
    pub p95_ns: u64,
    /// Items per second at the median.
    pub throughput: f64,
}

/// Time `samples` invocations of `iter` (after `warmup` unrecorded ones);
/// each invocation processes `items` units. Statistics are per unit; median
/// and p95 are each the minimum across [`BENCH_REPS`] repetitions.
pub fn bench(
    name: &str,
    items: u64,
    warmup: usize,
    samples: usize,
    mut iter: impl FnMut(),
) -> BenchResult {
    for _ in 0..warmup {
        iter();
    }
    let mut best_median: Option<u64> = None;
    let mut best_p95: Option<u64> = None;
    for _ in 0..BENCH_REPS {
        let mut per_item: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            iter();
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            per_item.push(ns / items.max(1));
        }
        per_item.sort_unstable();
        let median = per_item[per_item.len() / 2];
        let p95 = per_item[(per_item.len() * 95 / 100).min(per_item.len() - 1)];
        best_median = Some(best_median.map_or(median, |m| m.min(median)));
        best_p95 = Some(best_p95.map_or(p95, |p| p.min(p95)));
    }
    let median_ns = best_median.expect("at least one repetition ran");
    // min-p95 across reps, like min-median: a repetition whose p95 dodged
    // host preemption demonstrates the code's own tail; clamping to the
    // median keeps p95 >= median when the two minima come from different reps
    let p95_ns = best_p95
        .expect("at least one repetition ran")
        .max(median_ns);
    BenchResult {
        bench: name.to_owned(),
        median_ns,
        p95_ns,
        throughput: if median_ns == 0 {
            0.0
        } else {
            1e9 / median_ns as f64
        },
    }
}

/// Render the `qatk-bench-report/v1` JSON document. The trailing overhead
/// fields are the enabled-vs-disabled estimates the classic run measures:
/// qatk-obs on classify_batch, qatk-trace on the bare rank kernel (no root
/// span live, so the child-span probes must be free) and on the serve
/// request path (root span + children + publication).
pub fn render_report(
    benches: &[BenchResult],
    obs_overhead_pct: f64,
    trace_overhead_rank_pct: f64,
    trace_overhead_serve_pct: f64,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"qatk-bench-report/v1\",\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"median_ns\": {}, \"p95_ns\": {}, \"throughput\": {:.1}}}{}\n",
            json::escape(&b.bench),
            b.median_ns,
            b.p95_ns,
            b.throughput,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"obs_overhead_pct\": {obs_overhead_pct:.2},\n  \
         \"trace_overhead_rank_pct\": {trace_overhead_rank_pct:.2},\n  \
         \"trace_overhead_serve_pct\": {trace_overhead_serve_pct:.2}\n}}\n"
    ));
    out
}

/// Parse a report's `benches` array back into [`BenchResult`]s. Entries
/// without `p95_ns` get `p95_ns = 0` (old-format reports).
pub fn parse_entries(report: &Json) -> Result<Vec<BenchResult>, String> {
    let entries = report
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("report has no `benches` array")?;
    entries
        .iter()
        .map(|e| {
            let bench = e
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("report entry without `bench` name")?
                .to_owned();
            let median_ns = e
                .get("median_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("report entry `{bench}` without `median_ns`"))?;
            let p95_ns = e.get("p95_ns").and_then(Json::as_u64).unwrap_or(0);
            let throughput = e
                .get("throughput")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| {
                    if median_ns == 0 {
                        0.0
                    } else {
                        1e9 / median_ns as f64
                    }
                });
            Ok(BenchResult {
                bench,
                median_ns,
                p95_ns,
                throughput,
            })
        })
        .collect()
}

/// Merge freshly-run benches over a previous report's entries: a fresh
/// result replaces the previous entry of the same name (in place, keeping
/// the file's order stable), new names append. This is how one committed
/// baseline accumulates the classic, 100k and 1m tiers from separate runs.
pub fn merge_entries(previous: &[BenchResult], fresh: &[BenchResult]) -> Vec<BenchResult> {
    let mut merged: Vec<BenchResult> = previous.to_vec();
    for f in fresh {
        match merged.iter_mut().find(|m| m.bench == f.bench) {
            Some(slot) => *slot = f.clone(),
            None => merged.push(f.clone()),
        }
    }
    merged
}

/// Compare a run against a baseline report; returns the list of regression
/// descriptions (empty = gate passes) and prints one verdict line per
/// bench. Medians and p95s both gate at [`REGRESSION_TOLERANCE`]; baselines
/// without a recorded p95 (`p95_ns == 0`) gate only the median.
pub fn check_against(baseline: &Json, benches: &[BenchResult]) -> Result<Vec<String>, String> {
    let base = parse_entries(baseline)?;
    let mut regressions = Vec::new();
    println!(
        "\n== bench gate (tolerance {:.0}%, median + p95) ==",
        REGRESSION_TOLERANCE * 100.0
    );
    for b in benches {
        let Some(was) = base.iter().find(|e| e.bench == b.bench) else {
            println!("{:18} {:>12} ns  (new, no baseline)", b.bench, b.median_ns);
            continue;
        };
        let med_ratio = b.median_ns as f64 / was.median_ns.max(1) as f64;
        let mut verdict = "ok";
        if med_ratio > 1.0 + REGRESSION_TOLERANCE {
            regressions.push(format!(
                "{}: median {} ns vs baseline {} ns ({:+.1}%)",
                b.bench,
                b.median_ns,
                was.median_ns,
                (med_ratio - 1.0) * 100.0
            ));
            verdict = "REGRESSED (median)";
        }
        let p95_ratio = if was.p95_ns > 0 {
            let r = b.p95_ns as f64 / was.p95_ns as f64;
            if r > 1.0 + REGRESSION_TOLERANCE {
                regressions.push(format!(
                    "{}: p95 {} ns vs baseline {} ns ({:+.1}%)",
                    b.bench,
                    b.p95_ns,
                    was.p95_ns,
                    (r - 1.0) * 100.0
                ));
                verdict = "REGRESSED (p95)";
            }
            r
        } else {
            1.0
        };
        println!(
            "{:18} {:>12} ns  baseline {:>12} ns  median {:+7.1}%  p95 {:+7.1}%  {verdict}",
            b.bench,
            b.median_ns,
            was.median_ns,
            (med_ratio - 1.0) * 100.0,
            (p95_ratio - 1.0) * 100.0
        );
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, median: u64, p95: u64) -> BenchResult {
        BenchResult {
            bench: name.to_owned(),
            median_ns: median,
            p95_ns: p95,
            throughput: 1e9 / median as f64,
        }
    }

    fn baseline_json(entries: &[BenchResult]) -> Json {
        json::parse(&render_report(entries, 0.0, 0.0, 0.0)).expect("render emits valid json")
    }

    #[test]
    fn report_roundtrips_through_parse() {
        let benches = vec![result("rank", 1_000, 1_500), result("tokenize", 50, 80)];
        let parsed = parse_entries(&baseline_json(&benches)).unwrap();
        assert_eq!(parsed, benches);
    }

    #[test]
    fn overhead_fields_render_and_parse() {
        let doc = json::parse(&render_report(&[result("rank", 10, 20)], 1.25, -0.4, 2.75)).unwrap();
        assert_eq!(
            doc.get("obs_overhead_pct").and_then(Json::as_f64),
            Some(1.25)
        );
        assert_eq!(
            doc.get("trace_overhead_rank_pct").and_then(Json::as_f64),
            Some(-0.4)
        );
        assert_eq!(
            doc.get("trace_overhead_serve_pct").and_then(Json::as_f64),
            Some(2.75)
        );
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = baseline_json(&[result("rank", 1_000, 2_000)]);
        // +20% median, +24% p95: both inside the 25% tolerance
        let run = vec![result("rank", 1_200, 2_480)];
        assert!(check_against(&base, &run).unwrap().is_empty());
    }

    #[test]
    fn gate_fails_on_median_regression() {
        let base = baseline_json(&[result("rank", 1_000, 2_000)]);
        let run = vec![result("rank", 1_300, 2_000)];
        let regs = check_against(&base, &run).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("median"), "{regs:?}");
    }

    #[test]
    fn gate_fails_on_p95_regression_with_healthy_median() {
        // the tail-only regression the old median-only gate waved through
        let base = baseline_json(&[result("rank", 1_000, 2_000)]);
        let run = vec![result("rank", 1_000, 2_600)];
        let regs = check_against(&base, &run).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("p95"), "{regs:?}");
    }

    #[test]
    fn gate_skips_p95_when_baseline_has_none() {
        // old-format baseline entry (p95_ns = 0 after parse): only the
        // median gates, however wild the current tail is
        let base = json::parse(
            "{\"schema\": \"qatk-bench-report/v1\", \"benches\": [\
             {\"bench\": \"rank\", \"median_ns\": 1000, \"throughput\": 1.0}]}",
        )
        .unwrap();
        let run = vec![result("rank", 1_000, 9_999)];
        assert!(check_against(&base, &run).unwrap().is_empty());
    }

    #[test]
    fn gate_ignores_baseline_entries_not_in_run_and_vice_versa() {
        let base = baseline_json(&[
            result("rank", 1_000, 2_000),
            result("rank_1m", 500_000, 900_000),
        ]);
        // the PR tier runs only `rank` and a brand-new bench: the absent
        // `rank_1m` baseline and the baseline-less newcomer both pass
        let run = vec![result("rank", 1_000, 2_000), result("fresh", 1, 1)];
        assert!(check_against(&base, &run).unwrap().is_empty());
    }

    #[test]
    fn merge_replaces_in_place_and_appends() {
        let previous = vec![
            result("classify_batch", 100, 200),
            result("rank", 1_000, 2_000),
        ];
        let fresh = vec![
            result("rank", 900, 1_800),
            result("rank_100k", 5_000, 8_000),
        ];
        let merged = merge_entries(&previous, &fresh);
        assert_eq!(
            merged.iter().map(|b| b.bench.as_str()).collect::<Vec<_>>(),
            vec!["classify_batch", "rank", "rank_100k"]
        );
        assert_eq!(merged[1].median_ns, 900);
    }

    #[test]
    fn bench_harness_produces_sane_stats() {
        let r = bench("spin", 10, 0, 5, || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert_eq!(r.bench, "spin");
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.throughput > 0.0);
    }
}
