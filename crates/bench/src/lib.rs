//! Shared harness utilities for the experiment binaries that regenerate the
//! paper's tables and figures (see DESIGN.md §3 for the experiment index).

use qatk_core::pipeline::AccuracyCurve;
use qatk_corpus::generator::{Corpus, CorpusConfig};

pub mod report;

/// Parse harness CLI flags shared by all figure binaries.
///
/// * `--small` — run on a fast reduced corpus (shape only, for smoke runs);
/// * `--seed N` — override the corpus seed.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    pub small: bool,
    pub seed: u64,
}

impl HarnessArgs {
    pub fn parse() -> Self {
        let mut small = false;
        let mut seed = CorpusConfig::default().seed;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--small" => small = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs a number");
                }
                other => panic!("unknown flag {other} (supported: --small, --seed N)"),
            }
        }
        HarnessArgs { small, seed }
    }

    /// The corpus for this harness run.
    pub fn corpus(&self) -> Corpus {
        let config = if self.small {
            CorpusConfig {
                n_bundles: 1500,
                pool_scale: 0.2,
                seed: self.seed,
                ..CorpusConfig::default()
            }
        } else {
            CorpusConfig {
                seed: self.seed,
                ..CorpusConfig::default()
            }
        };
        eprintln!(
            "generating corpus (n_bundles={}, pool_scale={}, seed={:#x}) ...",
            config.n_bundles, config.pool_scale, config.seed
        );
        Corpus::generate(config)
    }
}

/// Format a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Print a figure-style table: one row per curve, one column per k.
pub fn print_curves(title: &str, curves: &[&AccuracyCurve]) {
    println!("\n== {title} ==");
    if curves.is_empty() {
        return;
    }
    let ks = &curves[0].ks;
    let label_w = curves
        .iter()
        .map(|c| c.label.len())
        .max()
        .unwrap_or(10)
        .max(8);
    print!("{:label_w$}", "");
    for k in ks {
        print!("  @{k:<5}");
    }
    println!();
    for c in curves {
        print!("{:label_w$}", c.label);
        for a in &c.accuracy {
            print!("  {}", pct(*a));
        }
        println!();
    }
}

/// Print a paper-vs-measured pair of values.
pub fn print_vs(metric: &str, paper: &str, measured: &str) {
    println!("{metric:42} paper: {paper:>10}   measured: {measured:>10}");
}
