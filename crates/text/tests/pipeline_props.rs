//! Property tests over the text-analytics substrate: tokenizer, stemmer,
//! sentence splitter and annotator invariants on arbitrary messy input.

use proptest::prelude::*;

use qatk_taxonomy::builder::TaxonomyBuilder;
use qatk_taxonomy::concept::{ConceptKind, Lang};
use qatk_taxonomy::normalize::normalize_token;
use qatk_text::prelude::*;

/// Messy-report-flavoured text: words, numbers, punctuation, umlauts.
fn arb_report() -> impl Strategy<Value = String> {
    "[a-zA-ZäöüÄÖÜß0-9 .,;:!?()/-]{0,160}"
}

fn tokenized(text: &str) -> Cas {
    let mut cas = Cas::new();
    cas.add_segment("r", text);
    WhitespaceTokenizer::new().process(&mut cas).unwrap();
    cas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokens_tile_the_text_without_overlap(text in arb_report()) {
        let cas = tokenized(&text);
        let mut last_end = 0usize;
        for t in cas.tokens() {
            // in order, non-overlapping, within bounds
            prop_assert!(t.begin >= last_end);
            prop_assert!(t.end <= cas.text().len());
            prop_assert!(t.begin < t.end, "empty token span");
            last_end = t.end;
            // covered text normalizes to the stored normalized form
            let surface = cas.covered_text(t);
            if let AnnotationKind::Token { normalized } = &t.kind {
                prop_assert_eq!(&normalize_token(surface), normalized);
            }
        }
    }

    #[test]
    fn token_count_matches_manual_split(text in arb_report()) {
        let cas = tokenized(&text);
        let manual = text
            .split(|c: char| !(c.is_alphanumeric() || c == '-'))
            .filter(|t| !t.is_empty())
            .count();
        prop_assert_eq!(cas.tokens().count(), manual);
    }

    #[test]
    fn stemming_is_idempotent_and_shrinking(word in "[a-zäöüß]{1,20}") {
        for lang in [DetectedLang::De, DetectedLang::En, DetectedLang::Unknown] {
            let once = stem(&word, lang);
            let twice = stem(&once, lang);
            prop_assert_eq!(&twice, &once, "stem not idempotent for {:?}", lang);
            prop_assert!(once.len() <= normalize_token(&word).len().max(word.len()));
        }
    }

    #[test]
    fn sentences_cover_only_alphanumeric_material(text in arb_report()) {
        let ranges = SentenceSplitter::split_ranges(&text);
        let mut last_end = 0usize;
        for (s, e) in &ranges {
            prop_assert!(*s >= last_end, "sentences overlap");
            prop_assert!(*e <= text.len());
            prop_assert!(
                text[*s..*e].chars().any(char::is_alphanumeric),
                "sentence without content: {:?}",
                &text[*s..*e]
            );
            last_end = *e;
        }
        // every alphanumeric char lands inside some sentence
        for (i, c) in text.char_indices() {
            if c.is_alphanumeric() {
                prop_assert!(
                    ranges.iter().any(|&(s, e)| s <= i && i < e),
                    "char {c:?} at {i} outside every sentence"
                );
            }
        }
    }

    #[test]
    fn language_detector_total_on_any_input(text in arb_report()) {
        // never panics, always yields a decision
        let _ = LanguageDetector::new().detect_text(&text);
    }

    #[test]
    fn annotator_mentions_lie_on_token_boundaries(text in arb_report()) {
        let mut b = TaxonomyBuilder::new("p");
        let c = b.root(ConceptKind::Component, "Fan");
        b.term(c, Lang::En, "fan");
        b.term(c, Lang::De, "lüfter");
        let s = b.root(ConceptKind::Symptom, "Noise");
        b.term(s, Lang::En, "crackling sound");
        let tax = b.build().unwrap();

        let mut cas = tokenized(&text);
        ConceptAnnotator::new(&tax).process(&mut cas).unwrap();
        let token_bounds: Vec<(usize, usize)> =
            cas.tokens().map(|t| (t.begin, t.end)).collect();
        for (ann, _, _) in cas.concept_mentions() {
            prop_assert!(token_bounds.iter().any(|&(b, _)| b == ann.begin));
            prop_assert!(token_bounds.iter().any(|&(_, e)| e == ann.end));
        }
    }
}
