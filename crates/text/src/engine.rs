//! Analysis engines and pipelines — the UIMA execution model in miniature.
//!
//! "These pipelines are composed of Analysis Engines containing annotators
//! with single text analytics functionalities" (paper §4.5.2). An engine
//! reads the CAS, adds annotations, and passes it on. The pipeline is the
//! ordered composition; QATK's standard order is tokenizer → language
//! detector → (stopword annotator) → concept annotator.

use std::fmt;

use crate::cas::Cas;

/// Errors produced by analysis engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// An engine needs annotations a previous engine should have produced.
    MissingPrerequisite {
        engine: String,
        requires: &'static str,
    },
    /// Engine-specific failure.
    Engine { engine: String, message: String },
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::MissingPrerequisite { engine, requires } => {
                write!(f, "engine `{engine}` requires `{requires}` annotations")
            }
            TextError::Engine { engine, message } => {
                write!(f, "engine `{engine}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for TextError {}

pub type Result<T> = std::result::Result<T, TextError>;

/// One annotator.
pub trait AnalysisEngine: Send + Sync {
    /// Stable engine name for diagnostics.
    fn name(&self) -> &str;

    /// Process one CAS, adding annotations in place.
    fn process(&self, cas: &mut Cas) -> Result<()>;
}

/// An ordered composition of engines.
pub struct Pipeline {
    engines: Vec<Box<dyn AnalysisEngine>>,
}

impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder {
            engines: Vec::new(),
        }
    }

    /// Run every engine over one CAS, in order.
    pub fn process(&self, cas: &mut Cas) -> Result<()> {
        // Span names must be static; the tokenizer stage files under
        // `text.tokenize`, everything else under `text.annotate`.
        // Consecutive engines of the same stage share one span, so a
        // traced request pays two text spans regardless of pipeline
        // depth — that bound is what holds the bench tracing-overhead
        // gate on `/suggest` at real pipeline sizes.
        fn stage(engine: &dyn AnalysisEngine) -> &'static str {
            if engine.name().contains("token") {
                "text.tokenize"
            } else {
                "text.annotate"
            }
        }
        let mut i = 0;
        while i < self.engines.len() {
            let name = stage(self.engines[i].as_ref());
            let _span = qatk_trace::child_span(name);
            while i < self.engines.len() && stage(self.engines[i].as_ref()) == name {
                self.engines[i].process(cas)?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Run over a batch of CASes.
    pub fn process_all<'a>(&self, cases: impl IntoIterator<Item = &'a mut Cas>) -> Result<usize> {
        let mut n = 0;
        for cas in cases {
            self.process(cas)?;
            n += 1;
        }
        Ok(n)
    }

    /// Engine names in execution order.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("engines", &self.engine_names())
            .finish()
    }
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    engines: Vec<Box<dyn AnalysisEngine>>,
}

impl PipelineBuilder {
    /// Append an engine.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, engine: impl AnalysisEngine + 'static) -> Self {
        self.engines.push(Box::new(engine));
        self
    }

    /// Append a boxed engine (for dynamically assembled pipelines).
    pub fn add_boxed(mut self, engine: Box<dyn AnalysisEngine>) -> Self {
        self.engines.push(engine);
        self
    }

    pub fn build(self) -> Pipeline {
        Pipeline {
            engines: self.engines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::{Annotation, AnnotationKind};

    struct Upcount;
    impl AnalysisEngine for Upcount {
        fn name(&self) -> &str {
            "upcount"
        }
        fn process(&self, cas: &mut Cas) -> Result<()> {
            let end = cas.text().len().min(1);
            cas.add_annotation(Annotation::new(0, end, AnnotationKind::Stopword));
            Ok(())
        }
    }

    struct Failing;
    impl AnalysisEngine for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn process(&self, _cas: &mut Cas) -> Result<()> {
            Err(TextError::Engine {
                engine: "failing".into(),
                message: "boom".into(),
            })
        }
    }

    fn cas() -> Cas {
        let mut c = Cas::new();
        c.add_segment("r", "some text");
        c
    }

    #[test]
    fn pipeline_runs_in_order() {
        let p = Pipeline::builder().add(Upcount).add(Upcount).build();
        assert_eq!(p.len(), 2);
        assert_eq!(p.engine_names(), vec!["upcount", "upcount"]);
        let mut c = cas();
        p.process(&mut c).unwrap();
        assert_eq!(c.annotations().len(), 2);
    }

    #[test]
    fn pipeline_stops_on_error() {
        let p = Pipeline::builder().add(Failing).add(Upcount).build();
        let mut c = cas();
        let err = p.process(&mut c).unwrap_err();
        assert!(matches!(err, TextError::Engine { .. }));
        assert!(c.annotations().is_empty());
    }

    #[test]
    fn process_all_counts() {
        let p = Pipeline::builder().add(Upcount).build();
        let mut cases = vec![cas(), cas(), cas()];
        let n = p.process_all(cases.iter_mut()).unwrap();
        assert_eq!(n, 3);
        for c in &cases {
            assert_eq!(c.annotations().len(), 1);
        }
    }

    #[test]
    fn boxed_engines_and_debug() {
        let p = Pipeline::builder().add_boxed(Box::new(Upcount)).build();
        assert!(!p.is_empty());
        let dbg = format!("{p:?}");
        assert!(dbg.contains("upcount"));
    }

    #[test]
    fn error_display() {
        let e = TextError::MissingPrerequisite {
            engine: "concepts".into(),
            requires: "Token",
        };
        assert!(e.to_string().contains("Token"));
        let e = TextError::Engine {
            engine: "x".into(),
            message: "y".into(),
        };
        assert!(e.to_string().contains("y"));
    }
}
