//! Text-layer metrics (DESIGN.md §7): tokenizer and trie concept annotator
//! throughput/latency, registered in the global [`qatk_obs::Registry`] under
//! the `qatk_text_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Histogram, Registry};

/// Handles to every `qatk_text_*` metric.
pub struct TextMetrics {
    /// CASes run through the whitespace tokenizer.
    pub docs_tokenized_total: &'static Counter,
    /// Token annotations emitted by the tokenizer.
    pub tokens_total: &'static Counter,
    /// Wall time of one tokenizer pass over a CAS.
    pub tokenize_latency_ns: &'static Histogram,
    /// CASes run through the trie concept annotator.
    pub docs_annotated_total: &'static Counter,
    /// Concept mentions emitted by the trie annotator.
    pub concept_hits_total: &'static Counter,
    /// Wall time of one concept-annotator pass over a CAS.
    pub annotate_latency_ns: &'static Histogram,
}

/// The text-layer metric handles (registered on first use).
pub fn metrics() -> &'static TextMetrics {
    static M: OnceLock<TextMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        TextMetrics {
            docs_tokenized_total: r.counter(
                "qatk_text_docs_tokenized_total",
                "CASes processed by the whitespace tokenizer",
            ),
            tokens_total: r.counter(
                "qatk_text_tokens_total",
                "token annotations emitted by the tokenizer",
            ),
            tokenize_latency_ns: r.histogram(
                "qatk_text_tokenize_latency_ns",
                "tokenizer pass latency per CAS (ns)",
            ),
            docs_annotated_total: r.counter(
                "qatk_text_docs_annotated_total",
                "CASes processed by the trie concept annotator",
            ),
            concept_hits_total: r.counter(
                "qatk_text_concept_hits_total",
                "concept mentions emitted by the trie annotator",
            ),
            annotate_latency_ns: r.histogram(
                "qatk_text_annotate_latency_ns",
                "concept-annotator pass latency per CAS (ns)",
            ),
        }
    })
}
