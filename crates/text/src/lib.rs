//! # qatk-text — UIMA-like text analytics substrate
//!
//! The paper builds QATK "on the Java version of the open-source Apache
//! standard UIMA", composing "modular linguistic processing pipelines" of
//! Analysis Engines over a Common Analysis Structure (§4.5.2). This crate is
//! that architecture in Rust:
//!
//! * [`cas`] — the CAS: segment-structured document text + typed span
//!   annotations, one CAS per data bundle;
//! * [`engine`] — the [`engine::AnalysisEngine`] trait and [`engine::Pipeline`];
//! * [`tokenizer`] — the custom whitespace/punctuation tokenizer;
//! * [`langdetect`] — per-segment German/English recognition;
//! * [`stopwords`] — DE/EN stopword lists + annotator (paper §5.2.2);
//! * [`stemmer`] + [`sentences`] — light DE/EN suffix stemmer and a
//!   workshop-prose-aware sentence splitter (the paper's §6 "more
//!   linguistic preprocessing" future work);
//! * [`concept_annotator`] — the optimized trie-based, multilingual,
//!   longest-match taxonomy annotator (paper §4.5.3);
//! * [`legacy_annotator`] — the low-recall legacy matcher the paper compares
//!   coverage against.
//!
//! ## Standard QATK pipeline
//!
//! ```
//! use qatk_text::prelude::*;
//! use qatk_taxonomy::prelude::*;
//!
//! let mut b = TaxonomyBuilder::new("demo");
//! let fan = b.root(ConceptKind::Component, "Fan");
//! b.term(fan, Lang::De, "Lüfter");
//!
//! let taxonomy = b.build().unwrap();
//! let pipeline = Pipeline::builder()
//!     .add(WhitespaceTokenizer::new())
//!     .add(LanguageDetector::new())
//!     .add(ConceptAnnotator::new(&taxonomy))
//!     .build();
//!
//! let mut cas = Cas::new();
//! cas.add_segment("supplier_report", "Lüfter funktioniert nicht.");
//! pipeline.process(&mut cas).unwrap();
//! assert_eq!(cas.concept_mentions().count(), 1);
//! ```

pub mod cas;
pub mod concept_annotator;
pub mod engine;
pub mod langdetect;
pub mod legacy_annotator;
pub mod metrics;
pub mod ngrams;
pub mod sentences;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cas::{Annotation, AnnotationKind, Cas, DetectedLang, Segment, SegmentId};
    pub use crate::concept_annotator::ConceptAnnotator;
    pub use crate::engine::{AnalysisEngine, Pipeline, PipelineBuilder, TextError};
    pub use crate::langdetect::{score_tokens, LangScores, LanguageDetector};
    pub use crate::legacy_annotator::LegacyAnnotator;
    pub use crate::ngrams::{char_ngrams, for_each_char_ngram};
    pub use crate::sentences::SentenceSplitter;
    pub use crate::stemmer::{stem, StemAnnotator};
    pub use crate::stopwords::{StopwordAnnotator, StopwordList};
    pub use crate::tokenizer::WhitespaceTokenizer;
}

pub use prelude::*;
