//! Per-segment language recognition for German/English code-switched reports.
//!
//! The paper's pipeline runs "Tokenization and Language Recognition" before
//! concept annotation (§4.4); reports are "mostly a mix of German and
//! English" (§3.2). This detector scores each segment with two lightweight,
//! language-independent-to-compute signals: stopword hits and characteristic
//! character patterns — no external models, as befits the thin-NLP
//! constraint.

use crate::cas::{Annotation, AnnotationKind, Cas, DetectedLang};
use crate::engine::{AnalysisEngine, Result};
use crate::stopwords::{ENGLISH, GERMAN};

/// Character n-grams that are strong cues for each language (checked on
/// normalized text, so umlauts appear as ae/oe/ue).
const DE_PATTERNS: &[&str] = &[
    "sch", "cht", "ung", "kei", "ief", "tz", "pf", "zw", "ae", "oe", "ue", "ss",
];
const EN_PATTERNS: &[&str] = &["th", "ing", "tion", "gh", "wh", "ck", "sh", "ey", "ou"];

/// Scores for one text: higher wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LangScores {
    pub de: f64,
    pub en: f64,
}

impl LangScores {
    /// Decide with a margin: if the scores are too close (or both ~0) report
    /// `Unknown` rather than guessing.
    pub fn decide(&self, margin: f64) -> DetectedLang {
        if self.de < 1e-9 && self.en < 1e-9 {
            return DetectedLang::Unknown;
        }
        if self.de > self.en * (1.0 + margin) {
            DetectedLang::De
        } else if self.en > self.de * (1.0 + margin) {
            DetectedLang::En
        } else {
            DetectedLang::Unknown
        }
    }
}

/// Score a normalized token stream.
pub fn score_tokens<'a>(tokens: impl Iterator<Item = &'a str>) -> LangScores {
    let mut de = 0.0;
    let mut en = 0.0;
    let mut n = 0usize;
    for tok in tokens {
        n += 1;
        // Stopword evidence is the strongest signal (weight 3).
        if GERMAN.contains(&tok) {
            de += 3.0;
        }
        if ENGLISH.contains(&tok) {
            en += 3.0;
        }
        for p in DE_PATTERNS {
            if tok.contains(p) {
                de += 1.0;
            }
        }
        for p in EN_PATTERNS {
            if tok.contains(p) {
                en += 1.0;
            }
        }
    }
    if n == 0 {
        return LangScores { de: 0.0, en: 0.0 };
    }
    LangScores {
        de: de / n as f64,
        en: en / n as f64,
    }
}

/// Engine annotating every segment with a [`AnnotationKind::LanguageSpan`].
/// Requires tokens.
#[derive(Debug, Clone, Copy)]
pub struct LanguageDetector {
    /// Relative margin one language must lead by; below it → `Unknown`.
    pub margin: f64,
}

impl Default for LanguageDetector {
    fn default() -> Self {
        LanguageDetector { margin: 0.15 }
    }
}

impl LanguageDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Detect the language of a free-standing text (utility entry point for
    /// callers outside a pipeline, e.g. the NHTSA comparison path).
    pub fn detect_text(&self, text: &str) -> DetectedLang {
        let toks = qatk_taxonomy::normalize::normalize_phrase(text);
        score_tokens(toks.iter().map(String::as_str)).decide(self.margin)
    }
}

impl AnalysisEngine for LanguageDetector {
    fn name(&self) -> &str {
        "language-detector"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let mut spans = Vec::with_capacity(cas.segments().len());
        for seg in cas.segments() {
            let scores = score_tokens(cas.annotations().iter().filter_map(|a| match &a.kind {
                AnnotationKind::Token { normalized }
                    if a.begin >= seg.begin && a.end <= seg.end =>
                {
                    Some(normalized.as_str())
                }
                _ => None,
            }));
            spans.push(Annotation::new(
                seg.begin,
                seg.end,
                AnnotationKind::LanguageSpan {
                    lang: scores.decide(self.margin),
                },
            ));
        }
        for s in spans {
            cas.add_annotation(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WhitespaceTokenizer;

    #[test]
    fn detects_german() {
        let d = LanguageDetector::new();
        assert_eq!(
            d.detect_text("Der Lüfter funktioniert nicht, Kontakt ist defekt und durchgeschmort"),
            DetectedLang::De
        );
    }

    #[test]
    fn detects_english() {
        let d = LanguageDetector::new();
        assert_eq!(
            d.detect_text("the radio turns on and off by itself, crackling sound from the speaker"),
            DetectedLang::En
        );
    }

    #[test]
    fn empty_is_unknown() {
        let d = LanguageDetector::new();
        assert_eq!(d.detect_text(""), DetectedLang::Unknown);
        assert_eq!(d.detect_text("12345 9921"), DetectedLang::Unknown);
    }

    #[test]
    fn per_segment_annotation() {
        let mut cas = Cas::new();
        let de = cas.add_segment(
            "supplier_report",
            "Der Kontakt ist defekt und durchgeschmort, die Einheit wurde geprüft",
        );
        let en = cas.add_segment(
            "mechanic_report",
            "the client says that the radio turns on and off by itself",
        );
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        LanguageDetector::new().process(&mut cas).unwrap();
        assert_eq!(cas.language_of(de), Some(DetectedLang::De));
        assert_eq!(cas.language_of(en), Some(DetectedLang::En));
    }

    #[test]
    fn mixed_or_ambiguous_is_unknown() {
        // equal pull in both directions with tiny evidence
        let scores = LangScores { de: 0.5, en: 0.5 };
        assert_eq!(scores.decide(0.15), DetectedLang::Unknown);
        let scores = LangScores { de: 0.0, en: 0.0 };
        assert_eq!(scores.decide(0.15), DetectedLang::Unknown);
    }

    #[test]
    fn score_tokens_scale_invariant() {
        let short = score_tokens(["der", "luefter"].into_iter());
        let long = score_tokens(["der", "luefter", "der", "luefter", "der", "luefter"].into_iter());
        assert!((short.de - long.de).abs() < 1e-9);
    }
}
