//! German and English stopword lists and the stopword annotator.
//!
//! The paper removes "German and English stopwords (articles and personal
//! pronouns)" as an optional step in the bag-of-words pipeline (§5.2.2); the
//! lists here cover those plus the most frequent closed-class function words
//! of both languages, which is what industrial stopword lists do in practice.

use std::collections::HashSet;

use crate::cas::{Annotation, AnnotationKind, Cas};
use crate::engine::{AnalysisEngine, Result};

/// German stopwords (normalized: lowercase, umlauts folded).
pub const GERMAN: &[&str] = &[
    // articles
    "der", "die", "das", "den", "dem", "des", "ein", "eine", "einen", "einem", "einer", "eines",
    // personal pronouns
    "ich", "du", "er", "sie", "es", "wir", "ihr", "mich", "dich", "ihn", "uns", "euch", "ihnen",
    "mir", "dir", "ihm", // frequent function words
    "und", "oder", "aber", "nicht", "kein", "keine", "ist", "sind", "war", "waren", "wird",
    "wurde", "hat", "haben", "bei", "mit", "von", "zu", "im", "am", "auf", "an", "in", "aus",
    "nach", "vor", "fuer", "durch", "wegen", "auch", "noch", "nur", "sehr", "dann", "dass", "wenn",
    "als", "wie", "so", "da", "hier", "dort",
];

/// English stopwords.
pub const ENGLISH: &[&str] = &[
    // articles
    "the", "a", "an", // personal pronouns
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them",
    // frequent function words
    "and", "or", "but", "not", "no", "is", "are", "was", "were", "be", "been", "has", "have", "had",
    "will", "would", "at", "by", "with", "from", "to", "in", "on", "of", "off", "for", "into",
    "after", "before", "also", "only", "very", "then", "that", "if", "when", "as", "like", "so",
    "there", "here", "this", "these", "its", "itself",
];

/// A compiled stopword set over normalized token forms.
#[derive(Debug, Clone)]
pub struct StopwordList {
    words: HashSet<&'static str>,
}

impl StopwordList {
    /// German + English union — the paper removes both at once since reports
    /// are code-switched.
    pub fn german_and_english() -> Self {
        let words = GERMAN.iter().chain(ENGLISH.iter()).copied().collect();
        StopwordList { words }
    }

    pub fn german() -> Self {
        StopwordList {
            words: GERMAN.iter().copied().collect(),
        }
    }

    pub fn english() -> Self {
        StopwordList {
            words: ENGLISH.iter().copied().collect(),
        }
    }

    /// Is the (already normalized) token a stopword?
    pub fn contains(&self, normalized: &str) -> bool {
        self.words.contains(normalized)
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Engine that marks stopword tokens with [`AnnotationKind::Stopword`] spans.
/// Requires tokens (run the tokenizer first).
#[derive(Debug, Clone)]
pub struct StopwordAnnotator {
    list: StopwordList,
}

impl Default for StopwordAnnotator {
    fn default() -> Self {
        Self::new()
    }
}

impl StopwordAnnotator {
    /// Annotator over the combined German+English list.
    pub fn new() -> Self {
        StopwordAnnotator {
            list: StopwordList::german_and_english(),
        }
    }

    pub fn with_list(list: StopwordList) -> Self {
        StopwordAnnotator { list }
    }
}

impl AnalysisEngine for StopwordAnnotator {
    fn name(&self) -> &str {
        "stopword-annotator"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let hits: Vec<(usize, usize)> = cas
            .annotations()
            .iter()
            .filter_map(|a| match &a.kind {
                AnnotationKind::Token { normalized } if self.list.contains(normalized) => {
                    Some((a.begin, a.end))
                }
                _ => None,
            })
            .collect();
        for (begin, end) in hits {
            cas.add_annotation(Annotation::new(begin, end, AnnotationKind::Stopword));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WhitespaceTokenizer;

    #[test]
    fn lists_have_articles_and_pronouns() {
        let de = StopwordList::german();
        assert!(de.contains("der"));
        assert!(de.contains("ich"));
        assert!(!de.contains("luefter"));
        let en = StopwordList::english();
        assert!(en.contains("the"));
        assert!(en.contains("it"));
        assert!(!en.contains("radio"));
        let both = StopwordList::german_and_english();
        assert!(both.contains("der") && both.contains("the"));
        assert_eq!(both.len(), de.len() + en.len() - overlap());
        assert!(!both.is_empty());
    }

    fn overlap() -> usize {
        GERMAN.iter().filter(|w| ENGLISH.contains(w)).count()
    }

    #[test]
    fn annotator_marks_stopwords() {
        let mut cas = Cas::new();
        cas.add_segment("r", "the radio and der Lüfter");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        StopwordAnnotator::new().process(&mut cas).unwrap();
        let spans = cas.stopword_spans();
        let words: Vec<&str> = spans.iter().map(|&(b, e)| &cas.text()[b..e]).collect();
        assert_eq!(words, vec!["the", "and", "der"]);
    }

    #[test]
    fn no_tokens_no_stopwords() {
        let mut cas = Cas::new();
        cas.add_segment("r", "the and der");
        // annotator without tokenizer finds nothing (tokens are prerequisites)
        StopwordAnnotator::new().process(&mut cas).unwrap();
        assert!(cas.stopword_spans().is_empty());
    }

    #[test]
    fn umlaut_stopwords_match_normalized() {
        let mut cas = Cas::new();
        cas.add_segment("r", "für den Motor");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        StopwordAnnotator::new().process(&mut cas).unwrap();
        let words: Vec<&str> = cas
            .stopword_spans()
            .iter()
            .map(|&(b, e)| &cas.text()[b..e])
            .collect();
        assert_eq!(words, vec!["für", "den"]);
    }

    #[test]
    fn custom_list() {
        let ann = StopwordAnnotator::with_list(StopwordList::english());
        let mut cas = Cas::new();
        cas.add_segment("r", "the der");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ann.process(&mut cas).unwrap();
        assert_eq!(cas.stopword_spans().len(), 1);
    }
}
