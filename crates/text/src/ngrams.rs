//! Character n-gram generation over normalized tokens.
//!
//! Bayer et al. (cmp-lg/9607003) argue character-n-gram features are domain-
//! and language-independent: no stemmer, stopword list, or taxonomy is
//! needed, and a single-character typo perturbs only the few grams that
//! overlap it instead of deleting the whole word feature. That makes them a
//! natural third feature model for the messy DE/EN corpus — the grams are
//! produced here, interned and set-collapsed by `qatk-core`'s feature layer.

/// Call `f` with every character `n`-gram of `token` for every `n` in
/// `lo..=hi`, in (n, position) order.
///
/// Grams are generated per token (never across token boundaries) on char
/// boundaries, so multi-byte text (umlauts, ß) slices correctly. A token
/// shorter than `lo` characters yields the whole token once — short words
/// like "öl" must not vanish from the feature space entirely. Degenerate
/// ranges (`lo == 0` or `hi < lo`) yield nothing.
pub fn for_each_char_ngram(token: &str, lo: usize, hi: usize, mut f: impl FnMut(&str)) {
    if token.is_empty() || lo == 0 || hi < lo {
        return;
    }
    // char-boundary byte offsets, including the end sentinel
    let bounds: Vec<usize> = token
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(token.len()))
        .collect();
    let n_chars = bounds.len() - 1;
    if n_chars < lo {
        f(token);
        return;
    }
    for n in lo..=hi.min(n_chars) {
        for start in 0..=(n_chars - n) {
            f(&token[bounds[start]..bounds[start + n]]);
        }
    }
}

/// All character n-grams of `token` for `n` in `lo..=hi`, collected.
pub fn char_ngrams(token: &str, lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    for_each_char_ngram(token, lo, hi, |g| out.push(g.to_owned()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_positions() {
        assert_eq!(
            char_ngrams("motor", 3, 3),
            vec!["mot", "oto", "tor"],
            "sliding window of width 3"
        );
    }

    #[test]
    fn range_emits_all_widths_in_order() {
        assert_eq!(
            char_ngrams("fan", 2, 3),
            vec!["fa", "an", "fan"],
            "all 2-grams then all 3-grams"
        );
    }

    #[test]
    fn short_token_survives_whole() {
        assert_eq!(char_ngrams("öl", 3, 5), vec!["öl"]);
        assert_eq!(char_ngrams("a", 3, 5), vec!["a"]);
    }

    #[test]
    fn multibyte_chars_slice_on_boundaries() {
        // "lüfter" is 6 chars / 7 bytes; grams must count chars, not bytes
        let grams = char_ngrams("lüfter", 3, 3);
        assert_eq!(grams, vec!["lüf", "üft", "fte", "ter"]);
        let wide = char_ngrams("geräusch", 5, 5);
        assert_eq!(wide.len(), 8 - 5 + 1);
        assert!(wide.contains(&"geräu".to_owned()));
    }

    #[test]
    fn hi_clamps_to_token_length() {
        // 4-char token with hi = 5: the 5-gram width is simply skipped
        assert_eq!(char_ngrams("buzz", 3, 5), vec!["buz", "uzz", "buzz"]);
    }

    #[test]
    fn degenerate_ranges_yield_nothing() {
        assert!(char_ngrams("motor", 0, 3).is_empty());
        assert!(char_ngrams("motor", 4, 3).is_empty());
        assert!(char_ngrams("", 3, 5).is_empty());
    }

    #[test]
    fn typo_preserves_most_grams() {
        // the motivating property: one substituted char kills at most
        // `width` grams per width — 3 + 4 + 5 = 12 here — and every other
        // gram still intersects; on compound-length tokens (the German
        // workshop vocabulary this model targets) that leaves a majority
        let clean: std::collections::HashSet<_> =
            char_ngrams("kompressorschaden", 3, 5).into_iter().collect();
        let noisy: std::collections::HashSet<_> =
            char_ngrams("kompreszorschaden", 3, 5).into_iter().collect();
        let shared = clean.intersection(&noisy).count();
        assert!(
            clean.len() - shared <= 12,
            "one typo killed more than 3+4+5 grams: {shared}/{}",
            clean.len()
        );
        assert!(
            shared * 2 > clean.len(),
            "typo kept under half the grams: {shared}/{}",
            clean.len()
        );
    }
}
