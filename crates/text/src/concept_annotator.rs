//! The optimized trie-based concept annotator.
//!
//! Implements the paper's improved taxonomy annotator (§4.5.3): the taxonomy
//! is loaded into a token trie; matching is *left-bounded greedy longest
//! match*, "eliminating concept matches which are completely enclosed by
//! other concept matches"; matching is multilingual (all languages share one
//! trie) and correctly captures multiwords. Matching runs on normalized
//! tokens, so casing, umlauts and the typical OEM-report sloppiness do not
//! break recall.

use std::collections::HashMap;
use std::sync::Arc;

use qatk_taxonomy::concept::{ConceptId, ConceptKind};
use qatk_taxonomy::taxonomy::Taxonomy;
use qatk_taxonomy::trie::TokenTrie;

use crate::cas::{Annotation, AnnotationKind, Cas};
use crate::engine::{AnalysisEngine, Result, TextError};

/// Trie-backed concept annotator.
///
/// Cheap to clone (the trie and kind map are shared); build once per
/// taxonomy and reuse across pipelines and threads.
#[derive(Debug, Clone)]
pub struct ConceptAnnotator {
    trie: Arc<TokenTrie>,
    kinds: Arc<HashMap<ConceptId, ConceptKind>>,
    /// Which concept kinds to emit. The paper annotates "occurrences of
    /// components and symptoms from the taxonomy" (§4.5.3).
    emit: Vec<ConceptKind>,
}

impl ConceptAnnotator {
    /// Build from a taxonomy, emitting components and symptoms (paper
    /// default).
    pub fn new(taxonomy: &Taxonomy) -> Self {
        Self::with_kinds(taxonomy, &[ConceptKind::Component, ConceptKind::Symptom])
    }

    /// Build emitting only the given kinds.
    pub fn with_kinds(taxonomy: &Taxonomy, emit: &[ConceptKind]) -> Self {
        let trie = TokenTrie::from_taxonomy(taxonomy);
        let kinds = taxonomy.concepts().iter().map(|c| (c.id, c.kind)).collect();
        ConceptAnnotator {
            trie: Arc::new(trie),
            kinds: Arc::new(kinds),
            emit: emit.to_vec(),
        }
    }

    /// The number of trie entries (diagnostics).
    pub fn entry_count(&self) -> usize {
        self.trie.len()
    }
}

impl AnalysisEngine for ConceptAnnotator {
    fn name(&self) -> &str {
        "concept-annotator"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.annotate_latency_ns);
        // Collect token views: (begin, end, normalized).
        let tokens: Vec<(usize, usize, &str)> = cas
            .annotations()
            .iter()
            .filter_map(|a| match &a.kind {
                AnnotationKind::Token { normalized } => Some((a.begin, a.end, normalized.as_str())),
                _ => None,
            })
            .collect();
        if tokens.is_empty() && !cas.text().trim().is_empty() {
            return Err(TextError::MissingPrerequisite {
                engine: self.name().to_owned(),
                requires: "Token",
            });
        }
        let norms: Vec<&str> = tokens.iter().map(|t| t.2).collect();

        let mut out: Vec<Annotation> = Vec::new();
        let mut i = 0usize;
        while i < norms.len() {
            match self.trie.longest_match(&norms, i) {
                Some((len, concepts)) => {
                    let begin = tokens[i].0;
                    let end = tokens[i + len - 1].1;
                    for &concept in concepts {
                        let kind =
                            self.kinds
                                .get(&concept)
                                .copied()
                                .ok_or_else(|| TextError::Engine {
                                    engine: self.name().to_owned(),
                                    message: format!(
                                        "trie concept {concept} missing from taxonomy"
                                    ),
                                })?;
                        if self.emit.contains(&kind) {
                            out.push(Annotation::new(
                                begin,
                                end,
                                AnnotationKind::ConceptMention { concept, kind },
                            ));
                        }
                    }
                    // Left-bounded greedy: consume the matched span entirely,
                    // which eliminates enclosed matches by construction.
                    i += len;
                }
                None => i += 1,
            }
        }
        m.docs_annotated_total.inc();
        m.concept_hits_total.add(out.len() as u64);
        for ann in out {
            cas.add_annotation(ann);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WhitespaceTokenizer;
    use qatk_taxonomy::builder::TaxonomyBuilder;
    use qatk_taxonomy::concept::Lang;

    fn taxonomy() -> (Taxonomy, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut b = TaxonomyBuilder::new("t");
        let comp = b.root(ConceptKind::Component, "Component");
        let fan = b.child(comp, "Fan");
        b.term(fan, Lang::En, "fan");
        b.term(fan, Lang::En, "cooling fan");
        b.term(fan, Lang::De, "Lüfter");
        let fender = b.child(comp, "Fender");
        b.terms(fender, Lang::En, ["fender", "mud guard", "splashboard"]);
        let sym = b.root(ConceptKind::Symptom, "Symptom");
        let crackle = b.child(sym, "Crackle");
        b.term(crackle, Lang::En, "crackling sound");
        let loc = b.root(ConceptKind::Location, "Location");
        let front = b.child(loc, "Front");
        b.term(front, Lang::En, "front");
        (b.build().unwrap(), fan, fender, crackle, front)
    }

    fn run(text: &str) -> (Cas, ConceptId, ConceptId, ConceptId, ConceptId) {
        let (tax, fan, fender, crackle, front) = taxonomy();
        let mut cas = Cas::new();
        cas.add_segment("r", text);
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ConceptAnnotator::new(&tax).process(&mut cas).unwrap();
        (cas, fan, fender, crackle, front)
    }

    #[test]
    fn single_and_multiword_mentions() {
        let (cas, fan, _, crackle, _) = run("Fan makes a crackling sound");
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].1, fan);
        assert_eq!(cas.covered_text(ms[0].0), "Fan");
        assert_eq!(ms[1].1, crackle);
        assert_eq!(cas.covered_text(ms[1].0), "crackling sound");
    }

    #[test]
    fn synonyms_collapse_to_one_concept() {
        let (cas_a, _, fender, _, _) = run("mud guard damaged");
        let (cas_b, _, _, _, _) = run("splashboard damaged");
        let (cas_c, _, _, _, _) = run("fender damaged");
        for cas in [&cas_a, &cas_b, &cas_c] {
            let ms: Vec<_> = cas.concept_mentions().collect();
            assert_eq!(ms.len(), 1);
            assert_eq!(ms[0].1, fender);
        }
    }

    #[test]
    fn multilingual_matching() {
        let (cas, fan, _, _, _) = run("LÜFTER defekt");
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1, fan);
    }

    #[test]
    fn longest_match_wins_and_encloses_nothing() {
        // "cooling fan" must match as one mention, not also "fan".
        let (cas, fan, _, _, _) = run("cooling fan rattles");
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1, fan);
        assert_eq!(cas.covered_text(ms[0].0), "cooling fan");
    }

    #[test]
    fn location_kind_filtered_by_default() {
        let (cas, _, _, _, _) = run("front fan broken");
        let kinds: Vec<ConceptKind> = cas.concept_mentions().map(|m| m.2).collect();
        assert_eq!(kinds, vec![ConceptKind::Component]);
    }

    #[test]
    fn custom_kinds() {
        let (tax, _, _, _, front) = taxonomy();
        let mut cas = Cas::new();
        cas.add_segment("r", "front panel");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ConceptAnnotator::with_kinds(&tax, &[ConceptKind::Location])
            .process(&mut cas)
            .unwrap();
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1, front);
    }

    #[test]
    fn requires_tokens() {
        let (tax, ..) = taxonomy();
        let mut cas = Cas::new();
        cas.add_segment("r", "fan");
        let err = ConceptAnnotator::new(&tax).process(&mut cas).unwrap_err();
        assert!(matches!(err, TextError::MissingPrerequisite { .. }));
    }

    #[test]
    fn empty_text_is_fine() {
        let (tax, ..) = taxonomy();
        let mut cas = Cas::new();
        cas.add_segment("r", "   ");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ConceptAnnotator::new(&tax).process(&mut cas).unwrap();
        assert_eq!(cas.concept_mentions().count(), 0);
    }

    #[test]
    fn entry_count_reports_trie_size() {
        let (tax, ..) = taxonomy();
        let a = ConceptAnnotator::new(&tax);
        assert_eq!(a.entry_count(), 8);
    }

    #[test]
    fn clone_shares_trie() {
        let (tax, ..) = taxonomy();
        let a = ConceptAnnotator::new(&tax);
        let b = a.clone();
        assert_eq!(a.entry_count(), b.entry_count());
    }
}
