//! Light suffix-stripping stemmer for German and English.
//!
//! The paper lists "introducing more linguistic preprocessing" as future
//! work (§6) — this module is that extension: a conservative, dictionary-free
//! stemmer in the spirit of Porter/Snowball, tuned for the inflection
//! patterns that actually occur in workshop reports ("funktioniert /
//! funktionieren", "melted / melting", "defekte / defekter"). It operates on
//! *normalized* tokens (lowercase, umlauts folded — see
//! [`qatk_taxonomy::normalize`]).

use crate::cas::{Annotation, AnnotationKind, Cas, DetectedLang};
use crate::engine::{AnalysisEngine, Result};

/// Minimum stem length left after stripping; shorter results are rejected
/// and the token kept whole (protects short high-information tokens).
const MIN_STEM: usize = 4;

/// English inflection suffixes, longest first.
const EN_SUFFIXES: &[&str] = &[
    "ements", "ations", "ingly", "ation", "ement", "ings", "ning", "ally", "edly", "ies", "ing",
    "ed", "es", "ly", "s",
];

/// German inflection suffixes, longest first (on normalized text, so "ß" is
/// already "ss" and umlauts are digraphs).
const DE_SUFFIXES: &[&str] = &[
    "igkeit", "heiten", "keiten", "lichen", "ungen", "erung", "ung", "ten", "en", "er", "es", "em",
    "st", "te", "e", "n", "s", "t",
];

/// Strip suffixes repeatedly until none applies (fixpoint). Iterating makes
/// conflation *consistent*: "defekt", "defekte" and "defekter" all reach the
/// same stem, which single-pass stripping cannot guarantee.
fn strip(token: &str, suffixes: &[&str]) -> String {
    let mut cur = token.to_owned();
    'outer: loop {
        for suf in suffixes {
            if let Some(stem) = cur.strip_suffix(suf) {
                if stem.chars().count() >= MIN_STEM {
                    cur = stem.to_owned();
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}

/// Stem one normalized token under a language assumption.
pub fn stem(token: &str, lang: DetectedLang) -> String {
    // never touch tokens with digits or hyphens: part numbers, spec
    // references and OEM jargon must stay intact
    if token.chars().any(|c| c.is_ascii_digit() || c == '-') {
        return token.to_owned();
    }
    match lang {
        DetectedLang::En => strip(token, EN_SUFFIXES),
        DetectedLang::De => strip(token, DE_SUFFIXES),
        // unknown language: try German first (longer suffixes), then English
        DetectedLang::Unknown => {
            let de = strip(token, DE_SUFFIXES);
            if de.len() < token.len() {
                de
            } else {
                strip(token, EN_SUFFIXES)
            }
        }
    }
}

/// Engine that re-normalizes every token annotation to its stem, using the
/// segment language where the language detector provided one. Run it after
/// the tokenizer (and detector) and before feature extraction.
#[derive(Debug, Default, Clone, Copy)]
pub struct StemAnnotator;

impl StemAnnotator {
    pub fn new() -> Self {
        StemAnnotator
    }
}

impl AnalysisEngine for StemAnnotator {
    fn name(&self) -> &str {
        "stem-annotator"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        // language per segment (Unknown when the detector did not run)
        let seg_langs: Vec<(usize, usize, DetectedLang)> = cas
            .segments()
            .iter()
            .map(|s| {
                (
                    s.begin,
                    s.end,
                    cas.language_of(s.id).unwrap_or(DetectedLang::Unknown),
                )
            })
            .collect();
        let lang_at = |off: usize| {
            seg_langs
                .iter()
                .find(|&&(b, e, _)| b <= off && off < e.max(b + 1))
                .map(|&(_, _, l)| l)
                .unwrap_or(DetectedLang::Unknown)
        };

        let updates: Vec<Annotation> = cas
            .annotations()
            .iter()
            .filter_map(|a| match &a.kind {
                AnnotationKind::Token { normalized } => {
                    let stemmed = stem(normalized, lang_at(a.begin));
                    if &stemmed != normalized {
                        Some(Annotation::new(
                            a.begin,
                            a.end,
                            AnnotationKind::Token {
                                normalized: stemmed,
                            },
                        ))
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect();
        if updates.is_empty() {
            return Ok(());
        }
        // rewrite in place: replace matching token annotations
        let mut rewritten = Vec::with_capacity(cas.annotations().len());
        for a in cas.annotations() {
            if let AnnotationKind::Token { .. } = a.kind {
                if let Some(u) = updates
                    .iter()
                    .find(|u| u.begin == a.begin && u.end == a.end)
                {
                    rewritten.push(u.clone());
                    continue;
                }
            }
            rewritten.push(a.clone());
        }
        cas.clear_annotations();
        for a in rewritten {
            cas.add_annotation(a);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::langdetect::LanguageDetector;
    use crate::tokenizer::WhitespaceTokenizer;

    #[test]
    fn english_inflections_collapse() {
        assert_eq!(stem("melted", DetectedLang::En), "melt");
        assert_eq!(stem("melting", DetectedLang::En), "melt");
        assert_eq!(stem("crackles", DetectedLang::En), "crackl");
        assert_eq!(stem("reports", DetectedLang::En), "report");
        // same stem for variants
        assert_eq!(
            stem("melted", DetectedLang::En),
            stem("melting", DetectedLang::En)
        );
    }

    #[test]
    fn german_inflections_collapse() {
        // all inflected variants of one lemma reach the same stem
        let variants = ["defekt", "defekte", "defekter", "defektes"];
        let stems: Vec<String> = variants.iter().map(|v| stem(v, DetectedLang::De)).collect();
        assert!(stems.windows(2).all(|w| w[0] == w[1]), "{stems:?}");
        assert_eq!(
            stem("funktionieren", DetectedLang::De),
            stem("funktioniert", DetectedLang::De)
        );
        assert_eq!(stem("pruefungen", DetectedLang::De), "pruef");
    }

    #[test]
    fn short_tokens_protected() {
        assert_eq!(stem("les", DetectedLang::En), "les");
        assert_eq!(stem("an", DetectedLang::De), "an");
        assert_eq!(stem("fans", DetectedLang::En), "fans"); // stem would be 3 chars
    }

    #[test]
    fn jargon_and_numbers_untouched() {
        assert_eq!(stem("schmorka-47", DetectedLang::De), "schmorka-47");
        assert_eq!(stem("x24i", DetectedLang::En), "x24i");
        assert_eq!(stem("id470s", DetectedLang::De), "id470s");
    }

    #[test]
    fn unknown_language_tries_both() {
        // german-looking word without detector info conflates with its lemma
        assert_eq!(
            stem("kontakten", DetectedLang::Unknown),
            stem("kontakt", DetectedLang::De)
        );
        // english-only suffix
        assert_eq!(stem("mounting", DetectedLang::Unknown), "mount");
    }

    #[test]
    fn annotator_rewrites_token_norms() {
        let mut cas = Cas::new();
        cas.add_segment("r", "the contacts melted during testing");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        LanguageDetector::new().process(&mut cas).unwrap();
        StemAnnotator::new().process(&mut cas).unwrap();
        let norms = cas.token_norms();
        assert!(norms.contains(&"contact"));
        assert!(norms.contains(&"melt"));
        assert!(norms.contains(&"test"));
        // surface text untouched
        assert!(cas.text().contains("contacts melted"));
    }

    #[test]
    fn annotator_without_tokens_is_noop() {
        let mut cas = Cas::new();
        cas.add_segment("r", "text");
        StemAnnotator::new().process(&mut cas).unwrap();
        assert!(cas.annotations().is_empty());
    }

    #[test]
    fn idempotent() {
        let mut cas = Cas::new();
        cas.add_segment("r", "melted contacts");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        StemAnnotator::new().process(&mut cas).unwrap();
        let first = cas.token_norms().join(" ");
        StemAnnotator::new().process(&mut cas).unwrap();
        assert_eq!(cas.token_norms().join(" "), first);
    }
}
