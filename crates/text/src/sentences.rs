//! Sentence segmentation — part of the "more linguistic preprocessing" the
//! paper's §6 future work calls for, and a prerequisite for any downstream
//! engine that needs sentence scope (negation handling, cause/effect
//! extraction à la [17]).
//!
//! Workshop prose is not newswire: sentences are clipped, punctuation is
//! often missing, and abbreviations with trailing periods ("def.", "funkt.",
//! "z.b.") are everywhere. The splitter therefore treats `.`, `!`, `?` and
//! newlines as boundaries, but *not* after a known abbreviation or a
//! single-letter/numeric token, and never splits inside a segment-less run
//! without terminal punctuation (the rest of the segment is one sentence).

use crate::cas::{Annotation, AnnotationKind, Cas};
use crate::engine::{AnalysisEngine, Result};

/// Abbreviation stems (lowercased, without the trailing period) that must
/// not terminate a sentence. Mirrors [`crate::stopwords`]-style closed lists.
const ABBREVIATIONS: &[&str] = &[
    "def", "funkt", "chk", "repl", "cust", "acc", "ers", "kont", "bt", "fzg", "veh", "intermit",
    "spor", "z.b", "u.a", "ca", "nr", "no", "vgl", "ggf", "evtl", "i.o", "n",
];

/// The sentence annotator: adds one `Sentence`-kind annotation per sentence
/// and segment. Runs on raw text; does not require tokens.
#[derive(Debug, Default, Clone, Copy)]
pub struct SentenceSplitter;

impl SentenceSplitter {
    pub fn new() -> Self {
        SentenceSplitter
    }

    /// Split a text into sentence byte ranges (relative to the text).
    pub fn split_ranges(text: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        let bytes = text.char_indices().collect::<Vec<_>>();
        let mut i = 0usize;
        while i < bytes.len() {
            let (off, c) = bytes[i];
            if c.is_whitespace() && start.is_none() {
                i += 1;
                continue;
            }
            if start.is_none() {
                start = Some(off);
            }
            let is_terminal =
                matches!(c, '!' | '?' | '\n') || (c == '.' && !ends_with_abbreviation(text, off));
            if is_terminal {
                let s = start.take().expect("open sentence");
                let end = if c == '\n' { off } else { off + c.len_utf8() };
                // punctuation-only runs ("...") are noise, not sentences
                if text[s..end].chars().any(char::is_alphanumeric) {
                    out.push((s, end));
                }
            }
            i += 1;
        }
        if let Some(s) = start {
            if text[s..].chars().any(char::is_alphanumeric) {
                out.push((s, text.len()));
            }
        }
        out
    }
}

/// Is the period at byte `dot` part of an abbreviation ("def.", "z.b.") or a
/// number ("4.")?
fn ends_with_abbreviation(text: &str, dot: usize) -> bool {
    let before = &text[..dot];
    let word_start = before
        .rfind(|c: char| c.is_whitespace())
        .map(|i| i + 1)
        .unwrap_or(0);
    let word = before[word_start..].to_lowercase();
    if word.is_empty() {
        return false;
    }
    // single letters and digits don't end sentences ("type 4. generation")
    if word.chars().count() == 1 || word.chars().all(|c| c.is_ascii_digit()) {
        return true;
    }
    ABBREVIATIONS.contains(&word.as_str())
}

impl AnalysisEngine for SentenceSplitter {
    fn name(&self) -> &str {
        "sentence-splitter"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let mut pending = Vec::new();
        for seg in cas.segments() {
            let seg_text = &cas.text()[seg.begin..seg.end];
            for (s, e) in Self::split_ranges(seg_text) {
                pending.push(Annotation::new(
                    seg.begin + s,
                    seg.begin + e,
                    AnnotationKind::Sentence,
                ));
            }
        }
        for a in pending {
            cas.add_annotation(a);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(text: &str) -> Vec<&str> {
        SentenceSplitter::split_ranges(text)
            .into_iter()
            .map(|(s, e)| &text[s..e])
            .collect()
    }

    #[test]
    fn splits_on_terminal_punctuation() {
        let s = split("Unit non-functional. Kontakt defekt! Works now?");
        assert_eq!(
            s,
            vec!["Unit non-functional.", "Kontakt defekt!", "Works now?"]
        );
    }

    #[test]
    fn missing_final_punctuation_keeps_tail() {
        let s = split("first sentence. second without end");
        assert_eq!(s, vec!["first sentence.", "second without end"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split("Teil def. und durchgeschmort. Ersatz bestellt.");
        assert_eq!(s, vec!["Teil def. und durchgeschmort.", "Ersatz bestellt."]);
        let s = split("funkt. nicht mehr. ok.");
        assert_eq!(s, vec!["funkt. nicht mehr.", "ok."]);
    }

    #[test]
    fn numbers_and_initials_do_not_split() {
        let s = split("type 4. generation radio. replaced.");
        assert_eq!(s, vec!["type 4. generation radio.", "replaced."]);
        let s = split("part A. checked fully.");
        assert_eq!(s, vec!["part A. checked fully."]);
    }

    #[test]
    fn newline_is_a_boundary() {
        let s = split("line one\nline two");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(split("").is_empty());
        assert!(split("   \n  ").is_empty());
        assert_eq!(split("..."), Vec::<&str>::new());
    }

    #[test]
    fn annotator_per_segment() {
        let mut cas = Cas::new();
        cas.add_segment("mechanic_report", "Radio dead. Smell noticed.");
        cas.add_segment("supplier_report", "Kontakt defekt.");
        SentenceSplitter::new().process(&mut cas).unwrap();
        let sentences: Vec<&str> = cas
            .annotations()
            .iter()
            .filter(|a| matches!(a.kind, AnnotationKind::Sentence))
            .map(|a| cas.covered_text(a))
            .collect();
        assert_eq!(
            sentences,
            vec!["Radio dead.", "Smell noticed.", "Kontakt defekt."]
        );
        // sentences never straddle segment boundaries
        for a in cas.annotations() {
            if matches!(a.kind, AnnotationKind::Sentence) {
                let seg = cas.segment_at(a.begin).unwrap();
                assert!(a.end <= seg.end);
            }
        }
    }

    #[test]
    fn umlauts_in_sentences() {
        let s = split("Lüfter prüfen. Gehäuse öffnen.");
        assert_eq!(s, vec!["Lüfter prüfen.", "Gehäuse öffnen."]);
    }
}
