//! The whitespace/punctuation tokenizer.
//!
//! "a simple custom whitespace-/punctuation-tokenizer" (paper §4.5.2). Each
//! token annotation stores its normalized form (lowercase, umlauts folded) so
//! later engines — stopword annotator, concept annotator, bag-of-words
//! feature extraction — share one normalization.

use qatk_taxonomy::normalize::{is_separator, normalize_token};

use crate::cas::{Annotation, AnnotationKind, Cas};
use crate::engine::{AnalysisEngine, Result};

/// Tokenizer engine. Stateless; one instance serves the whole pipeline.
#[derive(Debug, Default, Clone, Copy)]
pub struct WhitespaceTokenizer;

impl WhitespaceTokenizer {
    pub fn new() -> Self {
        WhitespaceTokenizer
    }
}

impl AnalysisEngine for WhitespaceTokenizer {
    fn name(&self) -> &str {
        "whitespace-tokenizer"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.tokenize_latency_ns);
        let text = cas.text().to_owned();
        let mut start: Option<usize> = None;
        let mut pending: Vec<Annotation> = Vec::new();
        for (i, c) in text.char_indices() {
            if is_separator(c) {
                if let Some(s) = start.take() {
                    pending.push(token(&text, s, i));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            pending.push(token(&text, s, text.len()));
        }
        m.docs_tokenized_total.inc();
        m.tokens_total.add(pending.len() as u64);
        for ann in pending {
            cas.add_annotation(ann);
        }
        Ok(())
    }
}

fn token(text: &str, begin: usize, end: usize) -> Annotation {
    Annotation::new(
        begin,
        end,
        AnnotationKind::Token {
            normalized: normalize_token(&text[begin..end]),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokenize(s: &str) -> Cas {
        let mut cas = Cas::new();
        cas.add_segment("r", s);
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        cas
    }

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        let cas = tokenize("Kleint says: radio turns on/off!");
        assert_eq!(
            cas.token_norms(),
            vec!["kleint", "says", "radio", "turns", "on", "off"]
        );
    }

    #[test]
    fn offsets_cover_surface_forms() {
        let cas = tokenize("Elektiral smell, crackling");
        let toks: Vec<&str> = cas.tokens().map(|a| cas.covered_text(a)).collect();
        assert_eq!(toks, vec!["Elektiral", "smell", "crackling"]);
    }

    #[test]
    fn umlauts_normalized_but_surface_kept() {
        let cas = tokenize("Lüfter funktioniert nicht.");
        assert_eq!(cas.token_norms(), vec!["luefter", "funktioniert", "nicht"]);
        let first = cas.tokens().next().unwrap();
        assert_eq!(cas.covered_text(first), "Lüfter");
    }

    #[test]
    fn hyphen_and_digits_kept_in_token() {
        let cas = tokenize("abs-steuergerät id test 470");
        assert_eq!(
            cas.token_norms(),
            vec!["abs-steuergeraet", "id", "test", "470"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").token_norms().is_empty());
        assert!(tokenize(" .,;! ").token_norms().is_empty());
    }

    #[test]
    fn token_at_end_of_text() {
        let cas = tokenize("end token");
        assert_eq!(cas.token_norms(), vec!["end", "token"]);
        let last = cas.tokens().last().unwrap();
        assert_eq!(last.end, cas.text().len());
    }

    #[test]
    fn tokens_never_straddle_segments() {
        let mut cas = Cas::new();
        cas.add_segment("a", "alpha");
        cas.add_segment("b", "beta");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        assert_eq!(cas.token_norms(), vec!["alpha", "beta"]);
        let anns: Vec<&Annotation> = cas.tokens().collect();
        let seg_a = cas.segment("a").unwrap();
        assert!(anns[0].end <= seg_a.end);
        let seg_b = cas.segment("b").unwrap();
        assert!(anns[1].begin >= seg_b.begin);
    }
}
