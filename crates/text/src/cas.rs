//! The Common Analysis Structure (CAS).
//!
//! UIMA's central data structure: a subject-of-analysis text plus typed
//! feature structures (annotations) anchored to it by begin/end offsets,
//! "handed over from one Analysis Engine to the next, such that annotators
//! can build on findings from previous steps" (paper §4.5.2). In QATK "one
//! CAS contains one data bundle, including all available reports and text
//! descriptions plus the part ID and error code".

use qatk_taxonomy::concept::{ConceptId, ConceptKind};

/// Language attached to a span by the language detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectedLang {
    De,
    En,
    Unknown,
}

/// Identifier of a segment (one report / description) within the CAS text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(pub usize);

/// One named piece of the document: a report or a description field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    pub id: SegmentId,
    /// Logical name, e.g. `"mechanic_report"` or `"part_description"`.
    pub name: String,
    /// Byte offsets into [`Cas::text`].
    pub begin: usize,
    pub end: usize,
}

/// The typed payload of an annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationKind {
    /// A word token; carries its normalized form so downstream annotators
    /// never re-normalize.
    Token { normalized: String },
    /// The detected language of a whole segment.
    LanguageSpan { lang: DetectedLang },
    /// A token identified as a stopword (article/pronoun/function word).
    Stopword,
    /// A taxonomy concept mention (possibly multi-token).
    ConceptMention {
        concept: ConceptId,
        kind: ConceptKind,
    },
    /// One sentence (from the sentence splitter).
    Sentence,
}

impl AnnotationKind {
    /// Coarse type name, used for filtering and display.
    pub fn type_name(&self) -> &'static str {
        match self {
            AnnotationKind::Token { .. } => "Token",
            AnnotationKind::LanguageSpan { .. } => "LanguageSpan",
            AnnotationKind::Stopword => "Stopword",
            AnnotationKind::ConceptMention { .. } => "ConceptMention",
            AnnotationKind::Sentence => "Sentence",
        }
    }
}

/// An annotation: a typed span over the CAS text.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    pub begin: usize,
    pub end: usize,
    pub kind: AnnotationKind,
}

impl Annotation {
    pub fn new(begin: usize, end: usize, kind: AnnotationKind) -> Self {
        debug_assert!(begin <= end);
        Annotation { begin, end, kind }
    }

    /// True if this annotation fully contains `other`.
    pub fn encloses(&self, other: &Annotation) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }
}

/// The CAS: document text assembled from named segments, plus annotations.
#[derive(Debug, Clone, Default)]
pub struct Cas {
    text: String,
    segments: Vec<Segment>,
    annotations: Vec<Annotation>,
    /// Structured companions of the text (paper Fig. 3).
    pub part_id: Option<String>,
    pub error_code: Option<String>,
}

impl Cas {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named segment; returns its id. Segments are separated by a
    /// newline so tokens never straddle a segment boundary.
    pub fn add_segment(&mut self, name: impl Into<String>, text: &str) -> SegmentId {
        if !self.text.is_empty() {
            self.text.push('\n');
        }
        let begin = self.text.len();
        self.text.push_str(text);
        let end = self.text.len();
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment {
            id,
            name: name.into(),
            begin,
            end,
        });
        id
    }

    /// The full document text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The text covered by an annotation.
    pub fn covered_text(&self, ann: &Annotation) -> &str {
        &self.text[ann.begin..ann.end]
    }

    /// All segments in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Find a segment by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// The segment containing a byte offset.
    pub fn segment_at(&self, offset: usize) -> Option<&Segment> {
        self.segments
            .iter()
            .find(|s| s.begin <= offset && offset < s.end.max(s.begin + 1))
    }

    /// Record an annotation (kept sorted lazily by callers; iteration order
    /// is insertion order, which annotators produce left-to-right).
    pub fn add_annotation(&mut self, ann: Annotation) {
        debug_assert!(ann.end <= self.text.len());
        self.annotations.push(ann);
    }

    /// All annotations.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// Annotations of one coarse type.
    pub fn annotations_of(&self, type_name: &str) -> impl Iterator<Item = &Annotation> {
        let owned = type_name.to_owned();
        self.annotations
            .iter()
            .filter(move |a| a.kind.type_name() == owned)
    }

    /// Token annotations, in order.
    pub fn tokens(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations
            .iter()
            .filter(|a| matches!(a.kind, AnnotationKind::Token { .. }))
    }

    /// Normalized forms of all tokens, in order.
    pub fn token_norms(&self) -> Vec<&str> {
        self.token_norms_iter().collect()
    }

    /// Normalized token forms as a borrowing iterator — the allocation-free
    /// variant of [`Cas::token_norms`] for the feature-extraction hot path.
    pub fn token_norms_iter(&self) -> impl Iterator<Item = &str> {
        self.annotations.iter().filter_map(|a| match &a.kind {
            AnnotationKind::Token { normalized } => Some(normalized.as_str()),
            _ => None,
        })
    }

    /// Concept mentions, in order.
    pub fn concept_mentions(&self) -> impl Iterator<Item = (&Annotation, ConceptId, ConceptKind)> {
        self.annotations.iter().filter_map(|a| match a.kind {
            AnnotationKind::ConceptMention { concept, kind } => Some((a, concept, kind)),
            _ => None,
        })
    }

    /// Detected language of a segment, if the detector ran.
    pub fn language_of(&self, segment: SegmentId) -> Option<DetectedLang> {
        let seg = self.segments.get(segment.0)?;
        self.annotations.iter().find_map(|a| match a.kind {
            AnnotationKind::LanguageSpan { lang } if a.begin == seg.begin && a.end == seg.end => {
                Some(lang)
            }
            _ => None,
        })
    }

    /// Offsets of stopword-annotated spans (for filtering tokens).
    pub fn stopword_spans(&self) -> Vec<(usize, usize)> {
        self.annotations
            .iter()
            .filter(|a| matches!(a.kind, AnnotationKind::Stopword))
            .map(|a| (a.begin, a.end))
            .collect()
    }

    /// Remove all annotations (e.g. to re-run a pipeline).
    pub fn clear_annotations(&mut self) {
        self.annotations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas() -> Cas {
        let mut c = Cas::new();
        c.add_segment("mechanic_report", "radio turns off");
        c.add_segment("supplier_report", "Kontakt defekt");
        c.part_id = Some("P07".into());
        c.error_code = Some("E1234".into());
        c
    }

    #[test]
    fn segments_and_text() {
        let c = cas();
        assert_eq!(c.text(), "radio turns off\nKontakt defekt");
        assert_eq!(c.segments().len(), 2);
        let m = c.segment("mechanic_report").unwrap();
        assert_eq!(&c.text()[m.begin..m.end], "radio turns off");
        let s = c.segment("supplier_report").unwrap();
        assert_eq!(&c.text()[s.begin..s.end], "Kontakt defekt");
        assert!(c.segment("final_report").is_none());
    }

    #[test]
    fn segment_at_offset() {
        let c = cas();
        assert_eq!(c.segment_at(0).unwrap().name, "mechanic_report");
        assert_eq!(c.segment_at(20).unwrap().name, "supplier_report");
        assert!(c.segment_at(500).is_none());
    }

    #[test]
    fn annotations_roundtrip() {
        let mut c = cas();
        c.add_annotation(Annotation::new(
            0,
            5,
            AnnotationKind::Token {
                normalized: "radio".into(),
            },
        ));
        c.add_annotation(Annotation::new(6, 11, AnnotationKind::Stopword));
        assert_eq!(c.annotations().len(), 2);
        assert_eq!(c.tokens().count(), 1);
        assert_eq!(c.token_norms(), vec!["radio"]);
        assert_eq!(c.token_norms_iter().count(), 1);
        assert_eq!(c.covered_text(&c.annotations()[0]), "radio");
        assert_eq!(c.stopword_spans(), vec![(6, 11)]);
        assert_eq!(c.annotations_of("Token").count(), 1);
        c.clear_annotations();
        assert!(c.annotations().is_empty());
    }

    #[test]
    fn concept_mentions_filter() {
        let mut c = cas();
        c.add_annotation(Annotation::new(
            0,
            5,
            AnnotationKind::ConceptMention {
                concept: ConceptId(9),
                kind: ConceptKind::Component,
            },
        ));
        let ms: Vec<_> = c.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1, ConceptId(9));
        assert_eq!(ms[0].2, ConceptKind::Component);
    }

    #[test]
    fn language_lookup() {
        let mut c = cas();
        let seg = c.segment("supplier_report").unwrap().clone();
        c.add_annotation(Annotation::new(
            seg.begin,
            seg.end,
            AnnotationKind::LanguageSpan {
                lang: DetectedLang::De,
            },
        ));
        assert_eq!(c.language_of(seg.id), Some(DetectedLang::De));
        assert_eq!(c.language_of(SegmentId(0)), None);
    }

    #[test]
    fn enclosure() {
        let outer = Annotation::new(0, 10, AnnotationKind::Stopword);
        let inner = Annotation::new(2, 8, AnnotationKind::Stopword);
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
        assert!(outer.encloses(&outer));
    }

    #[test]
    fn empty_cas() {
        let c = Cas::new();
        assert_eq!(c.text(), "");
        assert!(c.segments().is_empty());
        assert!(c.segment_at(0).is_none());
    }
}
