//! The legacy taxonomy annotator, reconstructed for the coverage comparison.
//!
//! The paper measures its optimized annotator against legacy closed-source
//! code whose recall was poor: "the original taxonomy annotator does not
//! recognize any taxonomy concepts in 2530 out of the 7500 data bundles"
//! (§4.5.3). The legacy behaviour this module reproduces:
//!
//! * **case-sensitive exact matching** of raw surface terms (no
//!   normalization, so "Lüfter" ≠ "lüfter" ≠ "LUEFTER"),
//! * **single-word terms only** (multiwords were "not correctly captured"),
//! * **one language** (the annotator was not multilingual),
//! * **primary labels only** — the legacy code predates the synonym
//!   expansion, so only each concept's first term per language matches.

use std::collections::HashMap;
use std::sync::Arc;

use qatk_taxonomy::concept::{ConceptId, ConceptKind, Lang};
use qatk_taxonomy::taxonomy::Taxonomy;

use crate::cas::{Annotation, AnnotationKind, Cas};
use crate::engine::{AnalysisEngine, Result};

/// The low-recall legacy annotator.
#[derive(Debug, Clone)]
pub struct LegacyAnnotator {
    /// raw term text -> (concept, kind); single-word terms of one language.
    terms: Arc<HashMap<String, (ConceptId, ConceptKind)>>,
    emit: Vec<ConceptKind>,
}

impl LegacyAnnotator {
    /// Build for one language (the legacy code was configured per language).
    pub fn new(taxonomy: &Taxonomy, lang: Lang) -> Self {
        Self::with_kinds(
            taxonomy,
            lang,
            &[ConceptKind::Component, ConceptKind::Symptom],
        )
    }

    pub fn with_kinds(taxonomy: &Taxonomy, lang: Lang, emit: &[ConceptKind]) -> Self {
        let mut terms = HashMap::new();
        let mut seen_concepts = std::collections::HashSet::new();
        for (term, concept) in taxonomy.term_entries() {
            if term.lang != lang {
                continue;
            }
            // legacy: only the primary label per concept, no synonyms
            if !seen_concepts.insert(concept.id) {
                continue;
            }
            if term.text.contains(char::is_whitespace) {
                continue; // legacy: multiwords not handled
            }
            terms
                .entry(term.text.clone())
                .or_insert((concept.id, concept.kind));
        }
        LegacyAnnotator {
            terms: Arc::new(terms),
            emit: emit.to_vec(),
        }
    }

    /// Number of matchable surface forms.
    pub fn entry_count(&self) -> usize {
        self.terms.len()
    }
}

impl AnalysisEngine for LegacyAnnotator {
    fn name(&self) -> &str {
        "legacy-annotator"
    }

    fn process(&self, cas: &mut Cas) -> Result<()> {
        let mut out = Vec::new();
        for ann in cas.annotations() {
            if !matches!(ann.kind, AnnotationKind::Token { .. }) {
                continue;
            }
            // raw covered text, case-sensitive
            let surface = cas.covered_text(ann);
            if let Some(&(concept, kind)) = self.terms.get(surface) {
                if self.emit.contains(&kind) {
                    out.push(Annotation::new(
                        ann.begin,
                        ann.end,
                        AnnotationKind::ConceptMention { concept, kind },
                    ));
                }
            }
        }
        for ann in out {
            cas.add_annotation(ann);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WhitespaceTokenizer;
    use qatk_taxonomy::builder::TaxonomyBuilder;

    fn taxonomy() -> (Taxonomy, ConceptId) {
        let mut b = TaxonomyBuilder::new("t");
        let comp = b.root(ConceptKind::Component, "Component");
        let fan = b.child(comp, "Fan");
        b.term(fan, Lang::De, "Lüfter");
        b.term(fan, Lang::De, "Gebläse");
        b.term(fan, Lang::En, "fan");
        b.term(fan, Lang::En, "cooling fan"); // multiword: legacy skips
        (b.build().unwrap(), fan)
    }

    fn run(text: &str, lang: Lang) -> (Cas, ConceptId) {
        let (tax, fan) = taxonomy();
        let mut cas = Cas::new();
        cas.add_segment("r", text);
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        LegacyAnnotator::new(&tax, lang).process(&mut cas).unwrap();
        (cas, fan)
    }

    #[test]
    fn exact_case_sensitive_match() {
        let (cas, fan) = run("Der Lüfter ist defekt", Lang::De);
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1, fan);
    }

    #[test]
    fn wrong_case_misses() {
        let (cas, _) = run("der lüfter ist defekt", Lang::De);
        assert_eq!(cas.concept_mentions().count(), 0);
        let (cas, _) = run("LÜFTER defekt", Lang::De);
        assert_eq!(cas.concept_mentions().count(), 0);
    }

    #[test]
    fn umlaut_transcription_misses() {
        // the optimized annotator finds this; legacy does not
        let (cas, _) = run("Luefter defekt", Lang::De);
        assert_eq!(cas.concept_mentions().count(), 0);
    }

    #[test]
    fn other_language_misses() {
        let (cas, _) = run("fan broken", Lang::De);
        assert_eq!(cas.concept_mentions().count(), 0);
        let (cas, fan) = run("fan broken", Lang::En);
        assert_eq!(cas.concept_mentions().count(), 1);
        assert_eq!(cas.concept_mentions().next().unwrap().1, fan);
    }

    #[test]
    fn multiwords_not_captured() {
        let (tax, _) = taxonomy();
        let ann = LegacyAnnotator::new(&tax, Lang::En);
        // "cooling fan" is excluded from the term table…
        assert_eq!(ann.entry_count(), 1);
        // …so the phrase only matches via the single word "fan".
        let mut cas = Cas::new();
        cas.add_segment("r", "cooling fan rattles");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ann.process(&mut cas).unwrap();
        let ms: Vec<_> = cas.concept_mentions().collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(cas.covered_text(ms[0].0), "fan");
    }

    #[test]
    fn kind_filter_applies() {
        let (tax, _) = taxonomy();
        let ann = LegacyAnnotator::with_kinds(&tax, Lang::En, &[ConceptKind::Symptom]);
        let mut cas = Cas::new();
        cas.add_segment("r", "fan broken");
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ann.process(&mut cas).unwrap();
        assert_eq!(cas.concept_mentions().count(), 0);
    }
}
