//! Property tests for the JSON writer/reader pair: arbitrary strings —
//! including quotes, backslashes, control characters, and non-ASCII —
//! survive `escape` → `parse`, and metric names containing such
//! characters still render a valid, value-preserving JSON snapshot.

use proptest::collection::vec;
use proptest::prelude::*;

use qatk_obs::json::{escape, parse, Value};
use qatk_obs::{Sample, Snapshot, SnapshotValue};

/// Characters chosen to stress every escaping branch: the two JSON
/// specials, the named control escapes, raw control bytes, structural
/// characters, and multi-byte UTF-8.
const PALETTE: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', 'a', 'Z', '0', ' ', '/', '{',
    '}', '[', ']', ':', ',', 'é', 'ß', '中', '🦀',
];

fn arb_nasty() -> impl Strategy<Value = String> {
    vec(0usize..PALETTE.len(), 0..32).prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #[test]
    fn escape_round_trips_through_parse(s in arb_nasty()) {
        let doc = format!("\"{}\"", escape(&s));
        prop_assert_eq!(parse(&doc), Ok(Value::Str(s)));
    }

    #[test]
    fn snapshot_json_stays_valid_for_arbitrary_metric_names(
        name in arb_nasty(),
        value in any::<u64>(),
    ) {
        // Registered names are `&'static str` in real code; the render path
        // must stay correct even for hostile names, so leak per case.
        let name: &'static str = Box::leak(name.into_boxed_str());
        let snapshot = Snapshot {
            samples: vec![Sample {
                name,
                help: "prop",
                value: SnapshotValue::Counter(value),
            }],
        };
        let doc = snapshot.render_json();
        let parsed = parse(&doc).expect("rendered snapshot must be valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        let got = counters.get(name).expect("escaped key round-trips");
        prop_assert_eq!(got.as_f64(), Some(value as f64));
    }
}
