//! Concurrency: hammer one histogram (and one counter) from 8 threads and
//! assert nothing is lost — the recording paths are lock-free relaxed
//! atomics, so every observation must land.

use qatk_obs::Registry;

#[test]
fn histogram_survives_8_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let reg = Registry::new();
    let h = reg.histogram("qatk_conc_values", "hammered histogram");
    let c = reg.counter("qatk_conc_ops_total", "hammered counter");

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t as u64 * PER_THREAD + i);
                    c.inc();
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count(), total);
    assert_eq!(c.get(), total);
    // bucket counts are consistent with the total
    let snap = reg.snapshot();
    let hs = snap.histogram("qatk_conc_values").unwrap();
    let bucket_total: u64 = hs.buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_total, total);
    // sum of 0..total-1
    assert_eq!(hs.sum, total * (total - 1) / 2);
    assert!(hs.p50 > 0 && hs.p99 >= hs.p50);
}

#[test]
fn concurrent_registration_yields_one_metric() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::new()));
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                for _ in 0..1000 {
                    reg.counter("qatk_conc_shared_total", "registered by everyone")
                        .inc();
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("qatk_conc_shared_total"), Some(8000));
    assert_eq!(snap.samples.len(), 1);
}
