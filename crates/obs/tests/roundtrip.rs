//! Snapshot round-trip: render the Prometheus text exposition, parse it back,
//! and check every value against the JSON snapshot of the same registry.

use qatk_obs::{json, parse_exposition, Registry};

#[test]
fn prometheus_text_and_json_snapshot_agree() {
    let reg = Registry::new();
    reg.counter("qatk_rt_queries_total", "queries").add(42);
    reg.counter("qatk_rt_skips_total", "skips"); // registered, never hit
    reg.gauge("qatk_rt_workers", "workers").set(8);
    let h = reg.histogram("qatk_rt_latency_ns", "latency");
    for v in [3u64, 3, 90, 1500, 70_000] {
        h.record(v);
    }

    let text = reg.render_prometheus();
    let parsed = parse_exposition(&text).expect("rendered exposition parses");
    let snap = json::parse(&reg.render_json()).expect("rendered json parses");

    // counters: every parsed sample equals the JSON snapshot value
    let counters = snap.get("counters").unwrap().as_obj().unwrap();
    assert_eq!(counters.len(), 2);
    for (name, v) in counters {
        assert_eq!(parsed[name], v.as_f64().unwrap(), "counter {name}");
    }
    assert_eq!(parsed["qatk_rt_queries_total"], 42.0);
    assert_eq!(parsed["qatk_rt_skips_total"], 0.0);

    // gauges
    let gauges = snap.get("gauges").unwrap().as_obj().unwrap();
    for (name, v) in gauges {
        assert_eq!(parsed[name], v.as_f64().unwrap(), "gauge {name}");
    }

    // histograms: _count and _sum match, +Inf bucket equals the count, and
    // the per-bucket counts re-accumulate to the rendered cumulative values
    let hists = snap.get("histograms").unwrap().as_obj().unwrap();
    assert_eq!(hists.len(), 1);
    for (name, v) in hists {
        let count = v.get("count").unwrap().as_f64().unwrap();
        let sum = v.get("sum").unwrap().as_f64().unwrap();
        assert_eq!(parsed[&format!("{name}_count")], count);
        assert_eq!(parsed[&format!("{name}_sum")], sum);
        assert_eq!(parsed[&format!("{name}_bucket{{le=\"+Inf\"}}")], count);
        let mut cum = 0.0;
        for pair in v.get("buckets").unwrap().as_arr().unwrap() {
            let [upper, bucket_count] = pair.as_arr().unwrap() else {
                panic!("bucket pair shape");
            };
            cum += bucket_count.as_f64().unwrap();
            let key = format!("{name}_bucket{{le=\"{}\"}}", upper.as_u64().unwrap());
            assert_eq!(parsed[&key], cum, "bucket {key}");
        }
        assert_eq!(cum, count, "buckets account for every observation");
    }
    assert_eq!(parsed["qatk_rt_latency_ns_count"], 5.0);
    assert_eq!(
        parsed["qatk_rt_latency_ns_sum"],
        (3 + 3 + 90 + 1500 + 70_000) as f64
    );

    // quantiles are ordered and within the observed range
    let hs = reg.snapshot();
    let lat = hs.histogram("qatk_rt_latency_ns").unwrap();
    assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
    assert!(lat.p99 >= 70_000 / 2 && lat.p99 <= 2 * 70_000);
}

#[test]
fn empty_registry_renders_empty_documents() {
    let reg = Registry::new();
    assert!(parse_exposition(&reg.render_prometheus())
        .unwrap()
        .is_empty());
    let snap = json::parse(&reg.render_json()).unwrap();
    assert!(snap.get("counters").unwrap().as_obj().unwrap().is_empty());
    assert!(snap.get("histograms").unwrap().as_obj().unwrap().is_empty());
}
