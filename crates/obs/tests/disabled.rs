//! The global enable flag. Lives in its own integration-test binary because
//! the flag is process-wide: toggling it next to other tests would race.

use qatk_obs::{set_enabled, Registry, Timer};

#[test]
fn disabled_recording_is_a_no_op_and_reversible() {
    let reg = Registry::new();
    let c = reg.counter("qatk_dis_total", "counter");
    let g = reg.gauge("qatk_dis_gauge", "gauge");
    let h = reg.histogram("qatk_dis_ns", "histogram");

    assert!(qatk_obs::enabled());
    set_enabled(false);
    c.inc();
    g.set(5);
    h.record(100);
    {
        let _t = Timer::start(h);
    }
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);

    // rendering still works while disabled
    assert!(reg.render_prometheus().contains("qatk_dis_total 0"));

    set_enabled(true);
    c.inc();
    h.record(100);
    {
        let _t = Timer::start(h);
    }
    assert_eq!(c.get(), 1);
    assert_eq!(h.count(), 2);
}
