//! The metric primitives: counter, gauge, log2 histogram, RAII timer.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use crate::enabled;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed value (e.g. worker count of the last batch).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A 1-in-N sampling gate for instrumentation too hot to meter every time.
///
/// Clock reads dominate timer cost on sub-microsecond paths; sampling the
/// latency histogram at 1-in-N keeps the distribution representative while
/// the gate itself costs a single relaxed `fetch_add`. Counters stay exact —
/// only histogram/timer recording should sit behind a sampler.
#[derive(Debug)]
pub struct Sampler {
    ticks: AtomicU64,
    period: u64,
}

impl Sampler {
    /// Sample every `period`-th hit (`period = 1` samples everything).
    pub const fn new(period: u64) -> Self {
        Sampler {
            ticks: AtomicU64::new(0),
            period: if period == 0 { 1 } else { period },
        }
    }

    /// True when this hit should be recorded. Always false while the
    /// registry is disabled, so sampled spans cost nothing either.
    #[inline]
    pub fn hit(&self) -> bool {
        enabled()
            && self
                .ticks
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.period)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free log2-bucketed histogram.
///
/// Values are `u64` (the workspace records nanoseconds, byte counts, batch
/// sizes). Buckets grow as powers of two, so 64 buckets cover the full `u64`
/// range with ≤ 2× relative quantile error — plenty for latency trends.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Most recent traced observation per bucket: the trace id (0 = none
    /// yet) and the observed value — Prometheus exemplars, fed by the
    /// process-wide source installed via [`crate::set_exemplar_source`].
    /// Two relaxed stores; the pair may momentarily mix two traced
    /// observations under contention, which exemplars tolerate by design
    /// (they are a sampled hint, not an account).
    exemplar_trace: [AtomicU64; HISTOGRAM_BUCKETS],
    exemplar_value: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value. The top bucket absorbs everything from
/// `2^(HISTOGRAM_BUCKETS-2)` up to `u64::MAX`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplar_trace: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let bucket = bucket_of(v);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let trace = crate::exemplar_trace_id();
        if trace != 0 {
            self.exemplar_trace[bucket].store(trace, Ordering::Relaxed);
            self.exemplar_value[bucket].store(v, Ordering::Relaxed);
        }
    }

    /// The exemplar of each bucket that has one: `(bucket index, trace id,
    /// observed value)` for every bucket a traced request has landed in.
    pub fn exemplars(&self) -> Vec<(usize, u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let trace = self.exemplar_trace[i].load(Ordering::Relaxed);
                (trace != 0).then(|| (i, trace, self.exemplar_value[i].load(Ordering::Relaxed)))
            })
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the winning bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = if i == 0 { 0 } else { bucket_upper(i - 1) + 1 };
                let upper = bucket_upper(i);
                let into = (target - cum) as f64 / c as f64;
                // f64 rounding on huge bucket spans can overshoot — saturate
                return lower.saturating_add(((upper - lower) as f64 * into) as u64);
            }
            cum += c;
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// RAII span timer: records elapsed nanoseconds into a histogram when
/// dropped. When observability is disabled the constructor skips the clock
/// read entirely.
#[derive(Debug)]
#[must_use = "a Timer records on drop; binding it to _ drops it immediately"]
pub struct Timer {
    span: Option<(Instant, &'static Histogram)>,
}

impl Timer {
    /// Start timing into `hist`.
    #[inline]
    pub fn start(hist: &'static Histogram) -> Self {
        Timer {
            span: enabled().then(|| (Instant::now(), hist)),
        }
    }

    /// Stop early (otherwise the drop records).
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.span.take() {
            hist.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1); // top bucket
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_count_sum_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 1000 * 1001 / 2);
        // log2 buckets bound relative error by 2×
        let p50 = h.quantile(0.50);
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((495..=1023).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
        let p50 = h.quantile(0.5);
        assert!((64..=127).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.99) > 0);
    }

    #[test]
    fn sampler_hits_one_in_n() {
        let s = Sampler::new(16);
        let hits = (0..160).filter(|_| s.hit()).count();
        assert_eq!(hits, 10);
        // the very first tick samples, so short runs still record something
        let s = Sampler::new(16);
        assert!(s.hit());
    }

    #[test]
    fn sampler_period_zero_means_every_hit() {
        let s = Sampler::new(0);
        assert!((0..10).all(|_| s.hit()));
    }
}
