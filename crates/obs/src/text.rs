//! Parsing of the Prometheus text exposition — used by the round-trip tests
//! (render → parse → compare against the JSON snapshot) and available to any
//! future scrape tooling.

use std::collections::BTreeMap;

/// Parse a Prometheus text exposition into `sample name → value`.
///
/// Comment lines (`# HELP`, `# TYPE`) are skipped, and an OpenMetrics-style
/// exemplar suffix (` # {trace_id="..."} 5`) on a bucket line is stripped —
/// the sample value is what precedes it. Labelled samples keep the label
/// suffix in the key verbatim, e.g. `qatk_x_ns_bucket{le="+Inf"}`. Returns
/// `None` on any malformed sample line.
pub fn parse_exposition(text: &str) -> Option<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Everything from an exemplar marker on is metadata, not the sample.
        let line = match line.split_once(" # ") {
            Some((sample, _exemplar)) => sample.trim_end(),
            None => line,
        };
        // The value is everything after the last space *outside* braces; the
        // registry never renders spaces inside label values, so rsplit works.
        let (name, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        out.insert(name.trim().to_owned(), value);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_histogram_samples() {
        let text = "\
# HELP qatk_a_total a counter
# TYPE qatk_a_total counter
qatk_a_total 12
# TYPE qatk_g gauge
qatk_g -3
# TYPE qatk_h_ns histogram
qatk_h_ns_bucket{le=\"127\"} 2
qatk_h_ns_bucket{le=\"+Inf\"} 2
qatk_h_ns_sum 150
qatk_h_ns_count 2
";
        let m = parse_exposition(text).unwrap();
        assert_eq!(m["qatk_a_total"], 12.0);
        assert_eq!(m["qatk_g"], -3.0);
        assert_eq!(m["qatk_h_ns_bucket{le=\"127\"}"], 2.0);
        assert_eq!(m["qatk_h_ns_bucket{le=\"+Inf\"}"], 2.0);
        assert_eq!(m["qatk_h_ns_sum"], 150.0);
        assert_eq!(m["qatk_h_ns_count"], 2.0);
    }

    #[test]
    fn exemplar_suffixes_are_stripped() {
        let text = "\
qatk_h_ns_bucket{le=\"7\"} 3 # {trace_id=\"000000000000beef\"} 5
qatk_h_ns_bucket{le=\"+Inf\"} 3
";
        let m = parse_exposition(text).unwrap();
        assert_eq!(m["qatk_h_ns_bucket{le=\"7\"}"], 3.0);
        assert_eq!(m["qatk_h_ns_bucket{le=\"+Inf\"}"], 3.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("no_value_here").is_none());
        assert!(parse_exposition("name not_a_number").is_none());
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        assert!(parse_exposition("").unwrap().is_empty());
        assert!(parse_exposition("# HELP x y\n# TYPE x counter\n")
            .unwrap()
            .is_empty());
    }
}
