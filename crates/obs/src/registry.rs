//! The global metric registry and its snapshot/rendering surface.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metric::{bucket_upper, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};

/// Kind tag of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A metric registry. Most code goes through [`Registry::global`]; separate
/// instances exist so tests can render isolated expositions.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry every instrumented crate registers into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Register (or fetch, if `name` is already registered) a counter.
    ///
    /// Panics if `name` is registered as a different metric kind — that is
    /// always a programming error, caught at first use.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        match self.register(name, help, MetricKind::Counter, || {
            Metric::Counter(Box::leak(Box::new(Counter::new())))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        match self.register(name, help, MetricKind::Gauge, || {
            Metric::Gauge(Box::leak(Box::new(Gauge::new())))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        match self.register(name, help, MetricKind::Histogram, || {
            Metric::Histogram(Box::leak(Box::new(Histogram::new())))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked by register"),
        }
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        create: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            assert!(
                e.metric.kind() == kind,
                "metric {name} already registered as {:?}, requested {kind:?}",
                e.metric.kind()
            );
            return match &e.metric {
                Metric::Counter(c) => Metric::Counter(c),
                Metric::Gauge(g) => Metric::Gauge(g),
                Metric::Histogram(h) => Metric::Histogram(h),
            };
        }
        let metric = create();
        let out = match &metric {
            Metric::Counter(c) => Metric::Counter(c),
            Metric::Gauge(g) => Metric::Gauge(g),
            Metric::Histogram(h) => Metric::Histogram(h),
        };
        entries.push(Entry { name, help, metric });
        out
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut samples: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                name: e.name,
                help: e.help,
                value: match &e.metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(HistogramSnapshot::of(h)),
                },
            })
            .collect();
        samples.sort_by_key(|s| s.name);
        Snapshot { samples }
    }

    /// Render the Prometheus-style text exposition of the current state.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Render the JSON snapshot of the current state.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Per-bucket exemplars as `(inclusive_upper_bound, trace_id, value)`,
    /// ascending — the most recent traced observation that landed in each
    /// bucket (see [`crate::set_exemplar_source`]).
    pub exemplars: Vec<(u64, u64, u64)>,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> Self {
        let counts = h.bucket_counts();
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter(|&i| counts[i] > 0)
            .map(|i| (bucket_upper(i), counts[i]))
            .collect();
        let exemplars = h
            .exemplars()
            .into_iter()
            .map(|(i, trace, value)| (bucket_upper(i), trace, value))
            .collect();
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            buckets,
            exemplars,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// Frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    pub name: &'static str,
    pub help: &'static str,
    pub value: SnapshotValue,
}

/// A point-in-time copy of a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| {
            if let SnapshotValue::Counter(v) = s.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| {
            if let SnapshotValue::Gauge(v) = s.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Snapshot of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| {
            if let SnapshotValue::Histogram(ref h) = s.value {
                Some(h)
            } else {
                None
            }
        })
    }

    /// Prometheus text exposition: `# HELP` / `# TYPE` comment lines, plain
    /// samples for counters and gauges, and the standard cumulative
    /// `_bucket{le=...}` / `_sum` / `_count` triple for histograms. A
    /// bucket that holds an exemplar carries it OpenMetrics-style:
    /// `name_bucket{le="7"} 3 # {trace_id="00..ef"} 5` — the most recent
    /// traced observation that landed in that (non-cumulative) bucket.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let name = s.name;
            out.push_str(&format!("# HELP {name} {}\n", s.help));
            match &s.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for &(upper, count) in &h.buckets {
                        cum += count;
                        out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}"));
                        if let Some(&(_, trace, value)) =
                            h.exemplars.iter().find(|(u, _, _)| *u == upper)
                        {
                            out.push_str(&format!(" # {{trace_id=\"{trace:016x}\"}} {value}"));
                        }
                        out.push('\n');
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// JSON snapshot:
    ///
    /// ```json
    /// {
    ///   "counters":   {"name": 1},
    ///   "gauges":     {"name": -2},
    ///   "histograms": {"name": {"count": 3, "sum": 4,
    ///                           "p50": 1, "p95": 2, "p99": 2,
    ///                           "buckets": [[1, 2], [3, 1]]}}
    /// }
    /// ```
    pub fn render_json(&self) -> String {
        let mut counters: BTreeMap<&str, String> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, String> = BTreeMap::new();
        let mut histograms: BTreeMap<&str, String> = BTreeMap::new();
        for s in &self.samples {
            match &s.value {
                SnapshotValue::Counter(v) => {
                    counters.insert(s.name, v.to_string());
                }
                SnapshotValue::Gauge(v) => {
                    gauges.insert(s.name, v.to_string());
                }
                SnapshotValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .map(|(u, c)| format!("[{u},{c}]"))
                        .collect();
                    histograms.insert(
                        s.name,
                        format!(
                            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                            h.count,
                            h.sum,
                            h.p50,
                            h.p95,
                            h.p99,
                            buckets.join(",")
                        ),
                    );
                }
            }
        }
        let obj = |m: &BTreeMap<&str, String>| {
            let fields: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", crate::json::escape(k)))
                .collect();
            format!("{{{}}}", fields.join(","))
        };
        format!(
            "{{\"counters\":{},\"gauges\":{},\"histograms\":{}}}",
            obj(&counters),
            obj(&gauges),
            obj(&histograms)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("qatk_test_reg_total", "a counter");
        let b = reg.counter("qatk_test_reg_total", "a counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("qatk_test_conflict", "as counter");
        reg.gauge("qatk_test_conflict", "as gauge");
    }

    #[test]
    fn snapshot_accessors() {
        let reg = Registry::new();
        reg.counter("qatk_test_c_total", "c").add(3);
        reg.gauge("qatk_test_g", "g").set(-4);
        let h = reg.histogram("qatk_test_h_ns", "h");
        h.record(10);
        h.record(20);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("qatk_test_c_total"), Some(3));
        assert_eq!(snap.gauge("qatk_test_g"), Some(-4));
        let hs = snap.histogram("qatk_test_h_ns").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 30);
        assert_eq!(snap.counter("qatk_test_missing"), None);
        assert_eq!(snap.counter("qatk_test_g"), None); // kind mismatch
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("qatk_test_render_total", "counts things").inc();
        let h = reg.histogram("qatk_test_render_ns", "times things");
        h.record(5);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP qatk_test_render_total counts things"));
        assert!(text.contains("# TYPE qatk_test_render_total counter"));
        assert!(text.contains("qatk_test_render_total 1"));
        assert!(text.contains("# TYPE qatk_test_render_ns histogram"));
        assert!(text.contains("qatk_test_render_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("qatk_test_render_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("qatk_test_render_ns_sum 5"));
        assert!(text.contains("qatk_test_render_ns_count 1"));
    }

    #[test]
    fn histogram_exemplars_render_openmetrics_style() {
        thread_local! {
            static TEST_TRACE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        fn source() -> u64 {
            TEST_TRACE.with(|c| c.get())
        }
        crate::set_exemplar_source(source);
        let reg = Registry::new();
        let h = reg.histogram("qatk_test_exemplar_ns", "traced latencies");
        h.record(5); // untraced: no exemplar for this bucket yet
        TEST_TRACE.with(|c| c.set(0xBEEF));
        h.record(100); // traced: bucket le="127" gets the exemplar
        TEST_TRACE.with(|c| c.set(0));
        let text = reg.render_prometheus();
        assert!(text.contains(
            "qatk_test_exemplar_ns_bucket{le=\"127\"} 2 # {trace_id=\"000000000000beef\"} 100"
        ));
        // the untraced bucket keeps its plain line
        assert!(text.contains("qatk_test_exemplar_ns_bucket{le=\"7\"} 1\n"));
        // the exposition still parses, exemplars stripped
        let parsed = crate::parse_exposition(&text).expect("exposition parses");
        assert_eq!(parsed["qatk_test_exemplar_ns_bucket{le=\"127\"}"], 2.0);
        // and the snapshot carries the structured exemplar
        let snap = reg.snapshot();
        let hs = snap.histogram("qatk_test_exemplar_ns").unwrap();
        assert_eq!(hs.exemplars, vec![(127, 0xBEEF, 100)]);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global().counter("qatk_test_global_total", "g");
        let b = Registry::global().counter("qatk_test_global_total", "g");
        assert!(std::ptr::eq(a, b));
    }
}
