//! A minimal JSON reader/writer — just enough to round-trip the registry
//! snapshot and the `BENCH_*.json` perf-trajectory files without external
//! crates (the build environment is offline).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member access: `v.get("benches")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Escape a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired — the workspace never
                            // writes them; map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"benches":[{"bench":"rank","median_ns":123.0}],"ok":true}"#).unwrap();
        let benches = v.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("bench").unwrap().as_str(), Some("rank"));
        assert_eq!(benches[0].get("median_ns").unwrap().as_u64(), Some(123));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.into()));
    }

    #[test]
    fn unicode_escapes_and_utf8_passthrough() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Value::Str("é".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
    }
}
