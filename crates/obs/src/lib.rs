//! # qatk-obs — zero-dependency observability for the QATK workspace
//!
//! The build environment is offline, so this crate provides the small slice
//! of `prometheus`/`tracing` the toolkit actually needs, on `std` alone:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`;
//! * [`Gauge`] — settable signed value (`AtomicI64`);
//! * [`Histogram`] — log2-bucketed value distribution with `p50`/`p95`/`p99`
//!   estimation, safe to hammer from any number of threads;
//! * [`Timer`] — RAII span timer recording elapsed nanoseconds into a
//!   histogram on drop;
//! * [`Sampler`] — a 1-in-N gate for latency spans on paths too hot to
//!   clock every time (counters stay exact, histograms get sampled);
//! * [`Registry`] — a global process-wide metric registry rendering both a
//!   Prometheus-style text exposition ([`Registry::render_prometheus`]) and a
//!   JSON snapshot ([`Registry::render_json`]);
//! * [`json`] — a minimal JSON parser, used by the bench-trajectory gate to
//!   read `BENCH_*.json` baselines and by tests to round-trip snapshots.
//!
//! Metric names follow the workspace convention
//! `qatk_<crate>_<name>_<unit>` (see DESIGN.md §7).
//!
//! All recording paths are gated on a process-global enable flag
//! ([`set_enabled`]): with observability disabled every record operation is a
//! relaxed atomic load plus a predictable branch, which is what lets the
//! bench harness measure instrumentation overhead as an enabled-vs-disabled
//! comparison on the same binary.
//!
//! ## Example
//!
//! ```
//! use qatk_obs::{Registry, Timer};
//!
//! let reg = Registry::global();
//! let queries = reg.counter("qatk_doc_example_queries_total", "example counter");
//! let latency = reg.histogram("qatk_doc_example_latency_ns", "example latency");
//! {
//!     let _span = Timer::start(latency);
//!     queries.inc();
//! }
//! let text = reg.render_prometheus();
//! assert!(text.contains("qatk_doc_example_queries_total 1"));
//! ```

pub mod json;
mod metric;
mod registry;
mod text;

pub use metric::{Counter, Gauge, Histogram, Sampler, Timer, HISTOGRAM_BUCKETS};
pub use registry::{HistogramSnapshot, MetricKind, Registry, Sample, Snapshot, SnapshotValue};
pub use text::parse_exposition;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// The installed exemplar source (see [`set_exemplar_source`]).
static EXEMPLAR_SOURCE: OnceLock<fn() -> u64> = OnceLock::new();

/// Install the process-wide exemplar source: a function returning the
/// trace id active on the calling thread (`0` = none). `qatk-trace`
/// installs itself here on first use, which is how histogram buckets
/// learn which request last landed in them without this crate depending
/// on the tracing crate. First installation wins; later calls are no-ops.
pub fn set_exemplar_source(source: fn() -> u64) {
    let _ = EXEMPLAR_SOURCE.set(source);
}

/// The trace id active on this thread according to the installed exemplar
/// source, or `0` when none is installed or no trace is live.
#[inline]
pub fn exemplar_trace_id() -> u64 {
    match EXEMPLAR_SOURCE.get() {
        Some(source) => source(),
        None => 0,
    }
}

/// Globally enable or disable metric recording. Registration and rendering
/// keep working while disabled; only the record operations become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when metric recording is active (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
