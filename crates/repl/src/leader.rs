//! Leader side: accept follower connections and stream WAL history.
//!
//! The leader is a pure *file watcher*: it derives the replication layout —
//! snapshot watermark, sealed segments, active epoch — from the same on-disk
//! state `LoggedDatabase::open` recovers from, using the same epoch formula.
//! It therefore needs no channel to the writing process beyond sharing a
//! filesystem, and keeps working across the writer's checkpoints (an active
//! log sealed mid-read is simply picked up under its sealed name on the next
//! poll).
//!
//! Each accepted connection gets two threads: a session thread that streams
//! frames ordered so the follower is always a prefix of the leader's
//! history, and an ack-reader thread that records the follower's applied
//! cursor for lag accounting. The session resumes exactly where the
//! follower's `Hello` cursor says; a follower that has fallen behind segment
//! retention is re-seeded with a full snapshot frame.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use qatk_store::failpoint;
use qatk_store::persist::SnapshotMeta;
use qatk_store::wal::{list_segments, read_segment_chunk, segment_path, ReplCursor};

use crate::error::{ReplError, Result};
use crate::frame::{read_frame, write_frame, Frame};
use crate::metrics::metrics;
use crate::ReplPaths;

/// Tunables for the leader. The defaults suit tests and small deployments;
/// production raises `chunk_bytes` and `poll_interval` together.
#[derive(Debug, Clone)]
pub struct LeaderConfig {
    /// How long a session sleeps when the follower is fully caught up.
    pub poll_interval: Duration,
    /// Upper bound on the WAL bytes carried by one chunk frame.
    pub chunk_bytes: usize,
    /// Socket read timeout for the hello frame and the ack reader.
    pub read_timeout: Duration,
    /// Socket write timeout for outbound frames.
    pub write_timeout: Duration,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        LeaderConfig {
            poll_interval: Duration::from_millis(20),
            chunk_bytes: 256 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Live replication state, shared with whoever renders `/healthz`.
#[derive(Debug, Default)]
pub struct LeaderStatus {
    followers: AtomicUsize,
    sessions_started: AtomicU64,
    tip_segment: AtomicU64,
    tip_offset: AtomicU64,
    acked: Mutex<HashMap<u64, ReplCursor>>,
    /// Most recent traced write: `(trace_id, publish instant)`. Sessions
    /// stamp the id onto subsequent Seal/Tip frames and emit a
    /// `repl.follower_ack` trace event once a follower acks past the tip
    /// observed at stamping time.
    learn_trace: Mutex<Option<(u64, std::time::Instant)>>,
}

impl LeaderStatus {
    /// Followers currently connected.
    pub fn followers(&self) -> usize {
        self.followers.load(Ordering::Relaxed)
    }

    /// Sessions accepted since start.
    pub fn sessions_started(&self) -> u64 {
        self.sessions_started.load(Ordering::Relaxed)
    }

    /// The leader's end-of-log position `(segment, offset)` as of the last
    /// session poll.
    pub fn tip(&self) -> (u64, u64) {
        (
            self.tip_segment.load(Ordering::Relaxed),
            self.tip_offset.load(Ordering::Relaxed),
        )
    }

    /// The least-advanced cursor any connected follower has acknowledged
    /// (`None` with no followers connected).
    pub fn min_acked(&self) -> Option<ReplCursor> {
        let acked = self.acked.lock().unwrap_or_else(PoisonError::into_inner);
        acked
            .values()
            .copied()
            .min_by_key(|c| (c.segment, c.offset))
    }

    fn record_ack(&self, session: u64, cursor: ReplCursor) {
        self.acked
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(session, cursor);
    }

    /// Record the trace id of a write just published to the log (`0`
    /// clears). Called by the serving layer's publish hook.
    pub fn set_learn_trace(&self, trace: u64) {
        let mut slot = self
            .learn_trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = (trace != 0).then(|| (trace, std::time::Instant::now()));
    }

    fn learn_trace(&self) -> Option<(u64, std::time::Instant)> {
        *self
            .learn_trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn drop_session(&self, session: u64) {
        self.acked
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&session);
    }
}

/// What the leader sees on disk: the watermark, every sealed segment, and
/// the epoch the active log is running under (`LoggedDatabase::open`'s
/// formula, so the two always agree).
struct Layout {
    watermark: u64,
    segments: BTreeMap<u64, PathBuf>,
    active_epoch: u64,
}

fn read_layout(paths: &ReplPaths) -> Result<Layout> {
    let watermark = if paths.snapshot.exists() {
        SnapshotMeta::peek(&paths.snapshot)?.wal_replay_from
    } else {
        0
    };
    let segments: BTreeMap<u64, PathBuf> = list_segments(&paths.wal)?.into_iter().collect();
    let active_epoch = match segments.keys().next_back() {
        Some(&max) => (max + 1).max(watermark),
        None => watermark,
    };
    Ok(Layout {
        watermark,
        segments,
        active_epoch,
    })
}

fn file_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// A running replication leader: an accept loop plus one session per
/// follower. Dropping the handle does *not* stop the threads; call
/// [`Leader::shutdown`].
pub struct Leader {
    local_addr: SocketAddr,
    status: Arc<LeaderStatus>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Leader {
    /// Bind a replication listener over the store files at `paths` and
    /// start accepting followers.
    pub fn bind(addr: &str, paths: ReplPaths, config: LeaderConfig) -> Result<Leader> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let status = Arc::new(LeaderStatus::default());
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let status = Arc::clone(&status);
            let stop = Arc::clone(&stop);
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("repl-accept".into())
                .spawn(move || {
                    accept_loop(listener, paths, config, status, stop, sessions);
                })
                .map_err(|e| ReplError::Io(e.to_string()))?
        };

        Ok(Leader {
            local_addr,
            status,
            stop,
            accept_thread: Some(accept_thread),
            sessions,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared status for `/healthz` and tests.
    pub fn status(&self) -> Arc<LeaderStatus> {
        Arc::clone(&self.status)
    }

    /// Stop accepting, close every session, join all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    paths: ReplPaths,
    config: LeaderConfig,
    status: Arc<LeaderStatus>,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session = status.sessions_started.fetch_add(1, Ordering::Relaxed);
                metrics().sessions_total.inc();
                let paths = paths.clone();
                let config = config.clone();
                let status2 = Arc::clone(&status);
                let stop2 = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("repl-session-{session}"))
                    .spawn(move || {
                        status2.followers.fetch_add(1, Ordering::Relaxed);
                        metrics().followers.add(1);
                        let _ = run_session(stream, &paths, &config, &status2, &stop2, session);
                        status2.followers.fetch_sub(1, Ordering::Relaxed);
                        metrics().followers.add(-1);
                        status2.drop_session(session);
                    });
                if let Ok(handle) = handle {
                    sessions
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Stream history to one follower until it disconnects, an error occurs, or
/// the leader shuts down.
fn run_session(
    mut stream: TcpStream,
    paths: &ReplPaths,
    config: &LeaderConfig,
    status: &LeaderStatus,
    stop: &AtomicBool,
    session: u64,
) -> Result<()> {
    let m = metrics();
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true).ok();

    let Frame::Hello {
        mut cursor,
        trace: _,
    } = read_frame(&mut stream)?
    else {
        return Err(ReplError::Protocol("expected hello frame".into()));
    };
    let _ = m;

    // The ack reader owns the read half and parks the newest acked cursor
    // in a shared slot the session polls; shutting the socket down on exit
    // unblocks its read.
    let acks_done = Arc::new(AtomicBool::new(false));
    let acked_slot = Arc::new(Mutex::new(None::<ReplCursor>));
    let reader_handle = {
        let acks_done = Arc::clone(&acks_done);
        let slot = Arc::clone(&acked_slot);
        let mut reader = stream.try_clone()?;
        std::thread::Builder::new()
            .name(format!("repl-acks-{session}"))
            .spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(Frame::Ack { cursor }) => {
                        metrics().acks_total.inc();
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(cursor);
                    }
                    Ok(_) => {} // ignore anything else a follower might send
                    Err(ReplError::Timeout) => {
                        if acks_done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            })
            .map_err(|e| ReplError::Io(e.to_string()))?
    };

    let result = stream_to_follower(
        &mut stream,
        paths,
        config,
        status,
        stop,
        session,
        &mut cursor,
        &acked_slot,
    );

    acks_done.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader_handle.join();
    result
}

#[allow(clippy::too_many_arguments)]
fn stream_to_follower(
    stream: &mut TcpStream,
    paths: &ReplPaths,
    config: &LeaderConfig,
    status: &LeaderStatus,
    stop: &AtomicBool,
    session: u64,
    cursor: &mut ReplCursor,
    acked_slot: &Mutex<Option<ReplCursor>>,
) -> Result<()> {
    let m = metrics();
    let mut sent_watermark: Option<u64> = None;
    let mut said_hello = false;
    let mut seeded = false;
    // Follower ack-lag accounting: `(trace, target segment, target offset,
    // publish instant)` armed when a traced write is first stamped onto an
    // outbound frame; the event fires once an ack covers the target.
    let mut pending_trace: Option<(u64, u64, u64, std::time::Instant)> = None;
    let mut armed_trace: u64 = 0;

    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(acked) = acked_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            status.record_ack(session, acked);
            if let Some((trace, seg, off, at)) = pending_trace {
                if (acked.segment, acked.offset) >= (seg, off) {
                    if let Some(id) = qatk_trace::TraceId::from_u64(trace) {
                        qatk_trace::record_event(
                            id,
                            "repl.follower_ack",
                            at.elapsed().as_nanos() as u64,
                            vec![
                                ("session", qatk_trace::Value::U64(session)),
                                ("segment", qatk_trace::Value::U64(acked.segment)),
                                ("offset", qatk_trace::Value::U64(acked.offset)),
                            ],
                        );
                    }
                    pending_trace = None;
                }
            }
        }

        let layout = read_layout(paths)?;
        let tip_offset = file_len(&paths.wal);
        status
            .tip_segment
            .store(layout.active_epoch, Ordering::Relaxed);
        status.tip_offset.store(tip_offset, Ordering::Relaxed);

        // Stamp the most recent traced write onto outbound Seal/Tip frames,
        // arming the ack-lag target at the tip observed right now (every
        // byte of the traced write is at or below it).
        let frame_trace = match status.learn_trace() {
            Some((trace, at)) => {
                if trace != armed_trace {
                    armed_trace = trace;
                    pending_trace = Some((trace, layout.active_epoch, tip_offset, at));
                }
                trace
            }
            None => 0,
        };

        if !said_hello {
            failpoint::check("repl.leader.before_hello_ok")?;
            write_frame(
                stream,
                &Frame::HelloOk {
                    epoch: layout.active_epoch,
                    watermark: layout.watermark,
                },
            )?;
            m.frames_sent_total.inc();
            said_hello = true;
            sent_watermark = Some(cursor.watermark);
        }

        // Can the follower's next segment still be served from the log? It
        // must exist on disk (or be the active epoch), and so must every
        // segment between it and the tip. Otherwise: re-seed with a full
        // snapshot. A fresh follower (zero cursor) is also seeded from the
        // snapshot whenever one exists, because DDL is not WAL-logged.
        let fresh = *cursor == ReplCursor::default() && !seeded;
        let resumable = (cursor.segment..layout.active_epoch)
            .all(|e| layout.segments.contains_key(&e))
            && cursor.segment <= layout.active_epoch
            && !(fresh && paths.snapshot.exists());
        let target_len = if cursor.segment == layout.active_epoch {
            tip_offset
        } else {
            layout
                .segments
                .get(&cursor.segment)
                .map(|p| file_len(p))
                .unwrap_or(0)
        };
        if !resumable || cursor.offset > target_len {
            if !paths.snapshot.exists() {
                return Err(ReplError::Protocol(format!(
                    "cannot serve cursor {cursor}: segments are gone and no snapshot exists"
                )));
            }
            failpoint::check("repl.leader.before_snapshot")?;
            let bytes = std::fs::read(&paths.snapshot)?;
            let watermark = layout.watermark;
            write_frame(stream, &Frame::Snapshot { watermark, bytes })?;
            m.frames_sent_total.inc();
            m.snapshots_shipped_total.inc();
            *cursor = ReplCursor {
                watermark,
                segment: watermark,
                offset: 0,
            };
            sent_watermark = Some(watermark);
            seeded = true;
            continue;
        }

        // Watermark advance: only after every covered segment has been
        // fully streamed (cursor at or past the watermark), so the follower
        // can fold them into its own snapshot the moment it hears this.
        if layout.watermark > sent_watermark.unwrap_or(0) && cursor.segment >= layout.watermark {
            failpoint::check("repl.leader.before_watermark")?;
            write_frame(
                stream,
                &Frame::Watermark {
                    replay_from: layout.watermark,
                },
            )?;
            m.frames_sent_total.inc();
            sent_watermark = Some(layout.watermark);
            cursor.watermark = layout.watermark;
            continue;
        }

        if cursor.segment < layout.active_epoch {
            // A sealed segment: its content is final. Stream the rest, then
            // announce the seal.
            let path = &layout.segments[&cursor.segment];
            let chunk = read_segment_chunk(path, cursor.offset, config.chunk_bytes)?;
            if chunk.bytes.is_empty() {
                failpoint::check("repl.leader.before_seal")?;
                write_frame(
                    stream,
                    &Frame::Seal {
                        segment: cursor.segment,
                        trace: frame_trace,
                    },
                )?;
                m.frames_sent_total.inc();
                m.seals_sent_total.inc();
                cursor.segment += 1;
                cursor.offset = 0;
            } else {
                failpoint::check("repl.leader.before_chunk")?;
                let n = chunk.bytes.len() as u64;
                write_frame(
                    stream,
                    &Frame::Chunk {
                        segment: cursor.segment,
                        offset: cursor.offset,
                        bytes: chunk.bytes,
                    },
                )?;
                m.frames_sent_total.inc();
                m.bytes_shipped_total.add(n);
                cursor.offset = chunk.end_offset;
            }
            continue;
        }

        // The active log. Read first, then re-list: if our epoch got sealed
        // while we read, the bytes may belong to a newer epoch — discard
        // and let the next iteration stream from the sealed file.
        let chunk = if paths.wal.exists() {
            match read_segment_chunk(&paths.wal, cursor.offset, config.chunk_bytes) {
                Ok(c) => c,
                Err(qatk_store::error::StoreError::Io(_)) => {
                    // Most likely renamed under us by a checkpoint; the next
                    // iteration re-derives the layout. The sleep keeps a
                    // persistent I/O failure from spinning hot.
                    std::thread::sleep(config.poll_interval);
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        } else {
            qatk_store::wal::SegmentChunk {
                bytes: Vec::new(),
                end_offset: cursor.offset,
            }
        };
        if segment_path(&paths.wal, cursor.segment).exists() {
            continue; // sealed mid-read; re-derive the layout
        }
        if !chunk.bytes.is_empty() {
            failpoint::check("repl.leader.before_chunk")?;
            let n = chunk.bytes.len() as u64;
            write_frame(
                stream,
                &Frame::Chunk {
                    segment: cursor.segment,
                    offset: cursor.offset,
                    bytes: chunk.bytes,
                },
            )?;
            m.frames_sent_total.inc();
            m.bytes_shipped_total.add(n);
            cursor.offset = chunk.end_offset;
            continue;
        }

        // Fully caught up: heartbeat and doze.
        failpoint::check("repl.leader.before_tip")?;
        write_frame(
            stream,
            &Frame::Tip {
                segment: layout.active_epoch,
                offset: tip_offset,
                trace: frame_trace,
            },
        )?;
        m.frames_sent_total.inc();
        std::thread::sleep(config.poll_interval);
    }
}
