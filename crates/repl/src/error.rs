//! Replication errors, with stalled-peer timeouts as a first-class variant.
//!
//! Sockets in the replication path always run under read timeouts, and the
//! platform reports an expired timeout as either `WouldBlock` (Unix) or
//! `TimedOut` (Windows). Both kinds normalize to [`ReplError::Timeout`] at
//! conversion time — the same mapping `qatk-serve` applies on its server
//! and client paths — so callers retry stalled peers instead of treating
//! them as hard I/O failures.

use qatk_store::error::StoreError;

/// Result alias for the replication layer.
pub type Result<T> = std::result::Result<T, ReplError>;

/// Everything that can go wrong while shipping or replaying WAL frames.
#[derive(Debug)]
pub enum ReplError {
    /// The peer stalled: a socket read or write ran past its deadline.
    /// Retryable — the follower reconnects and resumes from its cursor.
    Timeout,
    /// The peer closed the connection (cleanly or mid-frame).
    Disconnected,
    /// Any other socket or file I/O failure.
    Io(String),
    /// The peer sent something the protocol does not allow at this point:
    /// bad magic, an unknown frame type, a chunk at the wrong offset.
    Protocol(String),
    /// A store-layer failure while scanning, replaying or persisting.
    Store(StoreError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Timeout => write!(f, "replication peer timed out"),
            ReplError::Disconnected => write!(f, "replication peer disconnected"),
            ReplError::Io(m) => write!(f, "replication i/o error: {m}"),
            ReplError::Protocol(m) => write!(f, "replication protocol error: {m}"),
            ReplError::Store(e) => write!(f, "replication store error: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReplError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe => ReplError::Disconnected,
            _ => ReplError::Io(e.to_string()),
        }
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> Self {
        ReplError::Store(e)
    }
}

impl ReplError {
    /// True for conditions a follower should retry by reconnecting (the
    /// cursor makes every retry safe): timeouts and disconnects.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ReplError::Timeout | ReplError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_kinds_normalize_to_the_typed_timeout() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let e: ReplError = std::io::Error::new(kind, "stalled").into();
            assert!(matches!(e, ReplError::Timeout), "{kind:?}");
            assert!(e.is_retryable());
        }
    }

    #[test]
    fn eof_and_resets_are_disconnects_other_io_is_not() {
        let e: ReplError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, ReplError::Disconnected));
        assert!(e.is_retryable());
        let e: ReplError = std::io::Error::other("disk on fire").into();
        assert!(matches!(e, ReplError::Io(_)));
        assert!(!e.is_retryable());
    }
}
