//! Follower side: mirror the leader's WAL on local disk, replay it into an
//! in-memory database, and publish progress.
//!
//! The follower's invariant is simple and is what the crash-convergence
//! harness leans on: **only whole, checksum-verified records are ever
//! appended to a local segment file, in stream order**. Its disk is
//! therefore always a prefix of the leader's history plus at most one torn
//! record (a crash mid-append), which [`Follower::open`] truncates away
//! exactly like `LoggedDatabase::open` does for the active log. Every frame
//! is applied to disk *before* it is acknowledged, so the leader never
//! trims history (via watermark advance + retention) that a follower would
//! still need — and a follower that crashes after applying but before
//! acking merely re-reports a further-ahead cursor on reconnect.
//!
//! The follower stores every segment under its sealed name
//! (`wal.log.<epoch:06>`), including the one the leader is still writing;
//! there is no local active log until [`Follower::promote`] renames the
//! newest segment into place and re-opens the pair as a writable
//! [`LoggedDatabase`] — the promotion path for failover.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qatk_store::db::Database;
use qatk_store::error::StoreError;
use qatk_store::failpoint;
use qatk_store::persist::SnapshotMeta;
use qatk_store::wal::{
    list_segments, replay, scan_bytes, scan_log, segment_path, LoggedDatabase, RecoveryReport,
    ReplCursor, SegmentRetention, SyncPolicy,
};

use crate::error::{ReplError, Result};
use crate::frame::{read_frame, write_frame, Frame};
use crate::metrics::metrics;
use crate::ReplPaths;

/// Tunables for a follower.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Socket read timeout. The leader heartbeats every poll interval, so a
    /// full timeout with nothing received means a stalled leader and
    /// triggers a reconnect.
    pub read_timeout: Duration,
    /// Socket write timeout (acks).
    pub write_timeout: Duration,
    /// Pause between reconnect attempts in [`Follower::run`].
    pub reconnect_backoff: Duration,
    /// `fdatasync` each chunk after appending it (durability at the cost of
    /// throughput; off by default, segments are synced at seal time like
    /// the leader's own rotation).
    pub sync_each_chunk: bool,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            reconnect_backoff: Duration::from_millis(200),
            sync_each_chunk: false,
        }
    }
}

/// Live replica state, shared with whoever renders `/healthz`.
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    connected: AtomicBool,
    applied_watermark: AtomicU64,
    applied_segment: AtomicU64,
    applied_offset: AtomicU64,
    leader_segment: AtomicU64,
    leader_offset: AtomicU64,
    lag_bytes: AtomicI64,
    records_applied: AtomicU64,
}

impl ReplicaStatus {
    /// True while a leader connection is up.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// The cursor the follower has applied and persisted.
    pub fn applied(&self) -> ReplCursor {
        ReplCursor {
            watermark: self.applied_watermark.load(Ordering::Relaxed),
            segment: self.applied_segment.load(Ordering::Relaxed),
            offset: self.applied_offset.load(Ordering::Relaxed),
        }
    }

    /// The leader's tip as of the last tip/hello frame.
    pub fn leader_tip(&self) -> (u64, u64) {
        (
            self.leader_segment.load(Ordering::Relaxed),
            self.leader_offset.load(Ordering::Relaxed),
        )
    }

    /// Bytes behind the leader tip (same segment), or -1 while unknown or
    /// whole segments behind.
    pub fn lag_bytes(&self) -> i64 {
        self.lag_bytes.load(Ordering::Relaxed)
    }

    /// WAL records replayed since this process started following.
    pub fn records_applied(&self) -> u64 {
        self.records_applied.load(Ordering::Relaxed)
    }

    fn set_applied(&self, c: ReplCursor) {
        self.applied_watermark.store(c.watermark, Ordering::Relaxed);
        self.applied_segment.store(c.segment, Ordering::Relaxed);
        self.applied_offset.store(c.offset, Ordering::Relaxed);
        self.refresh_lag();
    }

    fn set_leader_tip(&self, segment: u64, offset: u64) {
        self.leader_segment.store(segment, Ordering::Relaxed);
        self.leader_offset.store(offset, Ordering::Relaxed);
        self.refresh_lag();
    }

    fn refresh_lag(&self) {
        let (ls, lo) = self.leader_tip();
        let a = self.applied();
        let m = metrics();
        let seg_lag = ls.saturating_sub(a.segment) as i64;
        m.lag_segments.set(seg_lag);
        let byte_lag = if ls == a.segment {
            lo.saturating_sub(a.offset) as i64
        } else {
            -1
        };
        self.lag_bytes.store(byte_lag, Ordering::Relaxed);
        m.lag_bytes.set(byte_lag);
    }
}

/// What [`Follower::open`] found on local disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaRecovery {
    /// A local snapshot existed and was loaded.
    pub snapshot_loaded: bool,
    /// Local segments replayed on top of it.
    pub segments_replayed: usize,
    /// WAL records replayed.
    pub records_replayed: usize,
    /// The newest local segment ended in a torn record (crash mid-append),
    /// which was truncated away.
    pub torn_tail: bool,
    /// The cursor the replica resumes from.
    pub cursor: ReplCursor,
}

/// A read replica: local mirror of a leader's snapshot + WAL pair.
pub struct Follower {
    paths: ReplPaths,
    config: FollowerConfig,
    db: Database,
    cursor: ReplCursor,
    status: Arc<ReplicaStatus>,
}

impl Follower {
    /// Recover a follower from its local files (both may be absent on first
    /// boot: the leader will seed a fresh follower with a snapshot frame).
    pub fn open(paths: ReplPaths, config: FollowerConfig) -> Result<(Follower, ReplicaRecovery)> {
        let mut report = ReplicaRecovery::default();
        let (mut db, meta) = if paths.snapshot.exists() {
            let loaded = Database::load_with(&paths.snapshot)?;
            report.snapshot_loaded = true;
            loaded
        } else {
            (Database::new(), SnapshotMeta::default())
        };
        let mut cursor = ReplCursor {
            watermark: meta.wal_replay_from,
            segment: meta.wal_replay_from,
            offset: 0,
        };
        let segments = list_segments(&paths.wal)?;
        let newest = segments.last().map(|s| s.0);
        for (epoch, path) in &segments {
            if *epoch < meta.wal_replay_from {
                // Covered by our own snapshot: an interrupted prune. Finish.
                std::fs::remove_file(path)?;
                continue;
            }
            if *epoch != cursor.segment {
                return Err(ReplError::Store(StoreError::Corrupt(format!(
                    "replica log gap: expected segment {:06}, found {}",
                    cursor.segment,
                    path.display()
                ))));
            }
            let scan = scan_log(path)?;
            if scan.torn {
                if Some(*epoch) != newest {
                    return Err(ReplError::Store(StoreError::Corrupt(format!(
                        "replica segment {} has a torn tail but is not the newest",
                        path.display()
                    ))));
                }
                // Crash mid-append of the newest segment: truncate, exactly
                // like LoggedDatabase::open does for a torn active log.
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(scan.valid_len)?;
                report.torn_tail = true;
            }
            replay(&mut db, &scan.records)?;
            report.segments_replayed += 1;
            report.records_replayed += scan.records.len();
            cursor.segment = *epoch;
            cursor.offset = scan.valid_len;
            if Some(*epoch) != newest {
                // A newer segment exists, so this one was sealed: the next
                // replay target starts at its first byte.
                cursor.segment = *epoch + 1;
                cursor.offset = 0;
            }
        }
        report.cursor = cursor;
        let status = Arc::new(ReplicaStatus::default());
        status.set_applied(cursor);
        Ok((
            Follower {
                paths,
                config,
                db,
                cursor,
                status,
            },
            report,
        ))
    }

    /// Read access to the replayed database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The cursor everything up to which is applied and on local disk.
    pub fn cursor(&self) -> ReplCursor {
        self.cursor
    }

    /// Shared status for `/healthz` and tests.
    pub fn status(&self) -> Arc<ReplicaStatus> {
        Arc::clone(&self.status)
    }

    /// Follow `addr` until `stop` is set, reconnecting (with backoff) after
    /// retryable failures. `on_apply` runs after every applied frame that
    /// changed the database, with the replayed database and the new cursor —
    /// the serving layer republishes knowledge snapshots from it. Returns
    /// the first non-retryable error, or `Ok` on a requested stop.
    pub fn run(
        &mut self,
        addr: &str,
        stop: &AtomicBool,
        on_apply: &mut dyn FnMut(&Database, ReplCursor),
    ) -> Result<()> {
        let mut first = true;
        while !stop.load(Ordering::SeqCst) {
            if !first {
                metrics().reconnects_total.inc();
                std::thread::sleep(self.config.reconnect_backoff);
            }
            first = false;
            match self.sync_once(addr, stop, on_apply) {
                Ok(()) => return Ok(()), // clean stop
                Err(e) if e.is_retryable() => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// One connection lifetime: hello with our cursor, then apply frames
    /// until the peer stalls, disconnects, errors, or `stop` is set.
    pub fn sync_once(
        &mut self,
        addr: &str,
        stop: &AtomicBool,
        on_apply: &mut dyn FnMut(&Database, ReplCursor),
    ) -> Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_nodelay(true).ok();
        let mut stream = stream;

        failpoint::check("repl.follower.before_hello")?;
        write_frame(
            &mut stream,
            &Frame::Hello {
                cursor: self.cursor,
                trace: 0,
            },
        )?;
        self.status.connected.store(true, Ordering::Relaxed);
        let result = self.apply_loop(&mut stream, stop, on_apply);
        self.status.connected.store(false, Ordering::Relaxed);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        result
    }

    fn apply_loop(
        &mut self,
        stream: &mut TcpStream,
        stop: &AtomicBool,
        on_apply: &mut dyn FnMut(&Database, ReplCursor),
    ) -> Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let frame = read_frame(stream)?;
            let changed = self.apply(&frame)?;
            if frame_needs_ack(&frame) {
                failpoint::check("repl.follower.before_ack")?;
                write_frame(
                    stream,
                    &Frame::Ack {
                        cursor: self.cursor,
                    },
                )?;
            }
            if changed {
                on_apply(&self.db, self.cursor);
            }
        }
    }

    /// Apply one leader frame. Returns true if the database changed.
    fn apply(&mut self, frame: &Frame) -> Result<bool> {
        let m = metrics();
        match frame {
            Frame::HelloOk { epoch, watermark } => {
                let _ = watermark;
                self.status.set_leader_tip(*epoch, 0);
                Ok(false)
            }
            Frame::Tip {
                segment, offset, ..
            } => {
                self.status.set_leader_tip(*segment, *offset);
                Ok(false)
            }
            Frame::Snapshot { watermark, bytes } => {
                failpoint::check("repl.follower.install_snapshot")?;
                let (db, meta) = Database::from_bytes_with(bytes)?;
                if meta.wal_replay_from != *watermark {
                    return Err(ReplError::Protocol(format!(
                        "snapshot watermark mismatch: frame says {}, file says {}",
                        watermark, meta.wal_replay_from
                    )));
                }
                // Install on disk first (atomically), then drop every local
                // segment: the stream restarts at (watermark, 0) and stale
                // files would otherwise be a gap or a divergence later.
                db.save_with(&self.paths.snapshot, meta)?;
                for (_, path) in list_segments(&self.paths.wal)? {
                    std::fs::remove_file(path)?;
                }
                self.db = db;
                self.cursor = ReplCursor {
                    watermark: *watermark,
                    segment: *watermark,
                    offset: 0,
                };
                self.status.set_applied(self.cursor);
                m.snapshots_installed_total.inc();
                m.frames_applied_total.inc();
                Ok(true)
            }
            Frame::Chunk {
                segment,
                offset,
                bytes,
            } => {
                if *segment != self.cursor.segment || *offset != self.cursor.offset {
                    return Err(ReplError::Protocol(format!(
                        "chunk for segment {segment} at {offset}, expected {}",
                        self.cursor
                    )));
                }
                let scan = scan_bytes(bytes)?;
                if scan.torn || scan.valid_len != bytes.len() as u64 {
                    return Err(ReplError::Protocol(
                        "chunk does not end on a record boundary".into(),
                    ));
                }
                failpoint::check("repl.follower.append_chunk")?;
                let path = segment_path(&self.paths.wal, *segment);
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                let on_disk = file.metadata()?.len();
                if on_disk != *offset {
                    return Err(ReplError::Protocol(format!(
                        "local segment {} holds {on_disk} bytes, leader resumed at {offset}",
                        path.display()
                    )));
                }
                std::io::Write::write_all(&mut file, bytes)?;
                if self.config.sync_each_chunk {
                    file.sync_data()?;
                }
                drop(file);
                failpoint::check("repl.follower.before_replay")?;
                replay(&mut self.db, &scan.records)?;
                self.cursor.offset += bytes.len() as u64;
                self.status.set_applied(self.cursor);
                m.records_replayed_total.add(scan.records.len() as u64);
                self.status
                    .records_applied
                    .fetch_add(scan.records.len() as u64, Ordering::Relaxed);
                m.frames_applied_total.inc();
                Ok(true)
            }
            Frame::Seal { segment, .. } => {
                if *segment != self.cursor.segment {
                    return Err(ReplError::Protocol(format!(
                        "seal for segment {segment}, expected {}",
                        self.cursor.segment
                    )));
                }
                failpoint::check("repl.follower.before_seal_sync")?;
                // The segment is final: make our copy durable before
                // acknowledging (the leader fsynced its own at rotation).
                // An empty sealed segment may not have a file yet.
                let path = segment_path(&self.paths.wal, *segment);
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                file.sync_all()?;
                drop(file);
                // Also create the (empty) next segment, mirroring the fresh
                // active log the leader's checkpoint leaves behind. It doubles
                // as a durable seal marker: recovery sees a newer segment and
                // re-derives exactly this post-seal cursor instead of
                // re-ending inside the sealed file.
                let next = segment_path(&self.paths.wal, *segment + 1);
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&next)?
                    .sync_all()?;
                sync_parent_dir(&path)?;
                self.cursor.segment += 1;
                self.cursor.offset = 0;
                self.status.set_applied(self.cursor);
                m.frames_applied_total.inc();
                Ok(false)
            }
            Frame::Watermark { replay_from } => {
                if *replay_from > self.cursor.segment {
                    return Err(ReplError::Protocol(format!(
                        "watermark {replay_from} ahead of our segment {}",
                        self.cursor.segment
                    )));
                }
                if *replay_from <= self.cursor.watermark {
                    return Ok(false); // stale repeat after a reconnect
                }
                failpoint::check("repl.follower.before_watermark_save")?;
                // Our database state at this point folds in everything
                // below the new watermark, so this is a self-checkpoint:
                // atomic snapshot, then prune the covered segments.
                self.db.save_with(
                    &self.paths.snapshot,
                    SnapshotMeta {
                        wal_replay_from: *replay_from,
                    },
                )?;
                failpoint::check("repl.follower.before_watermark_prune")?;
                for (epoch, path) in list_segments(&self.paths.wal)? {
                    if epoch < *replay_from {
                        std::fs::remove_file(path)?;
                    }
                }
                self.cursor.watermark = *replay_from;
                self.status.set_applied(self.cursor);
                m.follower_checkpoints_total.inc();
                m.frames_applied_total.inc();
                Ok(true)
            }
            Frame::Hello { .. } | Frame::Ack { .. } => Err(ReplError::Protocol(format!(
                "unexpected {} frame from leader",
                frame.name()
            ))),
        }
    }

    /// Promote this follower into a writable [`LoggedDatabase`] — the
    /// failover path. The newest local segment (the leader's former active
    /// epoch) is renamed into place as the active log, then the pair is
    /// re-opened from disk so the returned handle's state is exactly what a
    /// post-crash recovery would see; it continues the same epoch sequence
    /// and starts accepting writes.
    pub fn promote(
        self,
        policy: SyncPolicy,
        retention: SegmentRetention,
    ) -> Result<(LoggedDatabase, RecoveryReport)> {
        let Follower { paths, .. } = self;
        if paths.wal.exists() {
            return Err(ReplError::Protocol(format!(
                "cannot promote: {} already exists (already promoted?)",
                paths.wal.display()
            )));
        }
        if let Some((_, newest)) = list_segments(&paths.wal)?.into_iter().next_back() {
            std::fs::rename(&newest, &paths.wal)?;
            sync_parent_dir(&paths.wal)?;
        }
        let (db, report) =
            LoggedDatabase::open_with_retention(&paths.snapshot, &paths.wal, policy, retention)?;
        Ok((db, report))
    }
}

/// True for leader frames the follower must acknowledge (everything that
/// advances or persists state; heartbeats and hellos are not acked).
fn frame_needs_ack(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Snapshot { .. } | Frame::Chunk { .. } | Frame::Seal { .. } | Frame::Watermark { .. }
    )
}

/// Fsync the directory containing `path` (Unix; no-op elsewhere), so
/// renames and newly created segment files survive power loss.
fn sync_parent_dir(path: &std::path::Path) -> Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => std::path::Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}
