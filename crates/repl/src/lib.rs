//! # qatk-repl — WAL-shipping replication for the QATK store
//!
//! The ROADMAP's north star is heavy read traffic against one knowledge
//! base. A single process cannot serve it, but PR 4's durability artifacts —
//! epoch-numbered sealed WAL segments and snapshot watermarks — are exactly
//! what a read replica needs. This crate turns them into horizontal
//! scale-out and failover (DESIGN.md §13):
//!
//! * a [`leader::Leader`] accepts follower connections on a plain
//!   `std::net` listener and streams snapshot bytes, WAL chunks, segment
//!   seals and watermark advances as length-prefixed [`frame::Frame`]s,
//!   resuming each follower from the `(watermark, segment, offset)`
//!   [`qatk_store::wal::ReplCursor`] it reports;
//! * a [`follower::Follower`] mirrors the leader's segment files
//!   byte-for-byte on its own disk, replays every record into its own
//!   in-memory [`qatk_store::db::Database`], checkpoints itself when the
//!   leader's watermark advances, and can be
//!   [promoted](follower::Follower::promote) into a writable
//!   [`qatk_store::wal::LoggedDatabase`] that continues the same log.
//!
//! Because the follower stores *the leader's bytes* (only whole,
//! checksum-verified records are ever appended), its recovered state after
//! any crash is a prefix of the leader's history — the crash-convergence
//! harness in the workspace tests asserts this byte-for-byte through
//! `Database::canonical_bytes` at every protocol step.

pub mod error;
pub mod follower;
pub mod frame;
pub mod leader;
pub mod metrics;

use std::path::PathBuf;

/// The on-disk pair replication operates on: a snapshot file and the active
/// WAL path (sealed segments sit next to the latter, suffixed `.<epoch:06>`).
/// The leader reads this layout; a follower writes its own mirror of it.
#[derive(Debug, Clone)]
pub struct ReplPaths {
    pub snapshot: PathBuf,
    pub wal: PathBuf,
}

impl ReplPaths {
    pub fn new(snapshot: impl Into<PathBuf>, wal: impl Into<PathBuf>) -> Self {
        ReplPaths {
            snapshot: snapshot.into(),
            wal: wal.into(),
        }
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::error::{ReplError, Result as ReplResult};
    pub use crate::follower::{Follower, FollowerConfig, ReplicaRecovery, ReplicaStatus};
    pub use crate::frame::{read_frame, write_frame, Frame};
    pub use crate::leader::{Leader, LeaderConfig, LeaderStatus};
    pub use crate::ReplPaths;
    pub use qatk_store::wal::ReplCursor;
}

pub use prelude::*;
