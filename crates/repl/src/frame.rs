//! The replication wire protocol: length-prefixed, checksummed frames over
//! a plain TCP stream (DESIGN.md §13).
//!
//! ```text
//! frame   := len:u32 type:u8 body checksum:u64
//! len     =  1 + body.len() + 8          (everything after the prefix)
//! checksum = fnv1a(type ++ body)
//! ```
//!
//! All integers are little-endian, matching the WAL record format. The
//! checksum makes a damaged frame a [`ReplError::Protocol`] instead of a
//! silent misreplay; the length prefix is bounded per frame type, so a
//! corrupted prefix cannot make a reader allocate unbounded memory.
//!
//! The conversation is deliberately small:
//!
//! * follower → leader: [`Frame::Hello`] once, then [`Frame::Ack`] after
//!   every applied frame;
//! * leader → follower: [`Frame::HelloOk`], then any sequence of
//!   [`Frame::Snapshot`], [`Frame::Chunk`], [`Frame::Seal`],
//!   [`Frame::Watermark`] and idle [`Frame::Tip`] frames, ordered so that a
//!   follower that applies them in arrival order is always a prefix of the
//!   leader's history.

use std::io::{Read, Write};

use bytes::{Buf, BufMut};

use qatk_store::codec::fnv1a;
use qatk_store::wal::ReplCursor;

use crate::error::{ReplError, Result};

/// Protocol magic carried in every [`Frame::Hello`].
pub const HELLO_MAGIC: &[u8; 4] = b"QRPL";
/// Protocol version; a mismatch is a [`ReplError::Protocol`]. Version 2
/// added the `trace` field on Hello/Seal/Tip frames (request-scoped trace
/// propagation; `0` = no trace).
pub const PROTOCOL_VERSION: u32 = 2;

/// Largest frame body a reader will accept: a snapshot frame carries a whole
/// database snapshot, everything else is far smaller.
pub const MAX_FRAME_BODY: usize = 1 << 28; // 256 MiB

const T_HELLO: u8 = 1;
const T_HELLO_OK: u8 = 2;
const T_SNAPSHOT: u8 = 3;
const T_CHUNK: u8 = 4;
const T_SEAL: u8 = 5;
const T_WATERMARK: u8 = 6;
const T_ACK: u8 = 7;
const T_TIP: u8 = 8;

/// One protocol message. See the module docs for who sends what when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Follower introduces itself with the cursor it wants to resume from.
    /// `trace` propagates a request-scoped trace id when the connection is
    /// opened on behalf of a traced operation (`0` = none).
    Hello { cursor: ReplCursor, trace: u64 },
    /// Leader accepts: its active WAL epoch and snapshot watermark, so the
    /// follower knows its starting lag.
    HelloOk { epoch: u64, watermark: u64 },
    /// A whole database snapshot (the serialized snapshot file) with its
    /// watermark. Sent when the follower's cursor precedes what the leader
    /// still has on disk; the follower replaces its state and resumes at
    /// `(watermark, watermark, 0)`.
    Snapshot { watermark: u64, bytes: Vec<u8> },
    /// A run of whole WAL records from `segment` starting at byte `offset`.
    Chunk {
        segment: u64,
        offset: u64,
        bytes: Vec<u8>,
    },
    /// `segment` is sealed on the leader: no more chunks for it will ever
    /// be sent; the follower syncs its copy and advances to `segment + 1`.
    /// `trace` carries the id of the originating `/learn` request whose
    /// writes this seal covers (`0` = none), so a leader-side trace can
    /// record follower ack lag.
    Seal { segment: u64, trace: u64 },
    /// The leader's snapshot now covers every epoch below `replay_from`;
    /// the follower may checkpoint itself and prune older segments.
    Watermark { replay_from: u64 },
    /// Follower acknowledgement: everything up to `cursor` is applied and
    /// on local disk.
    Ack { cursor: ReplCursor },
    /// Leader heartbeat while idle: its current end-of-log position, for
    /// follower-side lag accounting. `trace` carries the originating trace
    /// id of the most recent traced write at or below this tip (`0` = none).
    Tip {
        segment: u64,
        offset: u64,
        trace: u64,
    },
}

impl Frame {
    /// Short name for logs and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloOk { .. } => "hello_ok",
            Frame::Snapshot { .. } => "snapshot",
            Frame::Chunk { .. } => "chunk",
            Frame::Seal { .. } => "seal",
            Frame::Watermark { .. } => "watermark",
            Frame::Ack { .. } => "ack",
            Frame::Tip { .. } => "tip",
        }
    }

    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => T_HELLO,
            Frame::HelloOk { .. } => T_HELLO_OK,
            Frame::Snapshot { .. } => T_SNAPSHOT,
            Frame::Chunk { .. } => T_CHUNK,
            Frame::Seal { .. } => T_SEAL,
            Frame::Watermark { .. } => T_WATERMARK,
            Frame::Ack { .. } => T_ACK,
            Frame::Tip { .. } => T_TIP,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { cursor, trace } => {
                out.put_slice(HELLO_MAGIC);
                out.put_u32_le(PROTOCOL_VERSION);
                put_cursor(out, cursor);
                out.put_u64_le(*trace);
            }
            Frame::HelloOk { epoch, watermark } => {
                out.put_u64_le(*epoch);
                out.put_u64_le(*watermark);
            }
            Frame::Snapshot { watermark, bytes } => {
                out.put_u64_le(*watermark);
                out.put_slice(bytes);
            }
            Frame::Chunk {
                segment,
                offset,
                bytes,
            } => {
                out.put_u64_le(*segment);
                out.put_u64_le(*offset);
                out.put_slice(bytes);
            }
            Frame::Seal { segment, trace } => {
                out.put_u64_le(*segment);
                out.put_u64_le(*trace);
            }
            Frame::Watermark { replay_from } => out.put_u64_le(*replay_from),
            Frame::Ack { cursor } => put_cursor(out, cursor),
            Frame::Tip {
                segment,
                offset,
                trace,
            } => {
                out.put_u64_le(*segment);
                out.put_u64_le(*offset);
                out.put_u64_le(*trace);
            }
        }
    }

    fn decode(type_byte: u8, mut body: &[u8]) -> Result<Frame> {
        let buf = &mut body;
        let frame = match type_byte {
            T_HELLO => {
                let mut magic = [0u8; 4];
                take(buf, &mut magic)?;
                if &magic != HELLO_MAGIC {
                    return Err(ReplError::Protocol(format!(
                        "bad hello magic {magic:02x?} (not a replication peer?)"
                    )));
                }
                let version = get_u32(buf)?;
                if version != PROTOCOL_VERSION {
                    return Err(ReplError::Protocol(format!(
                        "protocol version {version} (expected {PROTOCOL_VERSION})"
                    )));
                }
                Frame::Hello {
                    cursor: get_cursor(buf)?,
                    trace: get_u64(buf)?,
                }
            }
            T_HELLO_OK => Frame::HelloOk {
                epoch: get_u64(buf)?,
                watermark: get_u64(buf)?,
            },
            T_SNAPSHOT => Frame::Snapshot {
                watermark: get_u64(buf)?,
                bytes: buf.to_vec(),
            },
            T_CHUNK => Frame::Chunk {
                segment: get_u64(buf)?,
                offset: get_u64(buf)?,
                bytes: buf.to_vec(),
            },
            T_SEAL => Frame::Seal {
                segment: get_u64(buf)?,
                trace: get_u64(buf)?,
            },
            T_WATERMARK => Frame::Watermark {
                replay_from: get_u64(buf)?,
            },
            T_ACK => Frame::Ack {
                cursor: get_cursor(buf)?,
            },
            T_TIP => Frame::Tip {
                segment: get_u64(buf)?,
                offset: get_u64(buf)?,
                trace: get_u64(buf)?,
            },
            other => {
                return Err(ReplError::Protocol(format!("unknown frame type {other}")));
            }
        };
        // Variable-length frames consumed the remainder above.
        if matches!(
            type_byte,
            T_HELLO | T_HELLO_OK | T_SEAL | T_WATERMARK | T_ACK | T_TIP
        ) && buf.has_remaining()
        {
            return Err(ReplError::Protocol(format!(
                "{} trailing bytes after frame body",
                buf.remaining()
            )));
        }
        Ok(frame)
    }
}

fn put_cursor(out: &mut Vec<u8>, c: &ReplCursor) {
    out.put_u64_le(c.watermark);
    out.put_u64_le(c.segment);
    out.put_u64_le(c.offset);
}

fn get_cursor(buf: &mut &[u8]) -> Result<ReplCursor> {
    Ok(ReplCursor {
        watermark: get_u64(buf)?,
        segment: get_u64(buf)?,
        offset: get_u64(buf)?,
    })
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(ReplError::Protocol("truncated frame body".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(ReplError::Protocol("truncated frame body".into()));
    }
    Ok(buf.get_u64_le())
}

fn take(buf: &mut &[u8], out: &mut [u8]) -> Result<()> {
    if buf.remaining() < out.len() {
        return Err(ReplError::Protocol("truncated frame body".into()));
    }
    out.copy_from_slice(&buf[..out.len()]);
    buf.advance(out.len());
    Ok(())
}

/// Serialize one frame into wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.push(frame.type_byte());
    frame.encode_body(&mut body);
    let mut out = Vec::with_capacity(body.len() + 12);
    out.put_u32_le((body.len() + 8) as u32);
    out.put_slice(&body);
    out.put_u64_le(fnv1a(&body));
    out
}

/// Write one frame and flush it to the peer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()?;
    Ok(())
}

/// Read one frame, blocking up to the stream's read timeout. A stalled peer
/// surfaces as [`ReplError::Timeout`], a closed one as
/// [`ReplError::Disconnected`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut prefix = [0u8; 4];
    read_exact(r, &mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len < 1 + 8 {
        return Err(ReplError::Protocol(format!("frame length {len} too small")));
    }
    if len > MAX_FRAME_BODY + 1 + 8 {
        return Err(ReplError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BODY}-byte body limit"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload)?;
    let (body, checksum_bytes) = payload.split_at(len - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 checksum bytes"));
    if stored != fnv1a(body) {
        return Err(ReplError::Protocol("frame checksum mismatch".into()));
    }
    Frame::decode(body[0], &body[1..])
}

/// `read_exact` with the replication error mapping. A clean EOF on the very
/// first byte and a mid-frame EOF both mean the peer went away.
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<()> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ReplError::Disconnected,
        _ => ReplError::from(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let got = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn all_frames_roundtrip() {
        let cursor = ReplCursor {
            watermark: 3,
            segment: 5,
            offset: 4096,
        };
        roundtrip(Frame::Hello { cursor, trace: 0 });
        roundtrip(Frame::Hello {
            cursor,
            trace: 0xDEAD_BEEF,
        });
        roundtrip(Frame::HelloOk {
            epoch: 9,
            watermark: 7,
        });
        roundtrip(Frame::Snapshot {
            watermark: 2,
            bytes: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::Chunk {
            segment: 4,
            offset: 128,
            bytes: vec![0; 1000],
        });
        roundtrip(Frame::Seal {
            segment: 4,
            trace: 0,
        });
        roundtrip(Frame::Seal {
            segment: 4,
            trace: u64::MAX,
        });
        roundtrip(Frame::Watermark { replay_from: 5 });
        roundtrip(Frame::Ack { cursor });
        roundtrip(Frame::Tip {
            segment: 6,
            offset: 0,
            trace: 0x0123_4567_89AB_CDEF,
        });
    }

    #[test]
    fn empty_payloads_roundtrip() {
        roundtrip(Frame::Snapshot {
            watermark: 0,
            bytes: vec![],
        });
        roundtrip(Frame::Chunk {
            segment: 0,
            offset: 0,
            bytes: vec![],
        });
    }

    #[test]
    fn corrupted_checksum_is_a_protocol_error() {
        let mut bytes = encode_frame(&Frame::Seal {
            segment: 1,
            trace: 0,
        });
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(ReplError::Protocol(_))
        ));
    }

    #[test]
    fn flipped_type_byte_fails_checksum_not_decode() {
        let mut bytes = encode_frame(&Frame::Seal {
            segment: 1,
            trace: 0,
        });
        bytes[4] = 99; // type byte is covered by the checksum
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(ReplError::Protocol(ref m)) if m.contains("checksum")
        ));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let cursor = ReplCursor::default();
        let mut ok = Vec::new();
        Frame::Hello { cursor, trace: 0 }.encode_body(&mut ok);
        // wrong magic
        let mut body = ok.clone();
        body[0] = b'X';
        assert!(matches!(
            Frame::decode(T_HELLO, &body),
            Err(ReplError::Protocol(ref m)) if m.contains("magic")
        ));
        // wrong version
        let mut body = ok.clone();
        body[4] = 0xEE;
        assert!(matches!(
            Frame::decode(T_HELLO, &body),
            Err(ReplError::Protocol(ref m)) if m.contains("version")
        ));
    }

    #[test]
    fn truncated_stream_is_a_disconnect() {
        let bytes = encode_frame(&Frame::Tip {
            segment: 1,
            offset: 2,
            trace: 0,
        });
        for cut in [0, 2, 6, bytes.len() - 1] {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, ReplError::Disconnected), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let mut bytes = vec![0u8; 12];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(ReplError::Protocol(ref m)) if m.contains("exceeds")
        ));
    }
}
