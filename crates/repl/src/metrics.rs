//! Replication metrics, registered under the `qatk_repl_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Gauge, Registry};

/// Handles to every `qatk_repl_*` metric. Leader- and follower-side metrics
/// share the registry; a process that is only one of the two simply leaves
/// the other family at zero.
pub struct ReplMetrics {
    /// Follower connections accepted by the leader.
    pub sessions_total: &'static Counter,
    /// Followers currently connected to the leader.
    pub followers: &'static Gauge,
    /// Frames the leader sent (all types).
    pub frames_sent_total: &'static Counter,
    /// WAL bytes the leader shipped inside chunk frames.
    pub bytes_shipped_total: &'static Counter,
    /// Full snapshots the leader shipped to catch followers up.
    pub snapshots_shipped_total: &'static Counter,
    /// Segment seals the leader announced.
    pub seals_sent_total: &'static Counter,
    /// Acks the leader received from followers.
    pub acks_total: &'static Counter,

    /// Frames the follower applied (chunks, seals, watermarks, snapshots).
    pub frames_applied_total: &'static Counter,
    /// WAL records the follower replayed into its database.
    pub records_replayed_total: &'static Counter,
    /// Snapshots the follower installed.
    pub snapshots_installed_total: &'static Counter,
    /// Follower checkpoints taken on watermark advance.
    pub follower_checkpoints_total: &'static Counter,
    /// Reconnect attempts by the follower.
    pub reconnects_total: &'static Counter,
    /// Bytes between the leader tip and the follower's applied cursor, from
    /// the latest tip frame (same segment only; -1 while unknown).
    pub lag_bytes: &'static Gauge,
    /// Segments between the leader tip and the follower's applied cursor.
    pub lag_segments: &'static Gauge,
}

/// The replication metric handles (registered on first use).
pub fn metrics() -> &'static ReplMetrics {
    static M: OnceLock<ReplMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        ReplMetrics {
            sessions_total: r.counter(
                "qatk_repl_sessions_total",
                "follower connections accepted by the leader",
            ),
            followers: r.gauge("qatk_repl_followers", "followers currently connected"),
            frames_sent_total: r.counter("qatk_repl_frames_sent_total", "frames sent by leader"),
            bytes_shipped_total: r.counter(
                "qatk_repl_bytes_shipped_total",
                "WAL bytes shipped in chunk frames",
            ),
            snapshots_shipped_total: r.counter(
                "qatk_repl_snapshots_shipped_total",
                "full snapshots shipped to followers",
            ),
            seals_sent_total: r.counter("qatk_repl_seals_sent_total", "segment seals announced"),
            acks_total: r.counter("qatk_repl_acks_total", "acks received from followers"),
            frames_applied_total: r.counter(
                "qatk_repl_frames_applied_total",
                "frames applied by the follower",
            ),
            records_replayed_total: r.counter(
                "qatk_repl_records_replayed_total",
                "WAL records replayed by the follower",
            ),
            snapshots_installed_total: r.counter(
                "qatk_repl_snapshots_installed_total",
                "snapshots installed by the follower",
            ),
            follower_checkpoints_total: r.counter(
                "qatk_repl_follower_checkpoints_total",
                "follower checkpoints on watermark advance",
            ),
            reconnects_total: r
                .counter("qatk_repl_reconnects_total", "follower reconnect attempts"),
            lag_bytes: r.gauge(
                "qatk_repl_lag_bytes",
                "bytes behind the leader tip (same segment; -1 unknown)",
            ),
            lag_segments: r.gauge("qatk_repl_lag_segments", "segments behind the leader tip"),
        }
    })
}
