//! Property suite for the sealed-segment codec and the sealed ranking path.
//!
//! Two layers of guarantees:
//!
//! * **codec**: delta+varint encode → checked decode is the identity over
//!   arbitrary sorted id lists, and decoding any truncated or garbage
//!   buffer returns `Err` — never panics, never fabricates ids (the decode
//!   path runs over untrusted snapshot bytes);
//! * **ranking**: [`RankedKnn::rank_sealed`] over a [`SealedIndex`] built
//!   from a random knowledge base is indistinguishable from
//!   [`RankedKnn::rank`] over the live inverted index — same codes, same
//!   order, same scores — across known/unknown parts, empty queries and
//!   tiny `top_nodes` cut-offs. The LSH-pruned path is held to its subset
//!   contract: every code it emits carries exactly the score the exact
//!   path assigns that code.

use proptest::collection::vec;
use proptest::prelude::*;
use qatk_core::prelude::*;

/// Sorted, deduplicated id list with a heavy-tailed value range so both
/// 1-byte and multi-byte varints occur constantly.
fn sorted_ids() -> impl Strategy<Value = Vec<u32>> {
    vec(
        prop_oneof![0u32..300, 0u32..100_000, 0u32..=u32::MAX],
        0..80,
    )
    .prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

type NodeSpec = (u8, u8, Vec<u32>);

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (0u8..4, 0u8..6, vec(0u32..12, 0..6))
}

fn build_kb(nodes: &[NodeSpec]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (part, code, feats) in nodes {
        kb.insert(
            format!("P-{part:02}"),
            format!("E{code:03}"),
            FeatureSet::from_unsorted(feats.clone()),
        );
    }
    kb
}

fn query() -> impl Strategy<Value = (u8, Vec<u32>)> {
    (0u8..6, vec(0u32..12, 0..8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrip_is_identity(ids in sorted_ids()) {
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let back = decode_sorted(&buf, ids.len()).expect("own encoding decodes");
        prop_assert_eq!(back, ids);
    }

    #[test]
    fn truncated_encoding_errors_never_panics(ids in sorted_ids(), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let cut = (buf.len() as f64 * cut_frac) as usize;
        // a proper prefix cannot contain all `ids.len()` varints: the
        // encoding is exactly one varint per id with no padding
        if cut < buf.len() {
            prop_assert!(decode_sorted(&buf[..cut], ids.len()).is_err());
        }
    }

    #[test]
    fn garbage_decode_errors_never_panics(bytes in vec(any::<u8>(), 0..64), count in 0usize..40) {
        // any outcome is fine except a panic; on success every id must have
        // come from a well-formed varint chain (checked adds reject overflow)
        let _ = decode_sorted(&bytes, count);
        let mut pos = 0usize;
        let _ = read_varint(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
    }

    #[test]
    fn sealed_rank_matches_live_rank(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
        top in 1usize..8,
    ) {
        let kb = build_kb(&nodes);
        let idx = SealedIndex::build(&kb);
        let features = FeatureSet::from_unsorted(feats);
        let part = format!("P-{part:02}");
        for knn in [
            RankedKnn { top_nodes: top, measure: SimilarityMeasure::Jaccard },
            RankedKnn::new(SimilarityMeasure::Jaccard),
        ] {
            let live = knn.rank(&kb, &part, &features);
            let sealed = knn.rank_sealed(&idx, &kb, &part, &features);
            prop_assert_eq!(live.len(), sealed.len());
            for (l, s) in live.iter().zip(&sealed) {
                prop_assert_eq!(&l.code, &s.code);
                prop_assert!((l.score - s.score).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn pruned_rank_scores_agree_with_exact(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
    ) {
        // the pruned path may *miss* codes (that is the recall trade,
        // bounded by tests/lsh_recall.rs) but every code it does emit must
        // carry the score the exact path computed for that code — pruning
        // selects candidates, it never changes arithmetic
        let kb = build_kb(&nodes);
        let idx = SealedIndex::build(&kb);
        let features = FeatureSet::from_unsorted(feats);
        let part = format!("P-{part:02}");
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let exact = knn.rank_sealed(&idx, &kb, &part, &features);
        let pruned = knn.rank_sealed_pruned(&idx, &kb, &part, &features);
        for p in &pruned {
            match exact.iter().find(|e| e.code == p.code) {
                Some(e) => prop_assert!(
                    p.score <= e.score + 1e-12,
                    "pruned {}={} beats exact {}", p.code, p.score, e.score
                ),
                // a code that fell off exact's top-25 can only surface in
                // pruned output when pruning dropped higher-scoring nodes;
                // its score still cannot beat exact's cut-off
                None => prop_assert!(
                    exact.len() == knn.top_nodes
                        || exact.iter().all(|e| e.score + 1e-12 >= p.score)
                ),
            }
        }
    }
}
