//! Property tests for snapshot persistence: epoch pruning must never take
//! an epoch a reader is pinned to (or anything newer), and `load_latest`
//! must round-trip byte-identically through the *logged* path — a
//! save → prune → crash (drop without checkpoint) → WAL-replay cycle, the
//! exact sequence a replicated leader performs on every publish.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use qatk_core::prelude::*;
use qatk_store::prelude::*;
use qatk_text::cas::Cas;
use qatk_text::engine::Pipeline;
use qatk_text::tokenizer::WhitespaceTokenizer;

fn pipeline() -> Arc<Pipeline> {
    Arc::new(Pipeline::builder().add(WhitespaceTokenizer::new()).build())
}

fn cas(text: &str) -> Cas {
    let mut c = Cas::new();
    c.add_segment("report", text);
    c
}

/// One training instance: a part, a code, and a short defect text drawn
/// from a small token pool (overlap between instances is the interesting
/// case — shared vocabulary ids must survive every round-trip).
fn any_instance() -> impl Strategy<Value = (String, String, String)> {
    const WORDS: [&str; 10] = [
        "kontakt",
        "defekt",
        "kabel",
        "durchgeschmort",
        "radio",
        "stumm",
        "sicherung",
        "geschmolzen",
        "stecker",
        "korrodiert",
    ];
    (
        0..5u8,
        0..8u8,
        proptest::collection::vec(0..WORDS.len(), 1..6),
    )
        .prop_map(|(part, code, words)| {
            (
                format!("P-{part:02}"),
                format!("E{}", 100 + code as u32),
                words
                    .into_iter()
                    .map(|w| WORDS[w])
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
}

/// A chain of epochs, each a copy-on-write builder over the previous one
/// with its own batch of instances. Epoch `i` has number `i`.
fn build_chain(batches: &[Vec<(String, String, String)>]) -> Vec<KnowledgeSnapshot> {
    let mut chain: Vec<KnowledgeSnapshot> = Vec::new();
    for batch in batches {
        let mut b = match chain.last() {
            Some(prev) => SnapshotBuilder::from_snapshot(prev),
            None => SnapshotBuilder::new(pipeline(), FeatureModel::BagOfWords),
        };
        for (part, code, text) in batch {
            b.train_instance(&mut cas(text), part, code).unwrap();
        }
        chain.push(b.seal());
    }
    chain
}

/// The observable surface a reader cares about: loadable and answering the
/// same codes for every part as the sealed original.
fn assert_same_view(loaded: &KnowledgeSnapshot, sealed: &KnowledgeSnapshot) {
    assert_eq!(loaded.epoch(), sealed.epoch());
    assert_eq!(loaded.kb().nodes(), sealed.kb().nodes());
    assert_eq!(loaded.declared_codes(), sealed.declared_codes());
    for part in (0..5).map(|p| format!("P-{p:02}")) {
        assert_eq!(
            &*loaded.codes_for_part(&part),
            &*sealed.codes_for_part(&part),
            "codes diverged for {part}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruning below `keep_from` removes exactly the epochs `< keep_from`:
    /// a reader pinned at any epoch `>= keep_from` keeps its epoch loadable
    /// and its in-memory view untouched, while every lower epoch is gone.
    #[test]
    fn prune_never_removes_a_pinned_readers_epoch(
        batches in proptest::collection::vec(proptest::collection::vec(any_instance(), 1..5), 1..4),
        keep_sel in 0..16u8,
        pin_sel in 0..16u8,
    ) {
        let chain = build_chain(&batches);
        let latest = chain.len() as u64 - 1;
        let keep_from = keep_sel as u64 % (latest + 1);
        // the pinned reader sits at or above the retention floor
        let pinned_epoch = keep_from + (pin_sel as u64 % (latest - keep_from + 1));

        let mut db = Database::new();
        for snap in &chain {
            snap.save_to_db(&mut db).unwrap();
        }
        // pin a reader the way the serving layer does: an `Arc` loaded
        // from the store before any pruning ran
        let pinned: Arc<KnowledgeSnapshot> =
            Arc::new(KnowledgeSnapshot::load_epoch(&db, pipeline(), pinned_epoch).unwrap());
        let codes_before: Vec<_> =
            (0..5).map(|p| pinned.codes_for_part(&format!("P-{p:02}"))).collect();

        let removed = KnowledgeSnapshot::prune_epochs_below(&mut db, keep_from).unwrap();
        prop_assert_eq!(removed > 0, keep_from > 0, "removed {} rows", removed);

        // every epoch >= keep_from survives and still round-trips …
        prop_assert_eq!(KnowledgeSnapshot::latest_epoch(&db).unwrap(), Some(latest));
        for epoch in keep_from..=latest {
            let loaded = KnowledgeSnapshot::load_epoch(&db, pipeline(), epoch).unwrap();
            assert_same_view(&loaded, &chain[epoch as usize]);
        }
        // … every epoch below is a typed miss, not a partial load
        for epoch in 0..keep_from {
            prop_assert!(KnowledgeSnapshot::load_epoch(&db, pipeline(), epoch).is_err());
        }
        // the pinned reader's store copy survived, and its in-memory view
        // never flinched
        let reloaded = KnowledgeSnapshot::load_epoch(&db, pipeline(), pinned_epoch).unwrap();
        assert_same_view(&reloaded, &pinned);
        for (p, before) in codes_before.iter().enumerate() {
            prop_assert_eq!(&*pinned.codes_for_part(&format!("P-{p:02}")), &**before);
        }
    }
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `load_latest` round-trips through the logged path across a full
    /// leader publish cycle: save every epoch, prune below the newest,
    /// crash without checkpointing, reopen (snapshot + WAL replay). The
    /// replayed store must answer exactly like the sealed original.
    #[test]
    fn load_latest_round_trips_across_a_logged_prune_and_replay(
        batches in proptest::collection::vec(proptest::collection::vec(any_instance(), 1..5), 2..4),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "qatk_snap_props_{}_{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("snap.qdb");
        let wal_path = dir.join("wal.log");

        let chain = build_chain(&batches);
        let latest = chain.last().unwrap();

        {
            let (mut store, _) =
                LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
            KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap();
            store.checkpoint().unwrap();
            for snap in &chain {
                snap.save_to_logged(&mut store).unwrap();
            }
            let removed =
                KnowledgeSnapshot::prune_epochs_below_logged(&mut store, latest.epoch()).unwrap();
            prop_assert!(removed > 0, "chains of length >= 2 always prune something");
            // crash: drop without checkpoint — everything must replay
        }

        let (store, report) =
            LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
        prop_assert!(report.records_replayed > 0, "the cycle must ride the WAL");
        let loaded = KnowledgeSnapshot::load_latest(store.db(), pipeline())
            .unwrap()
            .expect("latest epoch survives prune + replay");
        assert_same_view(&loaded, latest);
        // pruned epochs stayed pruned through the replay
        for epoch in 0..latest.epoch() {
            prop_assert!(
                KnowledgeSnapshot::load_epoch(store.db(), pipeline(), epoch).is_err()
            );
        }
        // the shared vocabulary replays with identical ids: same query,
        // same extracted feature set
        let mut q = cas("kontakt defekt kabel");
        let a = latest.process_and_extract(&mut q).unwrap();
        let mut q = cas("kontakt defekt kabel");
        let b = loaded.process_and_extract(&mut q).unwrap();
        prop_assert_eq!(a, b);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
