//! Golden end-to-end regression: `run_experiment` on a fixed seeded corpus
//! must keep producing the exact accuracy curve it produced when the
//! posting-list kernel landed. The whole chain is deterministic (seeded
//! corpus generator, stratified folds, total-order tie-breaks), so any drift
//! here means classification behaviour changed — rankings, fold assignment
//! or feature extraction — not noise.

use qatk_core::prelude::*;
use qatk_corpus::prelude::*;

const SEED: u64 = 20160315; // EDBT 2016

fn accuracy_at(curve: &AccuracyCurve, k: usize) -> f64 {
    let i = curve.ks.iter().position(|&x| x == k).expect("k tracked");
    curve.accuracy[i]
}

fn run(model: FeatureModel) -> ExperimentResult {
    let corpus = Corpus::generate(CorpusConfig::small(SEED));
    let config = ClassifierConfig {
        model,
        folds: 3,
        ..ClassifierConfig::default()
    };
    run_experiment(&corpus, &config)
}

fn assert_curve(result: &ExperimentResult, golden: &[(usize, f64)]) {
    for &(k, expected) in golden {
        let got = accuracy_at(&result.classifier, k);
        assert!(
            (got - expected).abs() < 5e-5,
            "{}: accuracy@{k} drifted: got {got:.6}, golden {expected:.4}",
            result.config_label,
        );
    }
    // the curve is monotone in k by construction
    for w in result.classifier.accuracy.windows(2) {
        assert!(w[0] <= w[1]);
    }
}

// Golden values: 548 coded bundles of the seed-20160315 small corpus under
// 3-fold stratified CV. Accuracy@1 is 507/548 (concepts) and 511/548
// (words); the curve saturates by k = 5 on this synthetic corpus — training
// neighbours are close by construction, so the interesting signal for
// regressions is @1 plus the exact test count.

#[test]
fn bag_of_concepts_accuracy_snapshot() {
    let result = run(FeatureModel::BagOfConcepts);
    assert_eq!(result.total_tested, 548);
    assert_curve(
        &result,
        &[(1, 507.0 / 548.0), (5, 1.0), (10, 1.0), (25, 1.0)],
    );
}

#[test]
fn bag_of_words_accuracy_snapshot() {
    let result = run(FeatureModel::BagOfWords);
    assert_eq!(result.total_tested, 548);
    assert_curve(
        &result,
        &[(1, 511.0 / 548.0), (5, 1.0), (10, 1.0), (25, 1.0)],
    );
}
