//! Differential typo-robustness test (the char n-gram model's reason to
//! exist): corrupt every query word with a character transposition and
//! rank against a vocabulary frozen on *clean* training text. Under
//! bag-of-words each corrupted word is a brand-new token, the frozen
//! vocabulary drops it as out-of-vocabulary, and the query collapses —
//! kNN on a known part with empty features returns the empty ranking.
//! Under char 3–5-grams most interior grams of each word survive the
//! transposition, so the same corrupted queries keep scoring their true
//! code into the top-k.

use qatk_core::prelude::*;
use qatk_corpus::bundle::{DataBundle, SourceSelection};
use qatk_corpus::generator::{Corpus, CorpusConfig};
use qatk_text::engine::Pipeline;

const SEED: u64 = 20160315;
/// The synthetic corpus has few codes per part, so deep cut-offs saturate
/// even for near-random rankings; hit@1 is the discriminating depth.
const TOP_K: usize = 1;
const QUERIES: usize = 120;

/// Deterministic character noise: in every alphanumeric run of two or
/// more characters, swap one *unequal* adjacent pair ("report" -> "rpeort"),
/// preferring an interior pair so long words keep their boundary
/// characters. Working on runs — not whitespace words — matters because
/// the tokenizer splits hyphenated compounds ("kx7-condition"); requiring
/// unequal chars keeps double letters ("cooling") from yielding an
/// identity swap; and noising even the short numeric tokens ("347")
/// matters because those would otherwise survive verbatim and hand
/// bag-of-words an exact overlap with the query's own training node.
fn transpose_words(text: &str) -> String {
    fn transpose_run(run: &mut [char]) {
        if run.len() < 2 {
            return;
        }
        let interior = (1..run.len().saturating_sub(1)).find(|&j| run[j] != run[j + 1]);
        let j = interior.or_else(|| (0..run.len() - 1).find(|&j| run[j] != run[j + 1]));
        if let Some(j) = j {
            run.swap(j, j + 1);
        }
    }
    let mut out: Vec<char> = Vec::with_capacity(text.len());
    let mut run_start = 0usize;
    for c in text.chars() {
        if c.is_alphanumeric() {
            out.push(c);
        } else {
            transpose_run(&mut out[run_start..]);
            out.push(c);
            run_start = out.len();
        }
    }
    transpose_run(&mut out[run_start..]);
    out.into_iter().collect()
}

/// A copy of `bundle` with every test-time text source noised.
fn noised(bundle: &DataBundle) -> DataBundle {
    let mut b = bundle.clone();
    b.mechanic_report = transpose_words(&b.mechanic_report);
    b.initial_report = b.initial_report.as_deref().map(transpose_words);
    b.supplier_report = transpose_words(&b.supplier_report);
    b
}

/// Train a frozen (vocabulary, knowledge base) pair on the clean corpus.
fn train(
    corpus: &Corpus,
    pipeline: &Pipeline,
    model: FeatureModel,
) -> (FrozenFeatureSpace, KnowledgeBase) {
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();
    for b in &corpus.bundles {
        let Some(code) = b.error_code.as_deref() else {
            continue;
        };
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline.process(&mut cas).expect("corpus text is clean");
        kb.insert(b.part_id.clone(), code, space.extract(&cas, model));
    }
    (space.freeze(), kb)
}

/// Extract the noised bundle against the frozen vocabulary and rank it;
/// returns (features kept after OOV filtering, truth found in top-k).
fn noised_outcome(
    pipeline: &Pipeline,
    space: &FrozenFeatureSpace,
    kb: &KnowledgeBase,
    model: FeatureModel,
    bundle: &DataBundle,
) -> (usize, bool) {
    let mut cas = noised(bundle).to_cas(SourceSelection::Test);
    pipeline
        .process(&mut cas)
        .expect("noised text is still processable");
    let features = space.extract(&cas, model);
    let truth = bundle.error_code.as_deref().expect("coded bundle");
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
    let ranked = knn.rank(kb, &bundle.part_id, &features);
    let hit = ranked.iter().take(TOP_K).any(|s| s.code == truth);
    (features.len(), hit)
}

#[test]
fn char_ngrams_survive_transposition_noise_where_bag_of_words_goes_oov() {
    let corpus = Corpus::generate(CorpusConfig::small(SEED));
    let ngram_model = FeatureModel::CHAR_NGRAMS;
    // neither model needs the taxonomy, but build_pipeline keeps the
    // annotator wiring identical to the serving path
    let bow_pipeline = build_pipeline(&corpus, FeatureModel::BagOfWords);
    let ngram_pipeline = build_pipeline(&corpus, ngram_model);
    let (bow_space, bow_kb) = train(&corpus, &bow_pipeline, FeatureModel::BagOfWords);
    let (ngram_space, ngram_kb) = train(&corpus, &ngram_pipeline, ngram_model);

    let coded: Vec<&DataBundle> = corpus
        .bundles
        .iter()
        .filter(|b| b.error_code.is_some())
        .take(QUERIES)
        .collect();
    assert!(coded.len() >= 100, "corpus too small for the differential");

    let mut bow_hits = 0usize;
    let mut bow_nonempty = 0usize;
    let mut ngram_hits = 0usize;
    for b in &coded {
        let (bow_feats, bow_hit) = noised_outcome(
            &bow_pipeline,
            &bow_space,
            &bow_kb,
            FeatureModel::BagOfWords,
            b,
        );
        let (ngram_feats, ngram_hit) =
            noised_outcome(&ngram_pipeline, &ngram_space, &ngram_kb, ngram_model, b);
        bow_hits += bow_hit as usize;
        bow_nonempty += (bow_feats > 0) as usize;
        assert!(
            ngram_feats > 0,
            "{}: transposed text lost every char n-gram",
            b.reference_number
        );
        ngram_hits += ngram_hit as usize;
    }

    let n = coded.len();
    eprintln!(
        "noise differential over {n} queries: bag-of-words top-{TOP_K} hits {bow_hits} \
         ({bow_nonempty} queries kept any feature), char-ngrams hits {ngram_hits}"
    );
    // bag-of-words: a transposed word is OOV against the frozen vocabulary,
    // so the noised queries lose (nearly) all their features and the true
    // code falls out of the top-k for the majority of queries
    assert!(
        bow_hits * 2 < n,
        "bag-of-words unexpectedly robust: {bow_hits}/{n} top-{TOP_K} hits under noise"
    );
    // char n-grams: interior grams survive the transposition and the true
    // code stays in the top-k almost everywhere
    assert!(
        ngram_hits * 10 >= n * 9,
        "char-ngrams lost robustness: {ngram_hits}/{n} top-{TOP_K} hits under noise"
    );
    // and the differential itself: the n-gram model strictly dominates
    assert!(
        ngram_hits > bow_hits,
        "no differential: ngram {ngram_hits} vs bow {bow_hits}"
    );
}
