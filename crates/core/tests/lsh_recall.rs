//! Differential recall: the LSH-pruned sealed ranking path against the
//! exact sealed path as oracle, over a scale-tier-shaped corpus.
//!
//! The prefilter is allowed to miss nodes — that is the trade that buys the
//! ≥5x speedup at the 1m tier — but DESIGN.md §11 bounds the damage: over a
//! seeded query stream, the pruned top-25 code list must cover at least
//! 95% of the exact top-25 code list. `bench_report --scale 1m` enforces
//! the same bound on the real 1M corpus in the nightly job; this test holds
//! it on a 15k-bundle corpus with identical statistical shape, small enough
//! for the debug-build CI test suite.

use qatk_core::prelude::*;
use qatk_corpus::scale::{ScaleConfig, ScaleCorpus};

const QUERIES: usize = 256;
const MIN_RECALL: f64 = 0.95;

fn build(corpus: &ScaleCorpus) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for b in corpus.bundles() {
        kb.insert(
            ScaleCorpus::part_name(b.part),
            ScaleCorpus::code_name(b.code),
            FeatureSet::from_unsorted(b.features.to_vec()),
        );
    }
    kb
}

#[test]
fn pruned_top25_covers_exact_top25() {
    let corpus = ScaleCorpus::generate(ScaleConfig::custom(15_000, 42));
    let kb = build(&corpus);
    let idx = SealedIndex::build(&kb);
    let knn = RankedKnn::new(SimilarityMeasure::Jaccard);

    fn top_codes(ranked: &[ScoredCode]) -> Vec<&str> {
        ranked.iter().take(25).map(|s| s.code.as_str()).collect()
    }
    let (mut overlap, mut total, mut top1_hits) = (0usize, 0usize, 0usize);
    for (part, feats) in corpus.queries(QUERIES, 7) {
        let part = ScaleCorpus::part_name(part);
        let features = FeatureSet::from_unsorted(feats);
        let exact_ranked = knn.rank_sealed(&idx, &kb, &part, &features);
        let pruned_ranked = knn.rank_sealed_pruned(&idx, &kb, &part, &features);
        let exact = top_codes(&exact_ranked);
        let pruned = top_codes(&pruned_ranked);
        assert!(!exact.is_empty(), "query has no exact candidates at all");
        overlap += exact.iter().filter(|c| pruned.contains(c)).count();
        total += exact.len();
        if pruned.first() == exact.first() {
            top1_hits += 1;
        }
    }
    let recall = overlap as f64 / total as f64;
    assert!(
        recall >= MIN_RECALL,
        "top-25 differential recall {:.2}% ({overlap}/{total}) below {:.0}%",
        recall * 100.0,
        MIN_RECALL * 100.0
    );
    // the top suggestion — what the paper's expert actually clicks — must
    // survive pruning essentially always
    assert!(
        top1_hits as f64 >= QUERIES as f64 * 0.98,
        "top-1 agreement only {top1_hits}/{QUERIES}"
    );
}

#[test]
fn lsh_prefilter_actually_prunes() {
    // recall alone could be satisfied by a prefilter that returns
    // everything; pin the selectivity side too
    let corpus = ScaleCorpus::generate(ScaleConfig::custom(15_000, 42));
    let kb = build(&corpus);
    let idx = SealedIndex::build(&kb);
    let mut total_candidates = 0usize;
    let queries = corpus.queries(64, 9);
    for (_, feats) in &queries {
        let mut seen = std::collections::HashSet::new();
        idx.lsh().for_each_candidate(feats, |n| {
            seen.insert(n);
        });
        total_candidates += seen.len();
    }
    let avg = total_candidates as f64 / queries.len() as f64;
    assert!(
        avg < kb.len() as f64 / 10.0,
        "prefilter barely prunes: {avg:.0} candidates of {} nodes",
        kb.len()
    );
    // and it is not degenerate either: true neighbours exist for every
    // query, so candidates cannot be near-zero on average (cluster ≈ 60)
    assert!(avg > 20.0, "suspiciously few candidates: {avg:.0}");
}
