//! Property tests for the [`FeatureModel`] label round-trip — the labels
//! are the persistence format (snapshot meta rows) and the CLI surface
//! (`quest --model`), so `parse(label()) == model` must hold for *every*
//! variant including the parametric char n-gram family, and every label
//! that names no model must come back as the structured
//! [`ParseModelError`] (a persisted snapshot with an unknown model label
//! is a corrupt-store error, never a silent default).

use proptest::prelude::*;
use qatk_core::prelude::*;

/// Any feature model, including arbitrary valid `lo <= hi` n-gram ranges.
fn any_model() -> impl Strategy<Value = FeatureModel> {
    prop_oneof![
        Just(FeatureModel::BagOfWords),
        Just(FeatureModel::BagOfWordsNoStop),
        Just(FeatureModel::BagOfConcepts),
        Just(FeatureModel::BagOfStems),
        (1u8..=12, 0u8..=6).prop_map(|(lo, extra)| FeatureModel::CharNgrams {
            lo,
            hi: lo.saturating_add(extra),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// label → parse is the identity over the whole model space.
    #[test]
    fn label_parse_round_trips(model in any_model()) {
        let label = model.label();
        prop_assert_eq!(FeatureModel::parse(&label), Ok(model));
        // and the label is stable under a second round-trip
        prop_assert_eq!(FeatureModel::parse(&label).unwrap().label(), label);
    }

    /// Arbitrary strings either parse to a model whose label is canonical,
    /// or fail with a structured error that echoes the offending label.
    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC{0,24}") {
        match FeatureModel::parse(&s) {
            Ok(model) => {
                // anything accepted must re-parse from its canonical label
                prop_assert_eq!(FeatureModel::parse(&model.label()), Ok(model));
            }
            Err(e) => {
                prop_assert_eq!(&e.label, &s);
                prop_assert!(e.to_string().contains(&s));
            }
        }
    }

    /// Degenerate n-gram ranges (zero-length grams, inverted bounds) are
    /// rejected, not clamped.
    #[test]
    fn bad_ngram_ranges_are_errors(lo in 0u8..=12, hi in 0u8..=12) {
        let label = format!("char-ngrams-{lo}-{hi}");
        let parsed = FeatureModel::parse(&label);
        if lo == 0 || hi < lo {
            prop_assert!(parsed.is_err(), "accepted degenerate range {label}");
        } else {
            prop_assert_eq!(parsed, Ok(FeatureModel::CharNgrams { lo, hi }));
        }
    }
}

#[test]
fn every_listed_variant_round_trips() {
    for model in FeatureModel::ALL {
        assert_eq!(FeatureModel::parse(&model.label()), Ok(model));
    }
    // the bare family name selects the default range
    assert_eq!(
        FeatureModel::parse("char-ngrams"),
        Ok(FeatureModel::CHAR_NGRAMS)
    );
}

#[test]
fn unknown_label_error_is_structured_and_descriptive() {
    let err = FeatureModel::parse("bag-of-wards").unwrap_err();
    assert_eq!(err.label, "bag-of-wards");
    let msg = err.to_string();
    assert!(msg.contains("unknown feature model label `bag-of-wards`"));
    // the error teaches the valid labels
    assert!(msg.contains("bag-of-words") && msg.contains("char-ngrams"));
}
