//! Differential suite: the posting-list score-accumulation kernel behind
//! [`RankedKnn::rank`] must be indistinguishable from the original
//! per-candidate set-intersection path, kept alive as
//! [`RankedKnn::rank_naive`] exactly to serve as the oracle here.
//!
//! Every property below generates a random knowledge base and query, runs
//! both paths, and requires the *same codes in the same order* with scores
//! within 1e-12 (they are in fact computed with identical f64 operations,
//! so they agree bit-for-bit — the tolerance is the spec, the equality is
//! the implementation). Known and unknown part IDs, empty feature sets and
//! tiny `top_nodes` cut-offs are all inside the generated space.

use proptest::collection::vec;
use proptest::prelude::*;
use qatk_core::prelude::*;

/// Specification of one knowledge node, in small discrete spaces so that
/// part collisions, code collisions, duplicate configurations and score ties
/// all occur constantly.
type NodeSpec = (u8, u8, Vec<u32>);

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (0u8..4, 0u8..6, vec(0u32..12, 0..6))
}

fn build_kb(nodes: &[NodeSpec]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (part, code, feats) in nodes {
        kb.insert(
            format!("P-{part:02}"),
            format!("E{code:03}"),
            FeatureSet::from_unsorted(feats.clone()),
        );
    }
    kb
}

/// Query parts range over 0..6 while knowledge parts range over 0..4, so
/// roughly a third of the queries hit the unknown-part fallback path.
fn query() -> impl Strategy<Value = (u8, Vec<u32>)> {
    (0u8..6, vec(0u32..12, 0..8))
}

fn assert_equivalent(knn: &RankedKnn, kb: &KnowledgeBase, part: &str, features: &FeatureSet) {
    let fast = knn.rank(kb, part, features);
    let naive = knn.rank_naive(kb, part, features);
    assert_eq!(
        fast.len(),
        naive.len(),
        "{:?} part={part} top_nodes={}: length mismatch\n fast={fast:?}\nnaive={naive:?}",
        knn.measure,
        knn.top_nodes,
    );
    for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
        assert_eq!(
            f.code, n.code,
            "{:?} part={part} rank {i}: code mismatch\n fast={fast:?}\nnaive={naive:?}",
            knn.measure,
        );
        assert!(
            (f.score - n.score).abs() <= 1e-12,
            "{:?} part={part} rank {i}: score drift {} vs {}",
            knn.measure,
            f.score,
            n.score,
        );
    }
}

fn check_measure(
    measure: SimilarityMeasure,
    nodes: &[NodeSpec],
    part: u8,
    features: &[u32],
    top_nodes: usize,
) {
    let kb = build_kb(nodes);
    let features = FeatureSet::from_unsorted(features.to_vec());
    let part = format!("P-{part:02}");
    let knn = RankedKnn { top_nodes, measure };
    assert_equivalent(&knn, &kb, &part, &features);
    // the paper's cut-off as used in production
    let knn25 = RankedKnn::new(measure);
    assert_equivalent(&knn25, &kb, &part, &features);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jaccard_kernel_matches_naive(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
        top in 1usize..8,
    ) {
        check_measure(SimilarityMeasure::Jaccard, &nodes, part, &feats, top);
    }

    #[test]
    fn overlap_kernel_matches_naive(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
        top in 1usize..8,
    ) {
        check_measure(SimilarityMeasure::Overlap, &nodes, part, &feats, top);
    }

    #[test]
    fn dice_kernel_matches_naive(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
        top in 1usize..8,
    ) {
        check_measure(SimilarityMeasure::Dice, &nodes, part, &feats, top);
    }

    #[test]
    fn cosine_kernel_matches_naive(
        nodes in vec(node_spec(), 0..24),
        (part, feats) in query(),
        top in 1usize..8,
    ) {
        check_measure(SimilarityMeasure::Cosine, &nodes, part, &feats, top);
    }

    /// The parallel batch path must agree with sequential `rank` for every
    /// query, whatever the worker count (including workers > queries and the
    /// sequential single-thread special case).
    #[test]
    fn classify_batch_matches_sequential(
        nodes in vec(node_spec(), 0..24),
        queries in vec(query(), 0..12),
        threads in 1usize..6,
    ) {
        let kb = build_kb(&nodes);
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let parts: Vec<String> = queries.iter().map(|(p, _)| format!("P-{p:02}")).collect();
        let feats: Vec<FeatureSet> = queries
            .iter()
            .map(|(_, f)| FeatureSet::from_unsorted(f.clone()))
            .collect();
        let batch: Vec<BatchQuery<'_>> = parts
            .iter()
            .zip(&feats)
            .map(|(p, f)| BatchQuery { part_id: p, features: f })
            .collect();
        let got = knn.classify_batch_with_threads(&kb, &batch, threads);
        prop_assert_eq!(got.len(), batch.len());
        for (q, ranked) in batch.iter().zip(&got) {
            let expected = knn.rank(&kb, q.part_id, q.features);
            prop_assert_eq!(ranked, &expected);
        }
    }
}

/// Deterministic corner cases the random generator could in principle miss.
#[test]
fn kernel_matches_naive_on_edge_cases() {
    let fs = |ids: &[u32]| FeatureSet::from_unsorted(ids.to_vec());
    let mut kb = KnowledgeBase::new();
    kb.insert("P-00", "E000", fs(&[1, 2, 3]));
    kb.insert("P-00", "E001", fs(&[1, 2, 3, 4]));
    kb.insert("P-01", "E000", fs(&[]));
    kb.insert("P-01", "E002", fs(&[9]));

    for measure in SimilarityMeasure::ALL {
        for top in [0usize, 1, 2, 25] {
            let knn = RankedKnn {
                top_nodes: top,
                measure,
            };
            // empty query, known and unknown parts
            assert_equivalent(&knn, &kb, "P-00", &fs(&[]));
            assert_equivalent(&knn, &kb, "P-??", &fs(&[]));
            // known part, zero overlap
            assert_equivalent(&knn, &kb, "P-00", &fs(&[42]));
            // unknown part, zero overlap → whole-KB fallback
            assert_equivalent(&knn, &kb, "P-??", &fs(&[42]));
            // plain overlapping queries
            assert_equivalent(&knn, &kb, "P-00", &fs(&[1, 2]));
            assert_equivalent(&knn, &kb, "P-??", &fs(&[1, 9]));
            // empty knowledge base
            assert_equivalent(&knn, &KnowledgeBase::new(), "P-00", &fs(&[1]));
        }
    }
}
