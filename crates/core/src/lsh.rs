//! Query-aware minhash/LSH candidate prefilter.
//!
//! At a million knowledge nodes the exact posting-list kernel walks every
//! posting of every query feature — hundreds of thousands of decode steps
//! when the query carries hot boilerplate features. Following the
//! query-aware-LSH line of work (Rahmani et al., arXiv:2305.03017, see
//! PAPERS.md), this module prunes that to a candidate set whose size tracks
//! the number of *genuinely similar* nodes, not the posting volume:
//!
//! * each node's feature set is summarized by **minhash signatures**:
//!   `sig[i] = min over features f of h_i(f)` — for two sets,
//!   `P[sig_a[i] == sig_b[i]] = Jaccard(a, b)`;
//! * signatures are cut into **`bands` bands of `rows` hashes** each; a band
//!   key is the hash of its rows, and two sets collide in a band with
//!   probability `s^rows` (s = Jaccard). Over all bands,
//!   `P[candidate] = 1 − (1 − s^rows)^bands` — the classic S-curve;
//! * the default **32 bands × 3 rows** (96 hashes) puts the S-curve knee
//!   near s ≈ 0.3: a true neighbour at s = 0.45 is found with p ≈ 0.95 and
//!   at s = 0.55 with p ≈ 0.99, while background pairs at s ≤ 0.05 cost
//!   under 4·10⁻⁴ false-positive probability per node — a few hundred
//!   spurious candidates per million nodes.
//!
//! Band buckets are stored as **sorted parallel arrays** (`keys`/`nodes`)
//! probed by binary search, not as `HashMap<u64, Vec<u32>>`: 12 bytes per
//! (key, node) entry instead of ~50+ with per-bucket allocations — at 1M
//! nodes × 32 bands that is ~0.4 GB versus ~1.7 GB, and build time is a
//! sort per band instead of millions of small allocations.
//!
//! The prefilter is approximate by design; callers keep the exact kernel as
//! the differential oracle (`tests/lsh_recall.rs` asserts ≥ 95 % top-25
//! recall against it over 256 random queries).

/// LSH shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands (each band is one hash table).
    pub bands: usize,
    /// Minhash rows per band; candidate probability per band = s^rows.
    pub rows: usize,
    /// Seed of the deterministic hash-family derivation.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams {
            bands: 32,
            rows: 3,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// SplitMix64 — the mixing finalizer used both to derive the hash family and
/// to scramble feature ids before the affine minhash functions.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One band's bucket table: `(key, node)` pairs sorted by key (then node),
/// stored as parallel arrays to avoid padding — see the module docs for the
/// memory math.
#[derive(Debug, Default, Clone)]
struct BandTable {
    keys: Vec<u64>,
    nodes: Vec<u32>,
}

impl BandTable {
    /// Visit every node whose band key equals `key`.
    #[inline]
    fn for_each_match(&self, key: u64, mut visit: impl FnMut(u32)) {
        let lo = self.keys.partition_point(|&k| k < key);
        let hi = lo + self.keys[lo..].partition_point(|&k| k == key);
        for &n in &self.nodes[lo..hi] {
            visit(n);
        }
    }
}

/// The minhash/LSH index over one sealed segment's nodes.
#[derive(Debug, Default, Clone)]
pub struct LshIndex {
    params: LshParams,
    /// Affine hash family: `h_i(f) = a_i * mix(f) + b_i`, `a_i` odd.
    hash_a: Vec<u64>,
    hash_b: Vec<u64>,
    tables: Vec<BandTable>,
}

impl LshIndex {
    /// Build the index over node feature sets, in node-index order. Nodes
    /// with empty feature sets are skipped (they have no signature and can
    /// never be near-neighbours).
    pub fn build<'a>(nodes: impl Iterator<Item = &'a [u32]>, params: LshParams) -> LshIndex {
        assert!(params.bands > 0 && params.rows > 0);
        let n_hashes = params.bands * params.rows;
        let mut hash_a = Vec::with_capacity(n_hashes);
        let mut hash_b = Vec::with_capacity(n_hashes);
        let mut state = params.seed;
        for _ in 0..n_hashes {
            state = splitmix64(state);
            hash_a.push(state | 1); // odd multiplier → bijective over u64
            state = splitmix64(state);
            hash_b.push(state);
        }
        let mut idx = LshIndex {
            params,
            hash_a,
            hash_b,
            tables: vec![BandTable::default(); params.bands],
        };
        // accumulate (key, node) pairs per band, then sort each band once
        let mut pending: Vec<Vec<(u64, u32)>> = vec![Vec::new(); params.bands];
        let mut sig = vec![u64::MAX; n_hashes];
        for (node, features) in nodes.enumerate() {
            if features.is_empty() {
                continue;
            }
            idx.signature(features, &mut sig);
            let node = u32::try_from(node).expect("under 4G nodes");
            for (band, key) in idx.band_keys(&sig).enumerate() {
                pending[band].push((key, node));
            }
        }
        for (band, mut entries) in pending.into_iter().enumerate() {
            entries.sort_unstable();
            let table = &mut idx.tables[band];
            table.keys.reserve_exact(entries.len());
            table.nodes.reserve_exact(entries.len());
            for (key, node) in entries {
                table.keys.push(key);
                table.nodes.push(node);
            }
        }
        idx
    }

    /// The index's shape parameters.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// Total (key, node) entries across all band tables.
    pub fn n_entries(&self) -> usize {
        self.tables.iter().map(|t| t.keys.len()).sum()
    }

    /// Compute the minhash signature of a feature set into `sig`
    /// (`bands * rows` long).
    fn signature(&self, features: &[u32], sig: &mut [u64]) {
        sig.fill(u64::MAX);
        for &f in features {
            // one mix per feature, then a cheap affine pass per hash
            let m = splitmix64(f as u64 ^ 0xA5A5_A5A5_5A5A_5A5A);
            for (i, s) in sig.iter_mut().enumerate() {
                let h = self.hash_a[i].wrapping_mul(m).wrapping_add(self.hash_b[i]);
                if h < *s {
                    *s = h;
                }
            }
        }
    }

    /// Fold each band's rows into one 64-bit band key.
    fn band_keys<'a>(&'a self, sig: &'a [u64]) -> impl Iterator<Item = u64> + 'a {
        sig.chunks_exact(self.params.rows)
            .enumerate()
            .map(|(band, rows)| {
                let mut key = splitmix64(band as u64 ^ self.params.seed);
                for &h in rows {
                    key = splitmix64(key ^ h);
                }
                key
            })
    }

    /// Visit every candidate node for a query feature set: any node sharing
    /// at least one band bucket. A node sharing several bands is visited
    /// once per shared band — callers deduplicate (the `ScoreScratch` bump
    /// does it for free). Empty queries visit nothing.
    pub fn for_each_candidate(&self, features: &[u32], mut visit: impl FnMut(u32)) {
        if features.is_empty() || self.tables.is_empty() {
            return;
        }
        let n_hashes = self.params.bands * self.params.rows;
        let mut sig = vec![u64::MAX; n_hashes];
        self.signature(features, &mut sig);
        let keys: Vec<u64> = self.band_keys(&sig).collect();
        for (band, key) in keys.into_iter().enumerate() {
            self.tables[band].for_each_match(key, &mut visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn candidates(idx: &LshIndex, q: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        idx.for_each_candidate(q, |n| out.push(n));
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn identical_sets_always_collide() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|i| (0..12).map(|k| i * 100 + k * 7).collect())
            .collect();
        let idx = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        for (i, s) in sets.iter().enumerate() {
            let c = candidates(&idx, s);
            assert!(
                c.contains(&(i as u32)),
                "set {i} does not find itself: {c:?}"
            );
        }
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        // 200 mutually disjoint sets: expected false positives ≈
        // bands * s^rows with s = 0 → only hash collisions, essentially zero
        let sets: Vec<Vec<u32>> = (0..200u32)
            .map(|i| (0..12).map(|k| i * 1000 + k).collect())
            .collect();
        let idx = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        let mut false_hits = 0usize;
        for (i, s) in sets.iter().enumerate() {
            for &c in &candidates(&idx, s) {
                if c != i as u32 {
                    false_hits += 1;
                }
            }
        }
        assert!(false_hits <= 2, "too many false positives: {false_hits}");
    }

    #[test]
    fn similar_sets_usually_collide() {
        // pairs at Jaccard ≈ 0.6 (12 shared of 20 total): the S-curve gives
        // p ≈ 0.999 per pair — over 100 pairs, essentially all must be found
        let mut rng = StdRng::seed_from_u64(99);
        let mut sets: Vec<Vec<u32>> = Vec::new();
        for _ in 0..100 {
            let base: Vec<u32> = (0..16).map(|_| rng.random_range(0..1_000_000)).collect();
            let mut a = base[..12].to_vec();
            let mut b = base[..12].to_vec();
            for _ in 0..4 {
                a.push(rng.random_range(1_000_000..2_000_000));
                b.push(rng.random_range(2_000_000..3_000_000));
            }
            sets.push(a);
            sets.push(b);
        }
        let idx = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        let mut found = 0usize;
        for pair in 0..100 {
            let a = 2 * pair as u32;
            if candidates(&idx, &sets[2 * pair + 1]).contains(&a) {
                found += 1;
            }
        }
        assert!(found >= 95, "only {found}/100 similar pairs found");
    }

    #[test]
    fn deterministic_across_builds() {
        let sets: Vec<Vec<u32>> = (0..50)
            .map(|i| (0..10).map(|k| i * 31 + k * 3).collect())
            .collect();
        let a = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        let b = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        for s in &sets {
            assert_eq!(candidates(&a, s), candidates(&b, s));
        }
        assert_eq!(a.n_entries(), b.n_entries());
        // every non-empty set occupies one slot per band
        assert_eq!(a.n_entries(), 50 * a.params().bands);
    }

    #[test]
    fn empty_sets_and_queries() {
        let sets: Vec<Vec<u32>> = vec![vec![], vec![1, 2, 3], vec![]];
        let idx = LshIndex::build(sets.iter().map(Vec::as_slice), Default::default());
        // empty nodes were skipped: only node 1 is indexed
        assert_eq!(idx.n_entries(), idx.params().bands);
        assert!(candidates(&idx, &[]).is_empty());
        assert_eq!(candidates(&idx, &[1, 2, 3]), vec![1]);
        // empty index
        let empty = LshIndex::build(std::iter::empty(), Default::default());
        assert!(candidates(&empty, &[1, 2, 3]).is_empty());
    }
}
