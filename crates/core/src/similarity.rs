//! Set similarity measures.
//!
//! The paper evaluates two (§4.3): the **Jaccard coefficient** |A∩B| / |A∪B|
//! and the **overlap coefficient** |A∩B| / min(|A|,|B|). Dice and cosine are
//! provided as ablation extensions ("can easily be used with different
//! similarity or distance measures", §4.2).

use crate::features::FeatureSet;

/// A similarity measure over feature sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// |A∩B| / |A∪B| (paper).
    Jaccard,
    /// |A∩B| / min(|A|,|B|) (paper).
    Overlap,
    /// 2|A∩B| / (|A|+|B|) (extension).
    Dice,
    /// |A∩B| / sqrt(|A|·|B|) — set cosine (extension).
    Cosine,
}

impl SimilarityMeasure {
    /// The paper's two measures, in figure order.
    pub const PAPER: [SimilarityMeasure; 2] =
        [SimilarityMeasure::Jaccard, SimilarityMeasure::Overlap];

    /// All measures including extensions.
    pub const ALL: [SimilarityMeasure; 4] = [
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Overlap,
        SimilarityMeasure::Dice,
        SimilarityMeasure::Cosine,
    ];

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SimilarityMeasure::Jaccard => "jaccard",
            SimilarityMeasure::Overlap => "overlap",
            SimilarityMeasure::Dice => "dice",
            SimilarityMeasure::Cosine => "cosine",
        }
    }

    /// Inverse of [`SimilarityMeasure::label`]: resolve a persisted or
    /// CLI-supplied label back to the measure.
    pub fn parse(label: &str) -> Option<Self> {
        SimilarityMeasure::ALL
            .into_iter()
            .find(|m| m.label() == label)
    }

    /// Score two sets in [0, 1]. Empty sets score 0 against everything
    /// (a report without features supports no recommendation).
    pub fn score(self, a: &FeatureSet, b: &FeatureSet) -> f64 {
        self.score_from_counts(a.intersection_size(b), a.len(), b.len())
    }

    /// Score from pre-computed set cardinalities: `inter` = |A ∩ B| against
    /// |A| and |B|. This is the form the posting-list accumulation kernel
    /// uses — the counts come out of one inverted-index walk, so no feature
    /// set is ever re-intersected. Every measure is a function of these
    /// three integers (|A ∪ B| = |A| + |B| − |A ∩ B|), and the arithmetic
    /// matches [`SimilarityMeasure::score`] operation-for-operation, so the
    /// two paths agree bit-for-bit.
    pub fn score_from_counts(self, inter: usize, a_len: usize, b_len: usize) -> f64 {
        if a_len == 0 || b_len == 0 {
            return 0.0;
        }
        let i = inter as f64;
        match self {
            SimilarityMeasure::Jaccard => i / (a_len + b_len - inter) as f64,
            SimilarityMeasure::Overlap => i / a_len.min(b_len) as f64,
            SimilarityMeasure::Dice => 2.0 * i / (a_len + b_len) as f64,
            SimilarityMeasure::Cosine => i / ((a_len * b_len) as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    #[test]
    fn jaccard_reference_values() {
        let a = fs(&[1, 2, 3, 4]);
        let b = fs(&[3, 4, 5, 6]);
        assert!((SimilarityMeasure::Jaccard.score(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert!((SimilarityMeasure::Jaccard.score(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_reference_values() {
        let a = fs(&[1, 2]);
        let b = fs(&[1, 2, 3, 4, 5]);
        // subset: overlap = 1 regardless of the larger set
        assert!((SimilarityMeasure::Overlap.score(&a, &b) - 1.0).abs() < 1e-12);
        let c = fs(&[2, 9]);
        assert!((SimilarityMeasure::Overlap.score(&a, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dice_and_cosine() {
        let a = fs(&[1, 2, 3]);
        let b = fs(&[2, 3, 4]);
        assert!((SimilarityMeasure::Dice.score(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
        assert!((SimilarityMeasure::Cosine.score(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_score_zero() {
        let a = fs(&[1]);
        let e = FeatureSet::default();
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.score(&a, &e), 0.0);
            assert_eq!(m.score(&e, &a), 0.0);
            assert_eq!(m.score(&e, &e), 0.0);
        }
    }

    #[test]
    fn all_measures_bounded_and_symmetric() {
        let cases = [
            (fs(&[1, 2, 3]), fs(&[3, 4])),
            (fs(&[1]), fs(&[1])),
            (fs(&[1, 2]), fs(&[3, 4])),
            (fs(&[1, 2, 3, 4, 5]), fs(&[5])),
        ];
        for m in SimilarityMeasure::ALL {
            for (a, b) in &cases {
                let s = m.score(a, b);
                assert!((0.0..=1.0).contains(&s), "{m:?} out of range: {s}");
                assert!((s - m.score(b, a)).abs() < 1e-12, "{m:?} asymmetric");
            }
        }
    }

    #[test]
    fn overlap_upper_bounds_jaccard() {
        // overlap >= jaccard always (min(|A|,|B|) <= |A∪B|)
        let cases = [
            (fs(&[1, 2, 3]), fs(&[2, 3, 4, 5])),
            (fs(&[1]), fs(&[1, 2, 3])),
            (fs(&[7, 8]), fs(&[8, 9])),
        ];
        for (a, b) in &cases {
            assert!(
                SimilarityMeasure::Overlap.score(a, b) >= SimilarityMeasure::Jaccard.score(a, b)
            );
        }
    }

    #[test]
    fn labels_and_groups() {
        assert_eq!(SimilarityMeasure::PAPER.len(), 2);
        assert_eq!(SimilarityMeasure::ALL.len(), 4);
        for m in SimilarityMeasure::ALL {
            assert!(!m.label().is_empty());
        }
    }
}
