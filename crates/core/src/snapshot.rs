//! Freeze-and-share serving snapshots with epoch-swapped publication.
//!
//! The serving stack splits into two halves:
//!
//! * [`KnowledgeSnapshot`] — an immutable, sealed bundle of everything the
//!   query path needs: the annotator pipeline, the frozen vocabulary, the
//!   knowledge base, and the per-part code lists precomputed at seal time.
//!   Every accessor is `&self`, so one `Arc<KnowledgeSnapshot>` can serve any
//!   number of threads with no locking on the hot path.
//! * [`SnapshotBuilder`] — the mutable, single-writer half. It owns a growing
//!   [`FeatureSpace`] and [`KnowledgeBase`]; [`SnapshotBuilder::seal`] turns
//!   it into the next snapshot. [`SnapshotBuilder::from_snapshot`] re-opens a
//!   snapshot copy-on-write (interned ids are preserved, readers of the old
//!   snapshot are untouched).
//!
//! Publication is epoch-based: each snapshot carries a monotonically
//! increasing epoch number, and [`EpochCell`] installs a new epoch with one
//! short write-locked pointer swap. In-flight readers hold an `Arc` clone of
//! the old snapshot and finish on it; new readers pick up the new epoch on
//! their next [`EpochCell::load`]. This is the paper's §4.4 incremental
//! learning loop ("the knowledge structure is updated with new configuration
//! instances") made safe under concurrent serving.
//!
//! Snapshots persist relationally with the epoch as part of the key
//! ([`KnowledgeSnapshot::save_to_db`] / [`KnowledgeSnapshot::load_latest`]),
//! so a restarted service resumes from the newest published epoch.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use qatk_store::prelude::*;
use qatk_text::cas::Cas;
use qatk_text::engine::{Pipeline, Result as TextResult};

use crate::features::{FeatureModel, FeatureSet, FeatureSpace, FrozenFeatureSpace};
use crate::knowledge::KnowledgeBase;
use crate::segment::SealedIndex;
use crate::similarity::SimilarityMeasure;
use crate::zoo::{ClassifierFamily, RankerConfig, RankerModel};

/// An immutable, shareable serving snapshot: sealed vocabulary + knowledge
/// base + annotator pipeline + precomputed per-part code lists, all behind
/// `&self`. Clone the `Arc`, not the snapshot.
#[derive(Debug)]
pub struct KnowledgeSnapshot {
    pipeline: Arc<Pipeline>,
    vocab: FrozenFeatureSpace,
    kb: KnowledgeBase,
    model: FeatureModel,
    /// Per-part sorted unique code lists (knowledge-base codes merged with
    /// declared extra codes), precomputed once at seal time so the suggest
    /// hot path hands out an `Arc` clone instead of allocating per call.
    codes_by_part: HashMap<String, Arc<[String]>>,
    /// Codes declared without a training instance (paper §4.4: codes exist
    /// in the master data before the first case is assigned to them).
    declared: Vec<(String, String)>,
    empty_codes: Arc<[String]>,
    /// The compressed immutable index segment (posting arena + LSH
    /// prefilter), rebuilt from the knowledge base on every seal.
    index: SealedIndex,
    /// The classifier family + measure this snapshot was sealed under.
    ranker_config: RankerConfig,
    /// The trained ranker — built once at seal time from the sealed knowledge
    /// base, so a snapshot swap atomically swaps the model with the data.
    ranker: RankerModel,
    epoch: u64,
}

impl KnowledgeSnapshot {
    /// The knowledge base (read-only).
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The sealed index segment: delta+varint-compressed posting lists and
    /// the minhash/LSH candidate prefilter over this snapshot's nodes.
    pub fn index(&self) -> &SealedIndex {
        &self.index
    }

    /// The sealed vocabulary.
    pub fn vocab(&self) -> &FrozenFeatureSpace {
        &self.vocab
    }

    /// The annotator pipeline this snapshot was trained under.
    pub fn pipeline(&self) -> &Arc<Pipeline> {
        &self.pipeline
    }

    /// The feature model this snapshot was trained under.
    pub fn model(&self) -> FeatureModel {
        self.model
    }

    /// The classifier family + similarity measure this snapshot was sealed
    /// under.
    pub fn ranker_config(&self) -> RankerConfig {
        self.ranker_config
    }

    /// The ranker trained at seal time — the single entry point for every
    /// classifier family ([`crate::zoo::Classifier`]).
    pub fn ranker(&self) -> &RankerModel {
        &self.ranker
    }

    /// The snapshot's epoch number (monotonically increasing across
    /// publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Codes declared without a training instance, in declaration order.
    pub fn declared_codes(&self) -> &[(String, String)] {
        &self.declared
    }

    /// Run the annotator pipeline over a raw CAS (`&self`: engines are
    /// stateless, the CAS carries all mutation).
    pub fn process(&self, cas: &mut Cas) -> TextResult<()> {
        self.pipeline.process(cas)
    }

    /// Extract the feature set of a *processed* CAS against the frozen
    /// vocabulary. Unknown tokens are dropped (see
    /// [`FrozenFeatureSpace::extract`] for why this cannot change a ranking).
    pub fn extract(&self, cas: &Cas) -> FeatureSet {
        self.vocab.extract(cas, self.model)
    }

    /// Process then extract, in one call.
    pub fn process_and_extract(&self, cas: &mut Cas) -> TextResult<FeatureSet> {
        self.pipeline.process(cas)?;
        Ok(self.extract(cas))
    }

    /// The sorted unique error codes a part can take (knowledge-base codes
    /// merged with declared codes), as a cheap `Arc` clone of the list
    /// precomputed at seal time. Unknown parts get the shared empty list.
    pub fn codes_for_part(&self, part_id: &str) -> Arc<[String]> {
        self.codes_by_part
            .get(part_id)
            .unwrap_or(&self.empty_codes)
            .clone()
    }

    /// Number of parts with at least one known or declared code.
    pub fn parts_with_codes(&self) -> usize {
        self.codes_by_part.len()
    }
}

/// Merge knowledge-base codes with declared extras into per-part sorted
/// unique lists — the seal-time precompute behind
/// [`KnowledgeSnapshot::codes_for_part`].
fn compute_codes_by_part(
    kb: &KnowledgeBase,
    declared: &[(String, String)],
) -> HashMap<String, Arc<[String]>> {
    let mut merged: HashMap<String, Vec<String>> = HashMap::new();
    for part in kb.parts() {
        merged.insert(
            part.to_owned(),
            kb.codes_for_part(part)
                .into_iter()
                .map(str::to_owned)
                .collect(),
        );
    }
    for (part, code) in declared {
        merged.entry(part.clone()).or_default().push(code.clone());
    }
    merged
        .into_iter()
        .map(|(part, mut codes)| {
            codes.sort_unstable();
            codes.dedup();
            (part, Arc::from(codes))
        })
        .collect()
}

/// The mutable, single-writer half of the snapshot architecture. Builds the
/// next epoch — from scratch ([`SnapshotBuilder::new`]) or copy-on-write from
/// the currently published snapshot ([`SnapshotBuilder::from_snapshot`]) —
/// then [`SnapshotBuilder::seal`]s it into an immutable
/// [`KnowledgeSnapshot`].
#[derive(Debug)]
pub struct SnapshotBuilder {
    pipeline: Arc<Pipeline>,
    space: FeatureSpace,
    kb: KnowledgeBase,
    model: FeatureModel,
    ranker: RankerConfig,
    declared: Vec<(String, String)>,
    epoch: u64,
}

impl SnapshotBuilder {
    /// Start an empty epoch-0 builder with the default ranker (kNN/Jaccard).
    pub fn new(pipeline: Arc<Pipeline>, model: FeatureModel) -> Self {
        SnapshotBuilder {
            pipeline,
            space: FeatureSpace::new(),
            kb: KnowledgeBase::new(),
            model,
            ranker: RankerConfig::default(),
            declared: Vec::new(),
            epoch: 0,
        }
    }

    /// Select the classifier family + measure the sealed snapshot will train.
    pub fn with_ranker(mut self, config: RankerConfig) -> Self {
        self.ranker = config;
        self
    }

    /// Re-open a snapshot copy-on-write for the next epoch. The knowledge
    /// base and declared codes are cloned, the vocabulary is thawed with all
    /// ids preserved, and the pipeline `Arc` is shared. The source snapshot —
    /// and every reader holding it — is untouched.
    pub fn from_snapshot(snapshot: &KnowledgeSnapshot) -> Self {
        SnapshotBuilder {
            pipeline: Arc::clone(&snapshot.pipeline),
            space: snapshot.vocab.thaw(),
            kb: snapshot.kb.clone(),
            model: snapshot.model,
            ranker: snapshot.ranker_config,
            declared: snapshot.declared.clone(),
            epoch: snapshot.epoch + 1,
        }
    }

    /// The epoch this builder will seal into.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The growing knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Extract a processed CAS's features, growing the vocabulary (training
    /// path — novel tokens are interned, unlike the frozen serving path).
    pub fn extract(&mut self, cas: &Cas) -> FeatureSet {
        self.space.extract(cas, self.model)
    }

    /// Insert a pre-extracted configuration instance. Returns `false` when an
    /// identical (part, code, features) node already exists.
    pub fn insert(
        &mut self,
        part_id: impl Into<String>,
        error_code: impl Into<String>,
        features: FeatureSet,
    ) -> bool {
        self.kb.insert(part_id, error_code, features)
    }

    /// Process a raw CAS through the pipeline, extract its features (growing
    /// the vocabulary), and insert the configuration instance.
    pub fn train_instance(
        &mut self,
        cas: &mut Cas,
        part_id: &str,
        error_code: &str,
    ) -> TextResult<bool> {
        self.pipeline.process(cas)?;
        let features = self.extract(cas);
        Ok(self.insert(part_id, error_code, features))
    }

    /// Declare a code for a part without a training instance. Returns `false`
    /// if that (part, code) pair was already declared.
    pub fn declare_code(&mut self, part_id: &str, error_code: &str) -> bool {
        let pair = (part_id.to_owned(), error_code.to_owned());
        if self.declared.contains(&pair) {
            return false;
        }
        self.declared.push(pair);
        true
    }

    /// Seal into an immutable snapshot: the vocabulary freezes, the per-part
    /// code lists are precomputed once, and the configured ranker trains over
    /// the final knowledge base — so the serving path never sorts, allocates,
    /// or trains again.
    pub fn seal(self) -> KnowledgeSnapshot {
        let codes_by_part = compute_codes_by_part(&self.kb, &self.declared);
        let index = SealedIndex::build(&self.kb);
        let ranker = self.ranker.train(&self.kb);
        KnowledgeSnapshot {
            pipeline: self.pipeline,
            vocab: self.space.freeze(),
            kb: self.kb,
            model: self.model,
            codes_by_part,
            declared: self.declared,
            empty_codes: Arc::from(Vec::new()),
            index,
            ranker_config: self.ranker,
            ranker,
            epoch: self.epoch,
        }
    }
}

/// A published-pointer cell: readers [`EpochCell::load`] an `Arc` clone of
/// the current value; a writer [`EpochCell::swap`]s in the next epoch with
/// one short write-locked pointer exchange. Readers never block each other,
/// and an in-flight reader keeps its epoch alive through its `Arc` even
/// after a swap.
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: RwLock::new(Arc::new(value)),
        }
    }

    /// The currently published value. Cheap: one read lock + one `Arc` clone.
    pub fn load(&self) -> Arc<T> {
        self.slot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publish `next`, returning the previous value. In-flight readers that
    /// loaded before the swap keep the old `Arc` and finish on it.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, next)
    }

    /// Convenience: wrap `value` in an `Arc` and [`EpochCell::swap`] it in.
    pub fn publish(&self, value: T) -> Arc<T> {
        self.swap(Arc::new(value))
    }
}

// --- versioned relational persistence ------------------------------------

impl KnowledgeSnapshot {
    /// Epoch registry: one row per persisted snapshot.
    pub const TABLE_META: &'static str = "snapshot_meta";
    /// Knowledge nodes, keyed by epoch + insertion order.
    pub const TABLE_NODES: &'static str = "snapshot_nodes";
    /// Vocabulary tokens, keyed by epoch + interner id.
    pub const TABLE_VOCAB: &'static str = "snapshot_vocab";
    /// Declared (part, code) pairs, keyed by epoch + declaration order.
    pub const TABLE_CODES: &'static str = "snapshot_codes";

    fn meta_schema() -> StoreResult<Schema> {
        SchemaBuilder::new()
            .pk("epoch", DataType::Int)
            .col("model", DataType::Text)
            .col("classifier", DataType::Text)
            .col("measure", DataType::Text)
            .col("nodes", DataType::Int)
            .col("vocab", DataType::Int)
            .build()
    }

    fn ensure_tables(db: &mut Database) -> StoreResult<()> {
        // Databases written before the classifier zoo carry a four-column
        // meta schema without the classifier/measure labels. Migrate in
        // place: recreate the table with the wider schema and rewrite the
        // rows with the defaults every pre-zoo snapshot implicitly used
        // (knn + jaccard).
        if db.has_table(Self::TABLE_META)
            && db.table(Self::TABLE_META)?.schema().columns().len() < 6
        {
            let legacy: Vec<(i64, String, i64, i64)> = db
                .table(Self::TABLE_META)?
                .scan()
                .map(|r| {
                    (
                        r.get(0).and_then(Value::as_int).unwrap_or_default(),
                        r.get(1)
                            .and_then(Value::as_text)
                            .unwrap_or_default()
                            .to_owned(),
                        r.get(2).and_then(Value::as_int).unwrap_or_default(),
                        r.get(3).and_then(Value::as_int).unwrap_or_default(),
                    )
                })
                .collect();
            db.drop_table(Self::TABLE_META)?;
            db.create_table(Self::TABLE_META, Self::meta_schema()?)?;
            for (epoch, model, nodes, vocab) in legacy {
                db.insert(
                    Self::TABLE_META,
                    row![
                        epoch,
                        model,
                        ClassifierFamily::Knn.label(),
                        SimilarityMeasure::Jaccard.label(),
                        nodes,
                        vocab
                    ],
                )?;
            }
        }
        if !db.has_table(Self::TABLE_META) {
            db.create_table(Self::TABLE_META, Self::meta_schema()?)?;
        }
        if !db.has_table(Self::TABLE_NODES) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("part_id", DataType::Text)
                .col("error_code", DataType::Text)
                .col("features", DataType::Blob)
                .build()?;
            db.create_table(Self::TABLE_NODES, schema)?;
            db.table_mut(Self::TABLE_NODES)?.create_index(
                "sn_by_epoch",
                "epoch",
                IndexKind::Hash,
            )?;
        }
        if !db.has_table(Self::TABLE_VOCAB) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("token", DataType::Text)
                .build()?;
            db.create_table(Self::TABLE_VOCAB, schema)?;
            db.table_mut(Self::TABLE_VOCAB)?.create_index(
                "sv_by_epoch",
                "epoch",
                IndexKind::Hash,
            )?;
        }
        if !db.has_table(Self::TABLE_CODES) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("part_id", DataType::Text)
                .col("error_code", DataType::Text)
                .build()?;
            db.create_table(Self::TABLE_CODES, schema)?;
        }
        Ok(())
    }

    /// Delete every row of `table` whose `epoch` column matches `epoch`.
    fn delete_epoch_rows(db: &mut Database, table: &str, epoch: u64) -> StoreResult<usize> {
        let pks: Vec<Value> = {
            let t = db.table(table)?;
            Query::new()
                .filter(Cond::eq(t, "epoch", epoch as i64)?)
                .run(t)?
                .into_iter()
                .filter_map(|r| r.get(0).cloned())
                .collect()
        };
        let n = pks.len();
        for pk in &pks {
            db.delete(table, pk)?;
        }
        Ok(n)
    }

    /// Persist this snapshot under its epoch. Earlier epochs are left in
    /// place (versioned history); re-saving the same epoch overwrites it.
    pub fn save_to_db(&self, db: &mut Database) -> StoreResult<()> {
        Self::ensure_tables(db)?;
        for table in [
            Self::TABLE_META,
            Self::TABLE_NODES,
            Self::TABLE_VOCAB,
            Self::TABLE_CODES,
        ] {
            Self::delete_epoch_rows(db, table, self.epoch)?;
        }
        let e = self.epoch as i64;
        db.insert(
            Self::TABLE_META,
            row![
                e,
                self.model.label(),
                self.ranker_config.family.label(),
                self.ranker_config.measure.label(),
                self.kb.len() as i64,
                self.vocab.vocabulary_size() as i64
            ],
        )?;
        for (i, node) in self.kb.nodes().iter().enumerate() {
            let mut blob = Vec::with_capacity(node.features.len() * 4);
            for f in node.features.iter() {
                blob.extend_from_slice(&f.to_le_bytes());
            }
            db.insert(
                Self::TABLE_NODES,
                row![
                    format!("e{}#{}", self.epoch, i),
                    e,
                    i as i64,
                    node.part_id.clone(),
                    node.error_code.clone(),
                    blob
                ],
            )?;
        }
        for (i, token) in self.vocab.tokens().enumerate() {
            db.insert(
                Self::TABLE_VOCAB,
                row![format!("v{}#{}", self.epoch, i), e, i as i64, token],
            )?;
        }
        for (i, (part, code)) in self.declared.iter().enumerate() {
            db.insert(
                Self::TABLE_CODES,
                row![
                    format!("c{}#{}", self.epoch, i),
                    e,
                    i as i64,
                    part.clone(),
                    code.clone()
                ],
            )?;
        }
        Ok(())
    }

    /// The newest persisted epoch, if any snapshot was ever saved.
    pub fn latest_epoch(db: &Database) -> StoreResult<Option<u64>> {
        if !db.has_table(Self::TABLE_META) {
            return Ok(None);
        }
        let t = db.table(Self::TABLE_META)?;
        let rows = Query::new()
            .order_by("epoch", SortOrder::Desc)
            .limit(1)
            .run(t)?;
        Ok(rows
            .first()
            .and_then(|r| r.get(0))
            .and_then(Value::as_int)
            .map(|e| e as u64))
    }

    /// Load the newest persisted epoch (load-latest semantics), or `None` if
    /// nothing was ever saved. The pipeline is supplied by the caller — it is
    /// code, not data.
    pub fn load_latest(
        db: &Database,
        pipeline: Arc<Pipeline>,
    ) -> StoreResult<Option<KnowledgeSnapshot>> {
        match Self::latest_epoch(db)? {
            Some(epoch) => Self::load_epoch(db, pipeline, epoch).map(Some),
            None => Ok(None),
        }
    }

    /// Load one specific persisted epoch.
    pub fn load_epoch(
        db: &Database,
        pipeline: Arc<Pipeline>,
        epoch: u64,
    ) -> StoreResult<KnowledgeSnapshot> {
        let e = epoch as i64;
        let meta_table = db.table(Self::TABLE_META)?;
        let meta = Query::new()
            .filter(Cond::eq(meta_table, "epoch", e)?)
            .run(meta_table)?;
        let meta = meta.first().ok_or_else(|| {
            StoreError::Corrupt(format!("snapshot epoch {epoch} not found in meta table"))
        })?;
        let label = meta.get(1).and_then(Value::as_text).unwrap_or_default();
        let model = FeatureModel::parse(label).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        // Legacy four-column databases have Int values (node/vocab counts) at
        // indexes 2/3, so `as_text` yields None and the pre-zoo defaults
        // apply. Post-migration databases carry the labels explicitly.
        let family_label = meta.get(2).and_then(Value::as_text).unwrap_or("knn");
        let family = ClassifierFamily::parse(family_label)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        let measure_label = meta.get(3).and_then(Value::as_text).unwrap_or("jaccard");
        let measure = SimilarityMeasure::parse(measure_label).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "unknown similarity measure label `{measure_label}`"
            ))
        })?;
        let ranker_config = RankerConfig::new(family, measure);

        let vocab_table = db.table(Self::TABLE_VOCAB)?;
        let tokens: Vec<String> = Query::new()
            .filter(Cond::eq(vocab_table, "epoch", e)?)
            .order_by("ord", SortOrder::Asc)
            .run(vocab_table)?
            .into_iter()
            .map(|r| {
                r.get(3)
                    .and_then(Value::as_text)
                    .unwrap_or_default()
                    .to_owned()
            })
            .collect();
        let vocab = FrozenFeatureSpace::from_tokens(tokens);

        let nodes_table = db.table(Self::TABLE_NODES)?;
        let mut kb = KnowledgeBase::new();
        for r in Query::new()
            .filter(Cond::eq(nodes_table, "epoch", e)?)
            .order_by("ord", SortOrder::Asc)
            .run(nodes_table)?
        {
            let part = r.get(3).and_then(Value::as_text).unwrap_or_default();
            let code = r.get(4).and_then(Value::as_text).unwrap_or_default();
            let blob = r.get(5).and_then(Value::as_blob).unwrap_or_default();
            let ids: Vec<u32> = blob
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            kb.insert(part, code, FeatureSet::from_unsorted(ids));
        }

        let codes_table = db.table(Self::TABLE_CODES)?;
        let declared: Vec<(String, String)> = Query::new()
            .filter(Cond::eq(codes_table, "epoch", e)?)
            .order_by("ord", SortOrder::Asc)
            .run(codes_table)?
            .into_iter()
            .map(|r| {
                (
                    r.get(3)
                        .and_then(Value::as_text)
                        .unwrap_or_default()
                        .to_owned(),
                    r.get(4)
                        .and_then(Value::as_text)
                        .unwrap_or_default()
                        .to_owned(),
                )
            })
            .collect();

        let codes_by_part = compute_codes_by_part(&kb, &declared);
        let index = SealedIndex::build(&kb);
        let ranker = ranker_config.train(&kb);
        Ok(KnowledgeSnapshot {
            pipeline,
            vocab,
            kb,
            model,
            codes_by_part,
            declared,
            empty_codes: Arc::from(Vec::new()),
            index,
            ranker_config,
            ranker,
            epoch,
        })
    }

    /// Drop every persisted epoch strictly below `keep_from` from all four
    /// snapshot tables. Returns the number of rows removed.
    pub fn prune_epochs_below(db: &mut Database, keep_from: u64) -> StoreResult<usize> {
        let mut removed = 0;
        for table in [
            Self::TABLE_META,
            Self::TABLE_NODES,
            Self::TABLE_VOCAB,
            Self::TABLE_CODES,
        ] {
            if !db.has_table(table) {
                continue;
            }
            let pks: Vec<Value> = {
                let t = db.table(table)?;
                Query::new()
                    .filter(Cond::lt(t, "epoch", keep_from as i64)?)
                    .run(t)?
                    .into_iter()
                    .filter_map(|r| r.get(0).cloned())
                    .collect()
            };
            for pk in &pks {
                db.delete(table, pk)?;
            }
            removed += pks.len();
        }
        Ok(removed)
    }

    /// Create the snapshot tables through a [`LoggedDatabase`]. DDL is not
    /// WAL-logged, so a replicating leader must call this *before* its boot
    /// checkpoint: the checkpoint bakes the schemas into the snapshot file,
    /// and every follower (and crash recovery) replays logged row DML against
    /// tables the snapshot already holds. Secondary epoch indexes are skipped
    /// on this path — they are an in-memory query accelerator, not state, and
    /// the logged handle deliberately exposes no index DDL.
    ///
    /// Returns `true` if any table was created (the caller should
    /// checkpoint). Pre-zoo four-column meta tables cannot be migrated
    /// through the logged handle; open such a store once with
    /// [`Self::save_to_db`] semantics before replicating it.
    pub fn ensure_replicated_tables(store: &mut LoggedDatabase) -> StoreResult<bool> {
        if store.has_table(Self::TABLE_META)
            && store.db().table(Self::TABLE_META)?.schema().columns().len() < 6
        {
            return Err(StoreError::Corrupt(format!(
                "table `{}` has a pre-zoo four-column schema; migrate it with \
                 a non-replicated open before serving it as a leader",
                Self::TABLE_META
            )));
        }
        let mut created = false;
        if !store.has_table(Self::TABLE_META) {
            store.create_table(Self::TABLE_META, Self::meta_schema()?)?;
            created = true;
        }
        if !store.has_table(Self::TABLE_NODES) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("part_id", DataType::Text)
                .col("error_code", DataType::Text)
                .col("features", DataType::Blob)
                .build()?;
            store.create_table(Self::TABLE_NODES, schema)?;
            created = true;
        }
        if !store.has_table(Self::TABLE_VOCAB) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("token", DataType::Text)
                .build()?;
            store.create_table(Self::TABLE_VOCAB, schema)?;
            created = true;
        }
        if !store.has_table(Self::TABLE_CODES) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Text)
                .col("epoch", DataType::Int)
                .col("ord", DataType::Int)
                .col("part_id", DataType::Text)
                .col("error_code", DataType::Text)
                .build()?;
            store.create_table(Self::TABLE_CODES, schema)?;
            created = true;
        }
        Ok(created)
    }

    /// Like [`Self::delete_epoch_rows`], but routed through the WAL so the
    /// deletes ship to followers.
    fn delete_epoch_rows_logged(
        store: &mut LoggedDatabase,
        table: &str,
        epoch: u64,
    ) -> StoreResult<usize> {
        let pks: Vec<Value> = {
            let t = store.db().table(table)?;
            Query::new()
                .filter(Cond::eq(t, "epoch", epoch as i64)?)
                .run(t)?
                .into_iter()
                .filter_map(|r| r.get(0).cloned())
                .collect()
        };
        let n = pks.len();
        for pk in &pks {
            store.delete(table, pk)?;
        }
        Ok(n)
    }

    /// Persist this snapshot through a [`LoggedDatabase`]: every row insert
    /// and delete goes through the WAL, so a replicating leader's followers
    /// receive the published epoch as ordinary log records and crash
    /// recovery replays it. Same overwrite semantics as
    /// [`Self::save_to_db`]; tables must already exist (call
    /// [`Self::ensure_replicated_tables`] + checkpoint at boot first).
    pub fn save_to_logged(&self, store: &mut LoggedDatabase) -> StoreResult<()> {
        for table in [
            Self::TABLE_META,
            Self::TABLE_NODES,
            Self::TABLE_VOCAB,
            Self::TABLE_CODES,
        ] {
            if !store.has_table(table) {
                return Err(StoreError::Corrupt(format!(
                    "snapshot table `{table}` missing; call \
                     ensure_replicated_tables and checkpoint before saving"
                )));
            }
            Self::delete_epoch_rows_logged(store, table, self.epoch)?;
        }
        let e = self.epoch as i64;
        let mut node_rows = Vec::with_capacity(self.kb.len());
        for (i, node) in self.kb.nodes().iter().enumerate() {
            let mut blob = Vec::with_capacity(node.features.len() * 4);
            for f in node.features.iter() {
                blob.extend_from_slice(&f.to_le_bytes());
            }
            node_rows.push(row![
                format!("e{}#{}", self.epoch, i),
                e,
                i as i64,
                node.part_id.clone(),
                node.error_code.clone(),
                blob
            ]);
        }
        if !node_rows.is_empty() {
            store.insert_many(Self::TABLE_NODES, node_rows)?;
        }
        let vocab_rows: Vec<Row> = self
            .vocab
            .tokens()
            .enumerate()
            .map(|(i, token)| row![format!("v{}#{}", self.epoch, i), e, i as i64, token])
            .collect();
        if !vocab_rows.is_empty() {
            store.insert_many(Self::TABLE_VOCAB, vocab_rows)?;
        }
        let code_rows: Vec<Row> = self
            .declared
            .iter()
            .enumerate()
            .map(|(i, (part, code))| {
                row![
                    format!("c{}#{}", self.epoch, i),
                    e,
                    i as i64,
                    part.clone(),
                    code.clone()
                ]
            })
            .collect();
        if !code_rows.is_empty() {
            store.insert_many(Self::TABLE_CODES, code_rows)?;
        }
        // The meta row goes LAST: it is the epoch's commit record. A replica
        // replaying this log mid-stream sees `latest_epoch` flip to this
        // epoch only once every node/vocab/code row is already applied
        // (deletes above un-commit a re-save first), so it can never load a
        // partially shipped epoch.
        store.insert(
            Self::TABLE_META,
            row![
                e,
                self.model.label(),
                self.ranker_config.family.label(),
                self.ranker_config.measure.label(),
                self.kb.len() as i64,
                self.vocab.vocabulary_size() as i64
            ],
        )?;
        Ok(())
    }

    /// [`Self::prune_epochs_below`] routed through the WAL: the leader's
    /// retention decision replicates to followers as ordinary deletes.
    pub fn prune_epochs_below_logged(
        store: &mut LoggedDatabase,
        keep_from: u64,
    ) -> StoreResult<usize> {
        let mut removed = 0;
        for table in [
            Self::TABLE_META,
            Self::TABLE_NODES,
            Self::TABLE_VOCAB,
            Self::TABLE_CODES,
        ] {
            if !store.has_table(table) {
                continue;
            }
            let pks: Vec<Value> = {
                let t = store.db().table(table)?;
                Query::new()
                    .filter(Cond::lt(t, "epoch", keep_from as i64)?)
                    .run(t)?
                    .into_iter()
                    .filter_map(|r| r.get(0).cloned())
                    .collect()
            };
            for pk in &pks {
                store.delete(table, pk)?;
            }
            removed += pks.len();
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_text::tokenizer::WhitespaceTokenizer;

    fn pipeline() -> Arc<Pipeline> {
        Arc::new(Pipeline::builder().add(WhitespaceTokenizer::new()).build())
    }

    fn cas(text: &str) -> Cas {
        let mut c = Cas::new();
        c.add_segment("report", text);
        c
    }

    fn trained_snapshot() -> KnowledgeSnapshot {
        let mut b = SnapshotBuilder::new(pipeline(), FeatureModel::BagOfWords);
        b.train_instance(&mut cas("Kontakt defekt"), "P-01", "E100")
            .unwrap();
        b.train_instance(&mut cas("Kabel durchgeschmort"), "P-01", "E200")
            .unwrap();
        b.train_instance(&mut cas("Radio stumm"), "P-02", "E300")
            .unwrap();
        b.declare_code("P-01", "E900");
        b.declare_code("P-03", "E500");
        b.seal()
    }

    #[test]
    fn builder_seals_into_queryable_snapshot() {
        let snap = trained_snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.kb().len(), 3);
        assert_eq!(snap.vocab().vocabulary_size(), 6);

        let mut q = cas("Kontakt defekt");
        let f = snap.process_and_extract(&mut q).unwrap();
        assert_eq!(f.len(), 2);
        // unknown tokens are dropped by the frozen vocabulary
        let mut q = cas("voellig neues Vokabular");
        let f = snap.process_and_extract(&mut q).unwrap();
        assert!(f.is_empty());
        assert_eq!(snap.vocab().vocabulary_size(), 6);
    }

    #[test]
    fn seal_precomputes_merged_code_lists() {
        let snap = trained_snapshot();
        // KB codes merged with the declared E900, sorted unique
        assert_eq!(&*snap.codes_for_part("P-01"), &["E100", "E200", "E900"]);
        assert_eq!(&*snap.codes_for_part("P-02"), &["E300"]);
        // declared-only part exists even without a training instance
        assert_eq!(&*snap.codes_for_part("P-03"), &["E500"]);
        assert!(snap.codes_for_part("P-99").is_empty());
        assert_eq!(snap.parts_with_codes(), 3);
        // repeated lookups hand out the same allocation
        assert!(Arc::ptr_eq(
            &snap.codes_for_part("P-01"),
            &snap.codes_for_part("P-01")
        ));
    }

    #[test]
    fn copy_on_write_builder_leaves_source_untouched() {
        let snap = trained_snapshot();
        let mut next = SnapshotBuilder::from_snapshot(&snap);
        assert_eq!(next.epoch(), 1);
        next.train_instance(&mut cas("Sicherung geschmolzen"), "P-04", "E400")
            .unwrap();
        let next = next.seal();

        assert_eq!(next.kb().len(), 4);
        assert_eq!(&*next.codes_for_part("P-04"), &["E400"]);
        // the sealed source snapshot is unchanged
        assert_eq!(snap.kb().len(), 3);
        assert!(snap.codes_for_part("P-04").is_empty());
        assert_eq!(snap.epoch(), 0);

        // ids survive the thaw: the same query extracts the same set
        let mut q = cas("Kontakt defekt");
        let old = snap.process_and_extract(&mut q).unwrap();
        let mut q = cas("Kontakt defekt");
        let new = next.process_and_extract(&mut q).unwrap();
        assert_eq!(old, new);
    }

    #[test]
    fn builder_dedups_instances_and_declarations() {
        let mut b = SnapshotBuilder::new(pipeline(), FeatureModel::BagOfWords);
        assert!(b
            .train_instance(&mut cas("Kontakt defekt"), "P-01", "E100")
            .unwrap());
        assert!(!b
            .train_instance(&mut cas("Kontakt defekt"), "P-01", "E100")
            .unwrap());
        assert!(b.declare_code("P-01", "E900"));
        assert!(!b.declare_code("P-01", "E900"));
        assert_eq!(b.kb().len(), 1);
    }

    #[test]
    fn epoch_cell_swap_keeps_old_readers_consistent() {
        let cell = EpochCell::new(trained_snapshot());
        let reader = cell.load();
        assert_eq!(reader.epoch(), 0);

        let mut b = SnapshotBuilder::from_snapshot(&reader);
        b.train_instance(&mut cas("Sicherung geschmolzen"), "P-04", "E400")
            .unwrap();
        let old = cell.publish(b.seal());

        // the in-flight reader still sees epoch 0 with 3 nodes …
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.kb().len(), 3);
        assert!(Arc::ptr_eq(&reader, &old));
        // … while new loads observe the published epoch 1
        let fresh = cell.load();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.kb().len(), 4);
    }

    #[test]
    fn persistence_roundtrip_preserves_everything() {
        let snap = trained_snapshot();
        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();

        let loaded = KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.epoch(), 0);
        assert_eq!(loaded.model(), FeatureModel::BagOfWords);
        assert_eq!(loaded.kb().nodes(), snap.kb().nodes());
        assert_eq!(
            loaded.vocab().vocabulary_size(),
            snap.vocab().vocabulary_size()
        );
        assert_eq!(loaded.declared_codes(), snap.declared_codes());
        assert_eq!(&*loaded.codes_for_part("P-01"), &["E100", "E200", "E900"]);

        // vocabulary ids line up: same query text, same feature set
        let mut q = cas("Kabel durchgeschmort");
        let a = snap.process_and_extract(&mut q).unwrap();
        let mut q = cas("Kabel durchgeschmort");
        let b = loaded.process_and_extract(&mut q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn logged_persistence_ships_rows_through_the_wal() {
        let dir = std::env::temp_dir().join(format!("qatk_snap_logged_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("snap.qdb");
        let wal_path = dir.join("wal.log");

        let snap = trained_snapshot();
        {
            let (mut store, _) =
                LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
            // Saving before the tables exist is a typed error, not a panic.
            assert!(snap.save_to_logged(&mut store).is_err());
            assert!(KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap());
            // Second call is a no-op …
            assert!(!KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap());
            // … and the boot checkpoint bakes the (un-logged) DDL into the
            // snapshot file so WAL replay lands on existing tables.
            store.checkpoint().unwrap();
            snap.save_to_logged(&mut store).unwrap();
            // Re-saving the same epoch overwrites instead of duplicating.
            snap.save_to_logged(&mut store).unwrap();
            // Drop without checkpointing: every row must survive via the WAL.
        }

        let (store, report) =
            LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
        assert!(report.snapshot_loaded);
        assert!(report.records_replayed > 0, "rows must ride the WAL");
        let loaded = KnowledgeSnapshot::load_latest(store.db(), pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.epoch(), snap.epoch());
        assert_eq!(loaded.kb().nodes(), snap.kb().nodes());
        assert_eq!(loaded.declared_codes(), snap.declared_codes());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn logged_prune_removes_old_epochs_via_the_wal() {
        let dir = std::env::temp_dir().join(format!("qatk_snap_lprune_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("snap.qdb");
        let wal_path = dir.join("wal.log");

        let e0 = trained_snapshot();
        let mut b = SnapshotBuilder::from_snapshot(&e0);
        b.train_instance(&mut cas("Sicherung geschmolzen"), "P-04", "E400")
            .unwrap();
        let e1 = b.seal();

        {
            let (mut store, _) =
                LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
            KnowledgeSnapshot::ensure_replicated_tables(&mut store).unwrap();
            store.checkpoint().unwrap();
            e0.save_to_logged(&mut store).unwrap();
            e1.save_to_logged(&mut store).unwrap();
            let removed =
                KnowledgeSnapshot::prune_epochs_below_logged(&mut store, e1.epoch()).unwrap();
            assert!(removed > 0);
        }

        let (store, _) = LoggedDatabase::open(&snap_path, &wal_path, SyncPolicy::OsOnly).unwrap();
        assert_eq!(
            KnowledgeSnapshot::latest_epoch(store.db()).unwrap(),
            Some(e1.epoch())
        );
        // epoch 0 is gone after replaying the logged deletes
        assert!(KnowledgeSnapshot::load_epoch(store.db(), pipeline(), 0).is_err());
        let loaded = KnowledgeSnapshot::load_latest(store.db(), pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.kb().len(), 4);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_picks_newest_epoch() {
        let snap0 = trained_snapshot();
        let mut db = Database::new();
        snap0.save_to_db(&mut db).unwrap();

        let mut b = SnapshotBuilder::from_snapshot(&snap0);
        b.train_instance(&mut cas("Sicherung geschmolzen"), "P-04", "E400")
            .unwrap();
        let snap1 = b.seal();
        snap1.save_to_db(&mut db).unwrap();

        assert_eq!(KnowledgeSnapshot::latest_epoch(&db).unwrap(), Some(1));
        let loaded = KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.epoch(), 1);
        assert_eq!(loaded.kb().len(), 4);

        // epoch 0 is still loadable explicitly — versioned history
        let old = KnowledgeSnapshot::load_epoch(&db, pipeline(), 0).unwrap();
        assert_eq!(old.kb().len(), 3);
    }

    #[test]
    fn resave_same_epoch_overwrites() {
        let snap = trained_snapshot();
        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();
        snap.save_to_db(&mut db).unwrap();
        assert_eq!(
            db.table(KnowledgeSnapshot::TABLE_NODES).unwrap().len(),
            snap.kb().len()
        );
        assert_eq!(db.table(KnowledgeSnapshot::TABLE_META).unwrap().len(), 1);
    }

    #[test]
    fn prune_drops_old_epochs_only() {
        let snap0 = trained_snapshot();
        let mut db = Database::new();
        snap0.save_to_db(&mut db).unwrap();
        let mut b = SnapshotBuilder::from_snapshot(&snap0);
        b.train_instance(&mut cas("Sicherung geschmolzen"), "P-04", "E400")
            .unwrap();
        b.seal().save_to_db(&mut db).unwrap();

        let removed = KnowledgeSnapshot::prune_epochs_below(&mut db, 1).unwrap();
        assert!(removed > 0);
        assert_eq!(KnowledgeSnapshot::latest_epoch(&db).unwrap(), Some(1));
        assert!(KnowledgeSnapshot::load_epoch(&db, pipeline(), 0).is_err());
        assert_eq!(
            KnowledgeSnapshot::load_latest(&db, pipeline())
                .unwrap()
                .unwrap()
                .kb()
                .len(),
            4
        );
    }

    #[test]
    fn load_latest_on_empty_db_is_none() {
        let db = Database::new();
        assert!(KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .is_none());
    }

    #[test]
    fn ranker_config_round_trips_through_persistence() {
        use crate::zoo::Classifier;

        let mut b = SnapshotBuilder::new(pipeline(), FeatureModel::BagOfWords).with_ranker(
            RankerConfig::new(ClassifierFamily::Centroid, SimilarityMeasure::Overlap),
        );
        b.train_instance(&mut cas("Kontakt defekt"), "P-01", "E100")
            .unwrap();
        let snap = b.seal();
        assert_eq!(snap.ranker().family(), ClassifierFamily::Centroid);
        assert_eq!(snap.ranker_config().measure, SimilarityMeasure::Overlap);

        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();
        let loaded = KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.ranker_config(), snap.ranker_config());
        assert_eq!(loaded.ranker().family(), ClassifierFamily::Centroid);
        // copy-on-write carries the ranker choice into the next epoch
        let next = SnapshotBuilder::from_snapshot(&loaded).seal();
        assert_eq!(next.ranker_config(), snap.ranker_config());
    }

    /// Rewrite the meta table in the pre-zoo four-column layout so tests can
    /// simulate a database written before classifier/measure persistence.
    fn downgrade_meta_table(db: &mut Database, epoch: i64, model: &str) {
        db.drop_table(KnowledgeSnapshot::TABLE_META).unwrap();
        let schema = SchemaBuilder::new()
            .pk("epoch", DataType::Int)
            .col("model", DataType::Text)
            .col("nodes", DataType::Int)
            .col("vocab", DataType::Int)
            .build()
            .unwrap();
        db.create_table(KnowledgeSnapshot::TABLE_META, schema)
            .unwrap();
        db.insert(
            KnowledgeSnapshot::TABLE_META,
            row![epoch, model, 3i64, 6i64],
        )
        .unwrap();
    }

    #[test]
    fn legacy_four_column_meta_loads_defaults_and_migrates_on_save() {
        let snap = trained_snapshot();
        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();
        downgrade_meta_table(&mut db, 0, "bag-of-words");

        // a legacy database loads with the implicit pre-zoo knn+jaccard ranker
        let loaded = KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(loaded.ranker_config(), RankerConfig::default());
        assert_eq!(loaded.model(), FeatureModel::BagOfWords);

        // the next save migrates the meta table to the six-column schema,
        // preserving the legacy row under the default labels
        loaded.save_to_db(&mut db).unwrap();
        let cols = db
            .table(KnowledgeSnapshot::TABLE_META)
            .unwrap()
            .schema()
            .columns()
            .len();
        assert_eq!(cols, 6);
        let again = KnowledgeSnapshot::load_latest(&db, pipeline())
            .unwrap()
            .unwrap();
        assert_eq!(again.ranker_config(), RankerConfig::default());
    }

    #[test]
    fn unknown_persisted_model_label_is_structured_load_error() {
        let snap = trained_snapshot();
        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();
        downgrade_meta_table(&mut db, 0, "bag-of-wards");

        let err = KnowledgeSnapshot::load_latest(&db, pipeline()).unwrap_err();
        match err {
            StoreError::Corrupt(msg) => {
                assert!(
                    msg.contains("unknown feature model label `bag-of-wards`"),
                    "{msg}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_persisted_classifier_label_is_structured_load_error() {
        let snap = trained_snapshot();
        let mut db = Database::new();
        snap.save_to_db(&mut db).unwrap();
        // corrupt the classifier column of the persisted meta row
        let pk = db
            .table(KnowledgeSnapshot::TABLE_META)
            .unwrap()
            .scan()
            .next()
            .unwrap()
            .get(0)
            .cloned()
            .unwrap();
        db.delete(KnowledgeSnapshot::TABLE_META, &pk).unwrap();
        db.insert(
            KnowledgeSnapshot::TABLE_META,
            row![0i64, "bag-of-words", "perceptron", "jaccard", 3i64, 6i64],
        )
        .unwrap();

        let err = KnowledgeSnapshot::load_latest(&db, pipeline()).unwrap_err();
        match err {
            StoreError::Corrupt(msg) => {
                assert!(msg.contains("perceptron"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
