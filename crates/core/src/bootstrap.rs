//! Paired bootstrap significance testing.
//!
//! The paper compares variant accuracies without error bars; on a synthetic
//! corpus we can do better. Two variants evaluated on the *same* test
//! bundles yield paired per-item outcomes; the bootstrap resamples items to
//! estimate a confidence interval for the accuracy difference and a
//! two-sided p-value for "variant A differs from variant B".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a paired bootstrap comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// Observed accuracy difference (a − b).
    pub observed_diff: f64,
    /// Bootstrap 95 % confidence interval for the difference.
    pub ci_low: f64,
    pub ci_high: f64,
    /// Two-sided p-value for the null hypothesis "no difference".
    pub p_value: f64,
    /// Resamples drawn.
    pub iterations: usize,
}

impl BootstrapResult {
    /// Significant at the 5 % level?
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Paired bootstrap over per-item hit indicators (`true` = correct within
/// the k under study). Panics if the slices differ in length or are empty —
/// pairing is the whole point.
pub fn paired_bootstrap(
    hits_a: &[bool],
    hits_b: &[bool],
    iterations: usize,
    seed: u64,
) -> BootstrapResult {
    assert_eq!(
        hits_a.len(),
        hits_b.len(),
        "paired bootstrap needs aligned outcome vectors"
    );
    assert!(!hits_a.is_empty(), "no outcomes to resample");
    let n = hits_a.len();
    let observed = mean(hits_a) - mean(hits_b);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut diffs = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let mut a = 0usize;
        let mut b = 0usize;
        for _ in 0..n {
            let i = rng.random_range(0..n);
            a += usize::from(hits_a[i]);
            b += usize::from(hits_b[i]);
        }
        diffs.push((a as f64 - b as f64) / n as f64);
    }
    diffs.sort_by(f64::total_cmp);
    let lo_idx = ((iterations as f64) * 0.025) as usize;
    let hi_idx = (((iterations as f64) * 0.975) as usize).min(iterations - 1);

    // two-sided p-value: how often does the resampled difference, centered
    // on the null, reach the observed magnitude?
    let centered_extreme = diffs
        .iter()
        .filter(|&&d| (d - observed).abs() >= observed.abs())
        .count();
    let p_value = (centered_extreme as f64 + 1.0) / (iterations as f64 + 1.0);

    BootstrapResult {
        observed_diff: observed,
        ci_low: diffs[lo_idx],
        ci_high: diffs[hi_idx],
        p_value: p_value.min(1.0),
        iterations,
    }
}

/// Turn per-item ranks (as produced by
/// [`crate::pipeline::ExperimentResult::ranks`]) into hit indicators at `k`.
pub fn hits_at_k(ranks: &[(usize, Option<usize>)], k: usize) -> Vec<bool> {
    ranks
        .iter()
        .map(|(_, r)| r.is_some_and(|x| x < k))
        .collect()
}

fn mean(hits: &[bool]) -> f64 {
    hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_variants_are_not_significant() {
        let hits = vec![true, false, true, true, false, true, false, true];
        let r = paired_bootstrap(&hits, &hits, 500, 1);
        assert_eq!(r.observed_diff, 0.0);
        assert!(!r.significant(), "p = {}", r.p_value);
        assert!(r.ci_low <= 0.0 && 0.0 <= r.ci_high);
    }

    #[test]
    fn clear_difference_is_significant() {
        // A correct on 90 % of 200 items, B on 40 % — overwhelming
        let hits_a: Vec<bool> = (0..200).map(|i| i % 10 != 0).collect();
        let hits_b: Vec<bool> = (0..200).map(|i| i % 5 < 2).collect();
        let r = paired_bootstrap(&hits_a, &hits_b, 1000, 2);
        assert!(r.observed_diff > 0.4);
        assert!(r.significant(), "p = {}", r.p_value);
        assert!(r.ci_low > 0.0);
    }

    #[test]
    fn tiny_difference_on_small_sample_is_not() {
        let hits_a = vec![true, true, false, true, false];
        let hits_b = vec![true, false, true, true, false];
        let r = paired_bootstrap(&hits_a, &hits_b, 1000, 3);
        assert!(!r.significant(), "p = {}", r.p_value);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = vec![true, false, true, true];
        let b = vec![false, false, true, true];
        let r1 = paired_bootstrap(&a, &b, 300, 9);
        let r2 = paired_bootstrap(&a, &b, 300, 9);
        assert_eq!(r1, r2);
    }

    #[test]
    fn hits_at_k_thresholds() {
        let ranks = vec![(0, Some(0)), (1, Some(4)), (2, Some(10)), (3, None)];
        assert_eq!(hits_at_k(&ranks, 1), vec![true, false, false, false]);
        assert_eq!(hits_at_k(&ranks, 5), vec![true, true, false, false]);
        assert_eq!(hits_at_k(&ranks, 25), vec![true, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "aligned outcome")]
    fn mismatched_lengths_panic() {
        paired_bootstrap(&[true], &[true, false], 10, 0);
    }

    #[test]
    #[should_panic(expected = "no outcomes")]
    fn empty_panics() {
        paired_bootstrap(&[], &[], 10, 0);
    }
}
