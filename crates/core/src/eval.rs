//! Evaluation machinery: Accuracy@k, micro/macro-F1, and stratified k-fold
//! cross-validation.
//!
//! Paper §5.1: "we report accuracy defined as the percentage of test data
//! which include the correct error code in the error code list at
//! k <= 1, 5, 10, 15, 20 and 25" with "stratified 5-fold cross-validation on
//! the 6782 data bundles whose error code appears more than once" — per
//! class, 4/5 of the bundles train the knowledge base and 1/5 are tested.
//!
//! The [`F1Counter`] extends the harness beyond accuracy@k for the model
//! zoo: micro-F1 (instance-weighted, equals top-1 accuracy in this
//! single-label setting whenever every instance gets a prediction) and
//! macro-F1 (class-weighted, exposing performance on rare codes) from the
//! top-1 predictions, the way JaTeCS-style baseline comparisons report.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The paper's cut-off points.
pub const PAPER_KS: [usize; 6] = [1, 5, 10, 15, 20, 25];

/// Accumulates accuracy@k over a test run.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCounter {
    ks: Vec<usize>,
    hits: Vec<usize>,
    total: usize,
}

impl AccuracyCounter {
    pub fn new(ks: &[usize]) -> Self {
        AccuracyCounter {
            ks: ks.to_vec(),
            hits: vec![0; ks.len()],
            total: 0,
        }
    }

    /// Record one test bundle given the 0-based rank of the true code in
    /// the recommendation list (`None` = not present at all).
    pub fn record(&mut self, rank_of_truth: Option<usize>) {
        self.total += 1;
        if let Some(r) = rank_of_truth {
            for (i, &k) in self.ks.iter().enumerate() {
                if r < k {
                    self.hits[i] += 1;
                }
            }
        }
    }

    /// Merge another counter (e.g. across folds).
    pub fn merge(&mut self, other: &AccuracyCounter) {
        assert_eq!(self.ks, other.ks, "counters must share cut-offs");
        for (h, o) in self.hits.iter_mut().zip(&other.hits) {
            *h += o;
        }
        self.total += other.total;
    }

    /// Accuracy@k values aligned with the configured cut-offs.
    pub fn accuracies(&self) -> Vec<f64> {
        self.hits
            .iter()
            .map(|&h| {
                if self.total == 0 {
                    0.0
                } else {
                    h as f64 / self.total as f64
                }
            })
            .collect()
    }

    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    pub fn total(&self) -> usize {
        self.total
    }

    /// Accuracy at one specific k.
    pub fn at(&self, k: usize) -> Option<f64> {
        self.ks
            .iter()
            .position(|&x| x == k)
            .map(|i| self.accuracies()[i])
    }
}

/// Accumulates per-class true/false positives and false negatives from
/// top-1 predictions, yielding micro- and macro-averaged F1.
///
/// Single-label semantics: each recorded instance has one true class and at
/// most one predicted class. A `None` prediction (empty ranking) counts a
/// false negative for the truth and no false positive anywhere.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct F1Counter {
    /// class → (true positives, false positives, false negatives)
    per_class: HashMap<String, (usize, usize, usize)>,
}

impl F1Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one test instance: the true class and the classifier's top-1
    /// prediction (if any).
    pub fn record(&mut self, truth: &str, predicted: Option<&str>) {
        match predicted {
            Some(p) if p == truth => {
                self.per_class.entry(truth.to_owned()).or_default().0 += 1;
            }
            Some(p) => {
                self.per_class.entry(p.to_owned()).or_default().1 += 1;
                self.per_class.entry(truth.to_owned()).or_default().2 += 1;
            }
            None => {
                self.per_class.entry(truth.to_owned()).or_default().2 += 1;
            }
        }
    }

    /// Merge another counter (e.g. across folds).
    pub fn merge(&mut self, other: &F1Counter) {
        for (class, &(tp, fp, fne)) in &other.per_class {
            let slot = self.per_class.entry(class.clone()).or_default();
            slot.0 += tp;
            slot.1 += fp;
            slot.2 += fne;
        }
    }

    /// Instances recorded (every record is exactly one TP or one FN).
    pub fn total(&self) -> usize {
        self.per_class.values().map(|&(tp, _, fne)| tp + fne).sum()
    }

    /// Micro-averaged F1: pool TP/FP/FN over all classes, then F1.
    pub fn micro_f1(&self) -> f64 {
        let (tp, fp, fne) = self
            .per_class
            .values()
            .fold((0, 0, 0), |(a, b, c), &(tp, fp, fne)| {
                (a + tp, b + fp, c + fne)
            });
        f1(tp, fp, fne)
    }

    /// Macro-averaged F1: per-class F1, averaged with equal class weight.
    /// Classes that never appear as truth or prediction don't exist here;
    /// classes with zero TP score 0.
    pub fn macro_f1(&self) -> f64 {
        if self.per_class.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .per_class
            .values()
            .map(|&(tp, fp, fne)| f1(tp, fp, fne))
            .sum();
        sum / self.per_class.len() as f64
    }

    /// Number of distinct classes seen (as truth or prediction).
    pub fn classes(&self) -> usize {
        self.per_class.len()
    }
}

/// F1 from raw counts; 0 when the denominator vanishes.
fn f1(tp: usize, fp: usize, fne: usize) -> f64 {
    let denom = 2 * tp + fp + fne;
    if denom == 0 {
        0.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

/// Stratified fold assignment: items of each class are shuffled and dealt
/// round-robin over the folds, so every fold sees ~1/n of every class.
///
/// Returns `fold_of[item] ∈ 0..folds`. Classes with fewer items than folds
/// simply appear in fewer folds (their training share stays maximal).
pub fn stratified_folds<C: std::hash::Hash + Eq>(
    classes: &[C],
    folds: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(folds >= 2, "cross-validation needs at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: HashMap<&C, Vec<usize>> = HashMap::new();
    for (i, c) in classes.iter().enumerate() {
        by_class.entry(c).or_default().push(i);
    }
    // deterministic iteration: sort class groups by their first item index
    let mut groups: Vec<Vec<usize>> = by_class.into_values().collect();
    groups.sort_by_key(|g| g[0]);

    let mut fold_of = vec![0usize; classes.len()];
    for mut group in groups {
        group.shuffle(&mut rng);
        // random phase so that fold 0 is not systematically favoured for
        // classes smaller than the fold count
        let phase = rng.random_range(0..folds);
        for (j, item) in group.into_iter().enumerate() {
            fold_of[item] = (phase + j) % folds;
        }
    }
    fold_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn accuracy_at_k_counts_prefix_hits() {
        let mut c = AccuracyCounter::new(&PAPER_KS);
        c.record(Some(0)); // hit at every k
        c.record(Some(4)); // hit at k>=5
        c.record(Some(24)); // hit only at k=25
        c.record(None); // miss
        let acc = c.accuracies();
        assert_eq!(c.total(), 4);
        assert!((acc[0] - 0.25).abs() < 1e-12); // @1
        assert!((acc[1] - 0.50).abs() < 1e-12); // @5
        assert!((acc[5] - 0.75).abs() < 1e-12); // @25
        assert_eq!(c.at(1), Some(0.25));
        assert_eq!(c.at(25), Some(0.75));
        assert_eq!(c.at(7), None);
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = AccuracyCounter::new(&PAPER_KS);
        assert!(c.accuracies().iter().all(|&a| a == 0.0));
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AccuracyCounter::new(&[1, 5]);
        a.record(Some(0));
        let mut b = AccuracyCounter::new(&[1, 5]);
        b.record(None);
        b.record(Some(2));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        let acc = a.accuracies();
        assert!((acc[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share cut-offs")]
    fn merge_requires_same_ks() {
        let mut a = AccuracyCounter::new(&[1]);
        a.merge(&AccuracyCounter::new(&[2]));
    }

    #[test]
    fn f1_reference_values() {
        let mut c = F1Counter::new();
        // class A: 2 TP; class B: 1 TP, 1 FN (predicted A → A gets the FP)
        c.record("A", Some("A"));
        c.record("A", Some("A"));
        c.record("B", Some("B"));
        c.record("B", Some("A"));
        assert_eq!(c.total(), 4);
        // pooled: TP=3 FP=1 FN=1 → micro-F1 = 6/8
        assert!((c.micro_f1() - 0.75).abs() < 1e-12);
        // A: tp=2 fp=1 fn=0 → 4/5; B: tp=1 fp=0 fn=1 → 2/3
        assert!((c.macro_f1() - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(c.classes(), 2);
    }

    #[test]
    fn micro_f1_equals_top1_accuracy_when_always_predicting() {
        // single-label + a prediction for every instance: pooled FP == FN,
        // so micro-F1 collapses to accuracy
        let mut c = F1Counter::new();
        let mut acc = AccuracyCounter::new(&[1]);
        for (truth, pred, rank) in [
            ("A", "A", Some(0)),
            ("B", "A", None),
            ("C", "C", Some(0)),
            ("A", "C", None),
        ] {
            c.record(truth, Some(pred));
            acc.record(rank);
        }
        assert!((c.micro_f1() - acc.at(1).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn none_prediction_is_a_false_negative_only() {
        let mut c = F1Counter::new();
        c.record("A", None);
        assert_eq!(c.total(), 1);
        assert_eq!(c.micro_f1(), 0.0);
        assert_eq!(c.macro_f1(), 0.0);
        // micro-F1 < accuracy-style 1.0 even though no wrong class was named
        c.record("A", Some("A"));
        assert!((c.micro_f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_merge_matches_single_counter() {
        let mut all = F1Counter::new();
        let mut a = F1Counter::new();
        let mut b = F1Counter::new();
        let events = [
            ("X", Some("X")),
            ("Y", Some("X")),
            ("Y", None),
            ("Z", Some("Z")),
        ];
        for (i, (t, p)) in events.iter().enumerate() {
            all.record(t, *p);
            if i % 2 == 0 {
                a.record(t, *p);
            } else {
                b.record(t, *p);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.micro_f1(), all.micro_f1());
    }

    #[test]
    fn empty_f1_counter_is_zero() {
        let c = F1Counter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.micro_f1(), 0.0);
        assert_eq!(c.macro_f1(), 0.0);
    }

    #[test]
    fn stratification_balances_classes() {
        // 10 classes × 10 items
        let classes: Vec<usize> = (0..100).map(|i| i % 10).collect();
        let folds = stratified_folds(&classes, 5, 42);
        assert_eq!(folds.len(), 100);
        // each class contributes exactly 2 items to every fold
        for class in 0..10 {
            let mut per_fold = [0usize; 5];
            for (i, &f) in folds.iter().enumerate() {
                if classes[i] == class {
                    per_fold[f] += 1;
                }
            }
            assert_eq!(per_fold, [2, 2, 2, 2, 2], "class {class}: {per_fold:?}");
        }
    }

    #[test]
    fn pairs_split_across_folds() {
        // classes with exactly 2 members land in 2 different folds, so each
        // member is tested once with the other in training
        let classes: Vec<usize> = (0..40).map(|i| i / 2).collect();
        let folds = stratified_folds(&classes, 5, 7);
        for class in 0..20 {
            let fs: Vec<usize> = (0..40)
                .filter(|&i| classes[i] == class)
                .map(|i| folds[i])
                .collect();
            assert_ne!(fs[0], fs[1], "class {class} collapsed into one fold");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let classes: Vec<usize> = (0..50).map(|i| i % 7).collect();
        assert_eq!(
            stratified_folds(&classes, 5, 1),
            stratified_folds(&classes, 5, 1)
        );
        assert_ne!(
            stratified_folds(&classes, 5, 1),
            stratified_folds(&classes, 5, 2)
        );
    }

    #[test]
    fn phases_spread_small_classes() {
        // many 2-member classes: with random phases, all folds receive items
        let classes: Vec<usize> = (0..200).map(|i| i / 2).collect();
        let folds = stratified_folds(&classes, 5, 3);
        let mut per_fold = [0usize; 5];
        for &f in &folds {
            per_fold[f] += 1;
        }
        for (f, &n) in per_fold.iter().enumerate() {
            assert!(n > 20, "fold {f} starved: {per_fold:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        stratified_folds(&[1, 2, 3], 1, 0);
    }

    // Property-style check without proptest dependency weight here: random
    // class vectors keep the invariant "fold ids in range".
    #[test]
    fn fold_ids_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let n = rng.random_range(1..200);
            let classes: Vec<u32> = (0..n).map(|_| rng.random_range(0..30)).collect();
            let folds = stratified_folds(&classes, 5, rng.random());
            assert!(folds.iter().all(|&f| f < 5));
        }
    }
}
