//! The ranked-list kNN classifier.
//!
//! Paper §4.3: instead of majority vote, "we output a list of all potential
//! error keys ranked by the distance of the knowledge base instances to the
//! data bundle, then cut off the list at k for initial presentation ... We
//! retrieve the error codes of the 25 best-scored candidate nodes. For each
//! of these error codes, we assign an error code with associated score."
//! This sidesteps standard kNN's sensitivity to local data structures
//! (Fig. 6) because no single k decides the answer.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::features::FeatureSet;
use crate::knowledge::{KnowledgeBase, ScoreScratch};
use crate::segment::SealedIndex;
use crate::similarity::SimilarityMeasure;

/// One recommendation: an error code with its best similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCode {
    pub code: String,
    pub score: f64,
}

/// One query of a [`RankedKnn::classify_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    pub part_id: &'a str,
    pub features: &'a FeatureSet,
}

/// Entry of the bounded top-k heap: a scored node. Total order = "goodness"
/// under the naive ranking's sort key (score descending, node index
/// ascending on ties), so `a > b` ⇔ the naive sort would place `a` first.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    idx: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Ranked-list kNN over a knowledge base.
#[derive(Debug, Clone, Copy)]
pub struct RankedKnn {
    /// How many best-scored *nodes* contribute codes (paper: 25).
    pub top_nodes: usize,
    pub measure: SimilarityMeasure,
}

impl Default for RankedKnn {
    fn default() -> Self {
        RankedKnn {
            top_nodes: 25,
            measure: SimilarityMeasure::Jaccard,
        }
    }
}

impl RankedKnn {
    pub fn new(measure: SimilarityMeasure) -> Self {
        RankedKnn {
            top_nodes: 25,
            measure,
        }
    }

    /// Produce the ranked error-code list for one data bundle.
    ///
    /// Steps (paper Fig. 5 + §4.3): candidate selection → pairwise scoring →
    /// take the 25 best nodes → emit their codes, deduplicated (best score
    /// wins), in descending score order. Ties break on code text so results
    /// are deterministic.
    ///
    /// Implementation: the posting-list score-accumulation kernel — one walk
    /// of the inverted index accumulates |A ∩ B| per candidate node, scores
    /// come from the counts ([`SimilarityMeasure::score_from_counts`]), and
    /// a bounded binary heap selects the `top_nodes` best without sorting
    /// all candidates. Produces rankings identical to [`RankedKnn::rank_naive`]
    /// (asserted exhaustively by the `ranking_equivalence` differential
    /// suite). Scratch state lives in a thread-local, so `rank` is `&self`,
    /// allocation-free after each thread's first query, and safe to call
    /// from any number of threads sharing one knowledge base. Batch workers
    /// that want explicit control pass their own scratch to
    /// [`RankedKnn::rank_with`] or go through [`RankedKnn::classify_batch`].
    pub fn rank(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        thread_local! {
            static RANK_SCRATCH: std::cell::RefCell<ScoreScratch> =
                std::cell::RefCell::new(ScoreScratch::new());
        }
        RANK_SCRATCH.with(|s| self.rank_with(kb, part_id, features, &mut s.borrow_mut()))
    }

    /// [`RankedKnn::rank`] with caller-provided scratch state, for hot loops
    /// that classify many bundles against the same knowledge base.
    pub fn rank_with(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) -> Vec<ScoredCode> {
        let m = crate::metrics::metrics();
        m.rank_queries_total.inc();
        // per-query clock reads would dominate the ~µs kernel, so latency
        // and candidate-count distributions are sampled (counters stay exact)
        let sampled = m.rank_sample.hit();
        let _span = sampled.then(|| qatk_obs::Timer::start(m.rank_latency_ns));
        kb.accumulate_counts(part_id, features, scratch);
        if sampled {
            m.rank_candidates.record(scratch.touched().len() as u64);
        }
        let top = if scratch.touched().is_empty() {
            m.classifier_skipped_total.inc();
            if kb.has_part(part_id) {
                // known part, no shared feature → no candidates at all
                Vec::new()
            } else {
                // unknown part with zero overlap anywhere: the paper's
                // fallback selects the entire knowledge base; every score is
                // 0, so the naive (score desc, index asc) order is simply
                // the first `top_nodes` nodes
                (0..kb.len().min(self.top_nodes))
                    .map(|i| (0.0f64, i))
                    .collect()
            }
        } else {
            self.select_top_nodes(features.len(), scratch, |n| {
                kb.nodes()[n as usize].features.len()
            })
        };
        Self::emit_codes(kb, top)
    }

    /// [`RankedKnn::rank`] over a [`SealedIndex`] segment: identical
    /// semantics and bit-identical results, but the score accumulation walks
    /// the delta+varint-compressed posting arena instead of the live
    /// `HashMap` inverted index. The knowledge base supplies the strings
    /// (part lookup, code emission); node indexes agree between the two
    /// structures by construction.
    pub fn rank_sealed(
        &self,
        idx: &SealedIndex,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        thread_local! {
            static SEALED_SCRATCH: std::cell::RefCell<ScoreScratch> =
                std::cell::RefCell::new(ScoreScratch::new());
        }
        SEALED_SCRATCH
            .with(|s| self.rank_sealed_with(idx, kb, part_id, features, &mut s.borrow_mut()))
    }

    /// [`RankedKnn::rank_sealed`] with caller-provided scratch state.
    pub fn rank_sealed_with(
        &self,
        idx: &SealedIndex,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) -> Vec<ScoredCode> {
        let m = crate::metrics::metrics();
        m.rank_queries_total.inc();
        let sampled = m.rank_sample.hit();
        let _span = sampled.then(|| qatk_obs::Timer::start(m.rank_latency_ns));
        idx.accumulate_into(kb.part_index(part_id), features, scratch);
        if sampled {
            m.rank_candidates.record(scratch.touched().len() as u64);
        }
        let top = if scratch.touched().is_empty() {
            m.classifier_skipped_total.inc();
            if kb.has_part(part_id) {
                Vec::new()
            } else {
                // unknown-part whole-KB fallback, same as `rank_with`
                (0..kb.len().min(self.top_nodes))
                    .map(|i| (0.0f64, i))
                    .collect()
            }
        } else {
            self.select_top_nodes(features.len(), scratch, |n| idx.node_len(n))
        };
        Self::emit_codes(kb, top)
    }

    /// The LSH-pruned ranking path: instead of walking every posting list of
    /// every query feature, ask the sealed segment's minhash/LSH prefilter
    /// for candidate nodes and score only those — exactly (each candidate's
    /// true |A ∩ B| via a feature-set merge), so a candidate's score and
    /// tie-break are identical to the exact path's. The approximation is
    /// purely in *which* nodes are considered: a true neighbour the LSH
    /// misses cannot be ranked. `tests/lsh_recall.rs` holds this path to
    /// ≥ 95 % top-25 recall against [`RankedKnn::rank_sealed`] as the
    /// differential oracle.
    ///
    /// Unknown parts and empty feature sets delegate to the exact path: the
    /// paper's whole-knowledge-base fallback has nothing to prune, and the
    /// exact kernel is already cheap in those cases.
    pub fn rank_sealed_pruned(
        &self,
        idx: &SealedIndex,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        thread_local! {
            static PRUNED_SCRATCH: std::cell::RefCell<ScoreScratch> =
                std::cell::RefCell::new(ScoreScratch::new());
        }
        PRUNED_SCRATCH
            .with(|s| self.rank_sealed_pruned_with(idx, kb, part_id, features, &mut s.borrow_mut()))
    }

    /// [`RankedKnn::rank_sealed_pruned`] with caller-provided scratch state.
    pub fn rank_sealed_pruned_with(
        &self,
        idx: &SealedIndex,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) -> Vec<ScoredCode> {
        let Some(part) = kb.part_index(part_id) else {
            return self.rank_sealed_with(idx, kb, part_id, features, scratch);
        };
        if features.is_empty() {
            return self.rank_sealed_with(idx, kb, part_id, features, scratch);
        }
        let m = crate::metrics::metrics();
        m.rank_queries_total.inc();
        m.rank_pruned_total.inc();
        let sampled = m.rank_sample.hit();
        let _span = sampled.then(|| qatk_obs::Timer::start(m.rank_latency_ns));
        idx.lsh_candidates_into(Some(part), features, scratch);
        if sampled {
            m.lsh_candidates.record(scratch.touched().len() as u64);
        }
        if scratch.touched().is_empty() {
            m.classifier_skipped_total.inc();
            return Vec::new();
        }
        // exact re-scoring of the pruned candidates — scratch counts are
        // band collisions here, NOT intersections, so the true |A ∩ B| comes
        // from a feature-set merge per candidate
        let k = self.top_nodes;
        if k == 0 {
            return Vec::new();
        }
        let a_len = features.len();
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapEntry>> = BinaryHeap::with_capacity(k + 1);
        for &n in scratch.touched() {
            let node = &kb.nodes()[n as usize];
            let inter = features.intersection_size(&node.features);
            if inter == 0 {
                // an LSH false positive with zero overlap could never be a
                // candidate on the exact path; keep the score sets aligned
                continue;
            }
            let score = self
                .measure
                .score_from_counts(inter, a_len, node.features.len());
            Self::heap_offer(&mut heap, k, HeapEntry { score, idx: n });
        }
        let top = Self::heap_into_sorted(heap);
        Self::emit_codes(kb, top)
    }

    /// Bounded-heap top-k over the accumulated counts: keeps the `top_nodes`
    /// best (score desc, node index asc) without sorting all candidates.
    /// `b_len` supplies each node's feature-set cardinality — the only
    /// per-node fact the scorer needs, so both the live knowledge base and
    /// the sealed segment can drive it.
    fn select_top_nodes(
        &self,
        a_len: usize,
        scratch: &ScoreScratch,
        b_len: impl Fn(u32) -> usize,
    ) -> Vec<(f64, usize)> {
        let k = self.top_nodes;
        if k == 0 {
            return Vec::new();
        }
        // min-heap of the k best so far: the root is the worst kept entry
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapEntry>> = BinaryHeap::with_capacity(k + 1);
        for &n in scratch.touched() {
            let score = self
                .measure
                .score_from_counts(scratch.count(n) as usize, a_len, b_len(n));
            Self::heap_offer(&mut heap, k, HeapEntry { score, idx: n });
        }
        Self::heap_into_sorted(heap)
    }

    /// Offer one entry to the bounded min-heap of the `k` best.
    #[inline]
    fn heap_offer(heap: &mut BinaryHeap<std::cmp::Reverse<HeapEntry>>, k: usize, entry: HeapEntry) {
        if heap.len() < k {
            heap.push(std::cmp::Reverse(entry));
        } else if entry > heap.peek().expect("heap non-empty").0 {
            heap.pop();
            heap.push(std::cmp::Reverse(entry));
        }
    }

    /// Drain the bounded heap into (score desc, node index asc) order.
    fn heap_into_sorted(heap: BinaryHeap<std::cmp::Reverse<HeapEntry>>) -> Vec<(f64, usize)> {
        let mut top: Vec<(f64, usize)> = heap
            .into_iter()
            .map(|std::cmp::Reverse(e)| (e.score, e.idx as usize))
            .collect();
        top.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        top
    }

    /// Shared ranking tail: map scored nodes (already in score-desc,
    /// index-asc order) to codes, deduplicate keeping the best score per
    /// code, and order the final list (score desc, code-text tie-break).
    fn emit_codes(kb: &KnowledgeBase, scored: Vec<(f64, usize)>) -> Vec<ScoredCode> {
        let mut out: Vec<ScoredCode> = Vec::with_capacity(scored.len());
        for (score, idx) in scored {
            let code = &kb.nodes()[idx].error_code;
            match out.iter_mut().find(|s| &s.code == code) {
                Some(existing) => {
                    if score > existing.score {
                        existing.score = score;
                    }
                }
                None => out.push(ScoredCode {
                    code: code.clone(),
                    score,
                }),
            }
        }
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.code.cmp(&b.code)));
        out
    }

    /// The original per-candidate set-intersection path: candidate selection
    /// via [`KnowledgeBase::candidates`], then a full re-intersection of
    /// every candidate's feature set, a full sort, and truncation. Kept as
    /// the differential oracle for [`RankedKnn::rank`] and as the baseline
    /// side of the `classify_bundle` / `candidate` benches — not used on any
    /// production path.
    pub fn rank_naive(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        let candidates = kb.candidates(part_id, features);
        let mut scored: Vec<(f64, usize)> = candidates
            .into_iter()
            .map(|i| (self.measure.score(features, &kb.nodes()[i].features), i))
            .collect();
        // descending score; ties by node order for determinism
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(self.top_nodes);

        let mut out: Vec<ScoredCode> = Vec::with_capacity(scored.len());
        for (score, idx) in scored {
            let code = &kb.nodes()[idx].error_code;
            match out.iter_mut().find(|s| &s.code == code) {
                Some(existing) => {
                    if score > existing.score {
                        existing.score = score;
                    }
                }
                None => out.push(ScoredCode {
                    code: code.clone(),
                    score,
                }),
            }
        }
        // dedup can disturb order only if a later duplicate improved a score;
        // re-sort for the final ranking
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.code.cmp(&b.code)));
        out
    }

    /// Classify a batch of bundles in parallel: queries fan out across
    /// scoped worker threads, each with its own [`ScoreScratch`], against
    /// the shared (read-only) knowledge base. Output order matches query
    /// order and every ranking is identical to a sequential
    /// [`RankedKnn::rank`] call, whatever the thread count.
    pub fn classify_batch(
        &self,
        kb: &KnowledgeBase,
        queries: &[BatchQuery<'_>],
    ) -> Vec<Vec<ScoredCode>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.classify_batch_with_threads(kb, queries, threads)
    }

    /// [`RankedKnn::classify_batch`] with an explicit worker-thread cap.
    pub fn classify_batch_with_threads(
        &self,
        kb: &KnowledgeBase,
        queries: &[BatchQuery<'_>],
        threads: usize,
    ) -> Vec<Vec<ScoredCode>> {
        let m = crate::metrics::metrics();
        let _span = qatk_obs::Timer::start(m.batch_wall_ns);
        m.batch_total.inc();
        m.batch_size.record(queries.len() as u64);
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            m.batch_workers.set(1);
            let _busy = qatk_obs::Timer::start(m.batch_worker_busy_ns);
            let mut scratch = ScoreScratch::new();
            return queries
                .iter()
                .map(|q| self.rank_with(kb, q.part_id, q.features, &mut scratch))
                .collect();
        }
        let mut out: Vec<Vec<ScoredCode>> = Vec::new();
        out.resize_with(queries.len(), Vec::new);
        let chunk = queries.len().div_ceil(threads);
        m.batch_workers.set(queries.len().div_ceil(chunk) as i64);
        std::thread::scope(|s| {
            for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    let _busy = qatk_obs::Timer::start(m.batch_worker_busy_ns);
                    let mut scratch = ScoreScratch::new();
                    for (q, slot) in qchunk.iter().zip(ochunk.iter_mut()) {
                        *slot = self.rank_with(kb, q.part_id, q.features, &mut scratch);
                    }
                });
            }
        });
        out
    }

    /// Rank position (0-based) of the true code in the recommendation list,
    /// if present.
    pub fn rank_of(&self, ranked: &[ScoredCode], truth: &str) -> Option<usize> {
        ranked.iter().position(|s| s.code == truth)
    }
}

/// The *standard* unweighted instance-based kNN of paper Fig. 6 — majority
/// vote among the k nearest knowledge nodes. The paper implements the
/// ranked-list variant instead because majority vote "becomes evident in
/// Fig. 6 — the sensitivity to local data structures. For k = 6, the class
/// assigned by majority vote is different from that for k = 15." This
/// implementation exists to make that comparison executable (see the
/// `ablations` harness).
#[derive(Debug, Clone, Copy)]
pub struct MajorityVoteKnn {
    /// Number of nearest neighbours that vote.
    pub k: usize,
    pub measure: SimilarityMeasure,
    /// Weight votes by similarity ("this majority vote can also be weighted
    /// by the individual nearness of neighbors").
    pub weighted: bool,
}

impl MajorityVoteKnn {
    pub fn new(k: usize, measure: SimilarityMeasure) -> Self {
        MajorityVoteKnn {
            k,
            measure,
            weighted: false,
        }
    }

    /// Classify one bundle: the single winning error code, or `None` when
    /// there are no candidates at all.
    pub fn classify(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Option<String> {
        let m = crate::metrics::metrics();
        m.rank_queries_total.inc();
        let sampled = m.rank_sample.hit();
        let _span = sampled.then(|| qatk_obs::Timer::start(m.rank_latency_ns));
        let candidates = kb.candidates(part_id, features);
        if sampled {
            m.rank_candidates.record(candidates.len() as u64);
        }
        if candidates.is_empty() {
            // empty feature set / no shared feature: the vote never happens
            m.classifier_skipped_total.inc();
            return None;
        }
        let mut scored: Vec<(f64, usize)> = candidates
            .into_iter()
            .map(|i| (self.measure.score(features, &kb.nodes()[i].features), i))
            .collect();
        // Descending score with *code-text* tie-break (then index for full
        // determinism). Breaking boundary ties on the node index alone made
        // the k-truncation — and therefore the vote, and the winner — depend
        // on knowledge-base insertion order; with the code in the key, two
        // KBs holding the same configurations always elect the same code.
        scored.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| kb.nodes()[a.1].error_code.cmp(&kb.nodes()[b.1].error_code))
                .then(a.1.cmp(&b.1))
        });
        scored.truncate(self.k);

        let mut votes: Vec<(String, f64)> = Vec::new();
        for (score, idx) in scored {
            let code = &kb.nodes()[idx].error_code;
            let weight = if self.weighted { score } else { 1.0 };
            match votes.iter_mut().find(|(c, _)| c == code) {
                Some((_, w)) => *w += weight,
                None => votes.push((code.clone(), weight)),
            }
        }
        // highest vote weight wins; equal weights break on code text
        votes
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(code, _)| code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E100", fs(&[1, 2, 3]));
        kb.insert("P-01", "E200", fs(&[1, 2, 3, 4, 5, 6]));
        kb.insert("P-01", "E300", fs(&[7, 8]));
        kb.insert("P-01", "E100", fs(&[2, 3]));
        kb.insert("P-02", "E900", fs(&[1, 2, 3]));
        kb
    }

    #[test]
    fn ranks_by_similarity() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        // E100 node [1,2,3] scores 1.0; E200 scores 3/6; E300 shares nothing
        assert_eq!(ranked[0].code, "E100");
        assert!((ranked[0].score - 1.0).abs() < 1e-12);
        assert_eq!(ranked[1].code, "E200");
        assert!((ranked[1].score - 0.5).abs() < 1e-12);
        assert_eq!(ranked.len(), 2); // E300 never becomes a candidate
    }

    #[test]
    fn codes_deduplicated_with_best_score() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[2, 3]));
        // Two E100 nodes match; the exact [2,3] one scores 1.0
        let e100 = ranked.iter().find(|s| s.code == "E100").unwrap();
        assert!((e100.score - 1.0).abs() < 1e-12);
        assert_eq!(ranked.iter().filter(|s| s.code == "E100").count(), 1);
    }

    #[test]
    fn respects_part_filter() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        assert!(ranked.iter().all(|s| s.code != "E900"));
    }

    #[test]
    fn top_nodes_truncation() {
        let mut kb = KnowledgeBase::new();
        for i in 0..50 {
            kb.insert("P-01", format!("E{i:03}"), fs(&[1, 100 + i]));
        }
        let knn = RankedKnn {
            top_nodes: 25,
            measure: SimilarityMeasure::Jaccard,
        };
        let ranked = knn.rank(&kb, "P-01", &fs(&[1]));
        assert_eq!(ranked.len(), 25);
    }

    #[test]
    fn truncation_happens_before_dedup() {
        // Paper order of operations: cut the *node* list at top_nodes first,
        // then collapse codes. With top_nodes = 2 the two best nodes both
        // carry EAAA, so EBBB (third-best node) must NOT appear — it would
        // if dedup ran before the cut.
        let mut kb = KnowledgeBase::new();
        kb.insert("P", "EAAA", fs(&[1, 2, 3]));
        kb.insert("P", "EAAA", fs(&[1, 2, 4]));
        kb.insert("P", "EBBB", fs(&[1, 9]));
        let knn = RankedKnn {
            top_nodes: 2,
            measure: SimilarityMeasure::Jaccard,
        };
        let ranked = knn.rank(&kb, "P", &fs(&[1, 2, 3]));
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].code, "EAAA");
        // the surviving code carries the best of its nodes' scores
        assert!((ranked[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_sorted_descending_with_code_tiebreak() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P", "ED", fs(&[1, 2, 3, 4])); // 0.25 on q
        kb.insert("P", "EC", fs(&[1, 5])); // 0.5
        kb.insert("P", "EA", fs(&[1, 6])); // 0.5 — ties with EC
        kb.insert("P", "EB", fs(&[1])); // 1.0
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb, "P", &fs(&[1]));
        let codes: Vec<&str> = ranked.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(codes, ["EB", "EA", "EC", "ED"]);
        for w in ranked.windows(2) {
            assert!(w[0].score > w[1].score || (w[0].score == w[1].score && w[0].code < w[1].code));
        }
    }

    #[test]
    fn empty_feature_query_yields_empty_ranking_for_known_part() {
        let knn = RankedKnn::default();
        let ranked = knn.rank(&kb(), "P-01", &FeatureSet::default());
        assert!(ranked.is_empty());
        // … but an unknown part still gets the whole-KB fallback, scored 0
        let fallback = knn.rank(&kb(), "P-??", &FeatureSet::default());
        assert!(!fallback.is_empty());
        assert!(fallback.iter().all(|s| s.score == 0.0));
    }

    #[test]
    fn batch_results_independent_of_thread_count() {
        let kb = kb();
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let queries_owned = [
            ("P-01", fs(&[1, 2, 3])),
            ("P-01", fs(&[2, 3])),
            ("P-02", fs(&[1, 2, 3])),
            ("P-??", fs(&[777])),
            ("P-01", fs(&[])),
        ];
        let queries: Vec<BatchQuery<'_>> = queries_owned
            .iter()
            .map(|(p, f)| BatchQuery {
                part_id: p,
                features: f,
            })
            .collect();
        let expected: Vec<Vec<ScoredCode>> = queries
            .iter()
            .map(|q| knn.rank(&kb, q.part_id, q.features))
            .collect();
        for threads in [1, 2, 3, 8] {
            let got = knn.classify_batch_with_threads(&kb, &queries, threads);
            assert_eq!(got, expected, "divergence at {threads} threads");
        }
        assert_eq!(knn.classify_batch(&kb, &queries), expected);
        assert!(knn.classify_batch(&kb, &[]).is_empty());
    }

    #[test]
    fn overlap_vs_jaccard_ordering() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "SMALL", fs(&[1, 2]));
        kb.insert("P-01", "BIG", fs(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let q = fs(&[1, 2, 9]);
        // Jaccard penalizes the big set less than overlap rewards small sets
        let j = RankedKnn::new(SimilarityMeasure::Jaccard).rank(&kb, "P-01", &q);
        assert_eq!(j[0].code, "SMALL"); // 2/3 vs 2/9
        let o = RankedKnn::new(SimilarityMeasure::Overlap).rank(&kb, "P-01", &q);
        assert_eq!(o[0].code, "SMALL"); // 2/2 vs 2/3
        assert!((o[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tiebreaks() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "EB", fs(&[1]));
        kb.insert("P-01", "EA", fs(&[1]));
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb, "P-01", &fs(&[1]));
        // equal scores → code-lexicographic order
        assert_eq!(ranked[0].code, "EA");
        assert_eq!(ranked[1].code, "EB");
    }

    #[test]
    fn rank_of_helper() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        assert_eq!(knn.rank_of(&ranked, "E100"), Some(0));
        assert_eq!(knn.rank_of(&ranked, "E200"), Some(1));
        assert_eq!(knn.rank_of(&ranked, "E999"), None);
    }

    #[test]
    fn majority_vote_is_k_sensitive() {
        // Reconstructs the paper's Fig. 6 situation: the nearest few
        // neighbours favour one class, the wider neighbourhood another —
        // majority vote flips with k while the ranked list stays stable.
        let mut kb = KnowledgeBase::new();
        // 2 very close nodes of class A
        kb.insert("P", "A", fs(&[1, 2, 3, 4]));
        kb.insert("P", "A", fs(&[1, 2, 3, 5]));
        // 4 farther nodes of class B
        for i in 0..4 {
            kb.insert("P", "B", fs(&[1, 100 + i]));
        }
        let q = fs(&[1, 2, 3, 4]);
        let near = MajorityVoteKnn::new(2, SimilarityMeasure::Jaccard);
        assert_eq!(near.classify(&kb, "P", &q).as_deref(), Some("A"));
        let wide = MajorityVoteKnn::new(6, SimilarityMeasure::Jaccard);
        assert_eq!(wide.classify(&kb, "P", &q).as_deref(), Some("B"));
        // the ranked list puts A first regardless of any k choice
        let ranked = RankedKnn::new(SimilarityMeasure::Jaccard).rank(&kb, "P", &q);
        assert_eq!(ranked[0].code, "A");
    }

    #[test]
    fn weighted_vote_resists_the_flip() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P", "A", fs(&[1, 2, 3, 4]));
        kb.insert("P", "A", fs(&[1, 2, 3, 5]));
        for i in 0..4 {
            kb.insert("P", "B", fs(&[1, 100 + i]));
        }
        let q = fs(&[1, 2, 3, 4]);
        let weighted = MajorityVoteKnn {
            k: 6,
            measure: SimilarityMeasure::Jaccard,
            weighted: true,
        };
        // similarity-weighted votes keep the near class on top
        assert_eq!(weighted.classify(&kb, "P", &q).as_deref(), Some("A"));
    }

    #[test]
    fn majority_vote_ties_independent_of_insertion_order() {
        // Regression: with k = 1 and two equal-score nodes of different
        // codes, the vote used to go to whichever node entered the knowledge
        // base first (ties at the k-truncation boundary broke on node
        // index). The code-text tie-break makes both insertion orders elect
        // the lexicographically smaller code.
        let q = fs(&[1, 2]);
        for order in [["EB", "EA"], ["EA", "EB"]] {
            let mut kb = KnowledgeBase::new();
            for code in order {
                kb.insert("P", code, fs(&[1, 2]));
            }
            let knn = MajorityVoteKnn::new(1, SimilarityMeasure::Jaccard);
            assert_eq!(
                knn.classify(&kb, "P", &q).as_deref(),
                Some("EA"),
                "insertion order {order:?} changed the winner"
            );
        }
        // same at a truncation boundary inside a larger neighbourhood:
        // k = 3 keeps both perfect-score nodes plus exactly one of the two
        // tied 0.5-score nodes — which one must not depend on insertion order
        for order in [["EY", "EX"], ["EX", "EY"]] {
            let mut kb = KnowledgeBase::new();
            kb.insert("P", "EM", fs(&[1, 2]));
            kb.insert("P", "EM", fs(&[1, 2, 3]));
            for code in order {
                kb.insert("P", code, fs(&[1, 9]));
            }
            let knn = MajorityVoteKnn::new(3, SimilarityMeasure::Overlap);
            assert_eq!(knn.classify(&kb, "P", &q).as_deref(), Some("EM"));
        }
    }

    #[test]
    fn majority_vote_empty_cases() {
        let knn = MajorityVoteKnn::new(5, SimilarityMeasure::Jaccard);
        assert_eq!(knn.classify(&KnowledgeBase::new(), "P", &fs(&[1])), None);
        let kb = kb();
        assert_eq!(knn.classify(&kb, "P-01", &FeatureSet::default()), None);
    }

    #[test]
    fn early_returns_count_as_skipped() {
        // The global counters are shared across parallel tests, so assert on
        // deltas with ≥: concurrent tests can only add skips, never remove.
        let m = crate::metrics::metrics();
        let kb = kb();
        let knn = RankedKnn::default();
        let vote = MajorityVoteKnn::new(3, SimilarityMeasure::Jaccard);

        let skipped_before = m.classifier_skipped_total.get();
        let queries_before = m.rank_queries_total.get();
        // 1: known part, empty features → early return, no candidates
        assert!(knn.rank(&kb, "P-01", &FeatureSet::default()).is_empty());
        // 2: known part, zero overlap → early return
        assert!(knn.rank(&kb, "P-01", &fs(&[777])).is_empty());
        // 3: unknown part, zero overlap anywhere → whole-KB fallback, no
        //    kernel work — still an early return for the accumulator
        assert!(!knn.rank(&kb, "P-??", &fs(&[777])).is_empty());
        // 4: majority vote with empty features → None without voting
        assert_eq!(vote.classify(&kb, "P-01", &FeatureSet::default()), None);
        // 5: majority vote on an empty knowledge base
        assert_eq!(vote.classify(&KnowledgeBase::new(), "P", &fs(&[1])), None);
        assert!(
            m.classifier_skipped_total.get() >= skipped_before + 5,
            "skips not counted"
        );
        assert!(
            m.rank_queries_total.get() >= queries_before + 5,
            "skipped queries must still count as queries"
        );

        // normal queries still land in the query counter (and produce
        // results, i.e. they did not take the early-return path)
        let queries_mid = m.rank_queries_total.get();
        assert!(!knn.rank(&kb, "P-01", &fs(&[1, 2, 3])).is_empty());
        assert!(vote.classify(&kb, "P-01", &fs(&[1, 2, 3])).is_some());
        assert!(m.rank_queries_total.get() >= queries_mid + 2);
    }

    #[test]
    fn rank_sealed_matches_rank_everywhere() {
        let kb = kb();
        let idx = SealedIndex::build(&kb);
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let queries = [
            ("P-01", fs(&[1, 2, 3])),
            ("P-01", fs(&[2, 3])),
            ("P-02", fs(&[1, 2, 3])),
            ("P-01", fs(&[777])),
            ("P-??", fs(&[1, 2])),
            ("P-??", fs(&[777])), // unknown-part whole-KB fallback
            ("P-01", FeatureSet::default()),
            ("P-??", FeatureSet::default()),
        ];
        for (part, q) in &queries {
            assert_eq!(
                knn.rank_sealed(&idx, &kb, part, q),
                knn.rank(&kb, part, q),
                "sealed/live divergence for {part}"
            );
        }
    }

    #[test]
    fn rank_sealed_pruned_finds_near_duplicates() {
        // same-code near-duplicates at Jaccard ≥ 0.5 are exactly what the
        // prefilter is tuned to keep; verify the full pruned pipeline agrees
        // with the exact path on them
        let mut kb = KnowledgeBase::new();
        for i in 0..20u32 {
            let base = i * 50;
            kb.insert(
                "P-01",
                format!("E{i:03}"),
                fs(&(0..12).map(|k| base + k).collect::<Vec<_>>()),
            );
            kb.insert(
                "P-01",
                format!("E{i:03}"),
                fs(&(0..12).map(|k| base + k + 2).collect::<Vec<_>>()),
            );
        }
        let idx = SealedIndex::build(&kb);
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        // query = a near-copy of code E003's bundles
        let q = fs(&(0..12).map(|k| 150 + k + 1).collect::<Vec<_>>());
        let exact = knn.rank_sealed(&idx, &kb, "P-01", &q);
        let pruned = knn.rank_sealed_pruned(&idx, &kb, "P-01", &q);
        assert_eq!(exact[0].code, "E003");
        assert_eq!(pruned[0].code, "E003");
        assert_eq!(pruned[0].score, exact[0].score);
        // pruned results are a subset of the exact ranking with equal scores
        for s in &pruned {
            let e = exact.iter().find(|e| e.code == s.code).expect("in exact");
            assert_eq!(s.score, e.score);
        }
        // unknown part / empty features delegate to the exact fallbacks
        assert_eq!(
            knn.rank_sealed_pruned(&idx, &kb, "P-??", &fs(&[9999])),
            knn.rank(&kb, "P-??", &fs(&[9999]))
        );
        assert_eq!(
            knn.rank_sealed_pruned(&idx, &kb, "P-01", &FeatureSet::default()),
            knn.rank(&kb, "P-01", &FeatureSet::default())
        );
    }

    #[test]
    fn empty_query_or_kb() {
        let knn = RankedKnn::default();
        assert!(knn
            .rank(&KnowledgeBase::new(), "P-01", &fs(&[1]))
            .is_empty());
        assert!(knn.rank(&kb(), "P-01", &FeatureSet::default()).is_empty());
    }
}
