//! The ranked-list kNN classifier.
//!
//! Paper §4.3: instead of majority vote, "we output a list of all potential
//! error keys ranked by the distance of the knowledge base instances to the
//! data bundle, then cut off the list at k for initial presentation ... We
//! retrieve the error codes of the 25 best-scored candidate nodes. For each
//! of these error codes, we assign an error code with associated score."
//! This sidesteps standard kNN's sensitivity to local data structures
//! (Fig. 6) because no single k decides the answer.

use crate::features::FeatureSet;
use crate::knowledge::KnowledgeBase;
use crate::similarity::SimilarityMeasure;

/// One recommendation: an error code with its best similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCode {
    pub code: String,
    pub score: f64,
}

/// Ranked-list kNN over a knowledge base.
#[derive(Debug, Clone, Copy)]
pub struct RankedKnn {
    /// How many best-scored *nodes* contribute codes (paper: 25).
    pub top_nodes: usize,
    pub measure: SimilarityMeasure,
}

impl Default for RankedKnn {
    fn default() -> Self {
        RankedKnn {
            top_nodes: 25,
            measure: SimilarityMeasure::Jaccard,
        }
    }
}

impl RankedKnn {
    pub fn new(measure: SimilarityMeasure) -> Self {
        RankedKnn {
            top_nodes: 25,
            measure,
        }
    }

    /// Produce the ranked error-code list for one data bundle.
    ///
    /// Steps (paper Fig. 5 + §4.3): candidate selection → pairwise scoring →
    /// take the 25 best nodes → emit their codes, deduplicated (best score
    /// wins), in descending score order. Ties break on code text so results
    /// are deterministic.
    pub fn rank(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        let candidates = kb.candidates(part_id, features);
        let mut scored: Vec<(f64, usize)> = candidates
            .into_iter()
            .map(|i| (self.measure.score(features, &kb.nodes()[i].features), i))
            .collect();
        // descending score; ties by node order for determinism
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(self.top_nodes);

        let mut out: Vec<ScoredCode> = Vec::with_capacity(scored.len());
        for (score, idx) in scored {
            let code = &kb.nodes()[idx].error_code;
            match out.iter_mut().find(|s| &s.code == code) {
                Some(existing) => {
                    if score > existing.score {
                        existing.score = score;
                    }
                }
                None => out.push(ScoredCode {
                    code: code.clone(),
                    score,
                }),
            }
        }
        // dedup can disturb order only if a later duplicate improved a score;
        // re-sort for the final ranking
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.code.cmp(&b.code)));
        out
    }

    /// Rank position (0-based) of the true code in the recommendation list,
    /// if present.
    pub fn rank_of(&self, ranked: &[ScoredCode], truth: &str) -> Option<usize> {
        ranked.iter().position(|s| s.code == truth)
    }
}

/// The *standard* unweighted instance-based kNN of paper Fig. 6 — majority
/// vote among the k nearest knowledge nodes. The paper implements the
/// ranked-list variant instead because majority vote "becomes evident in
/// Fig. 6 — the sensitivity to local data structures. For k = 6, the class
/// assigned by majority vote is different from that for k = 15." This
/// implementation exists to make that comparison executable (see the
/// `ablations` harness).
#[derive(Debug, Clone, Copy)]
pub struct MajorityVoteKnn {
    /// Number of nearest neighbours that vote.
    pub k: usize,
    pub measure: SimilarityMeasure,
    /// Weight votes by similarity ("this majority vote can also be weighted
    /// by the individual nearness of neighbors").
    pub weighted: bool,
}

impl MajorityVoteKnn {
    pub fn new(k: usize, measure: SimilarityMeasure) -> Self {
        MajorityVoteKnn {
            k,
            measure,
            weighted: false,
        }
    }

    /// Classify one bundle: the single winning error code, or `None` when
    /// there are no candidates at all.
    pub fn classify(
        &self,
        kb: &KnowledgeBase,
        part_id: &str,
        features: &FeatureSet,
    ) -> Option<String> {
        let candidates = kb.candidates(part_id, features);
        if candidates.is_empty() {
            return None;
        }
        let mut scored: Vec<(f64, usize)> = candidates
            .into_iter()
            .map(|i| (self.measure.score(features, &kb.nodes()[i].features), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(self.k);

        let mut votes: Vec<(String, f64)> = Vec::new();
        for (score, idx) in scored {
            let code = &kb.nodes()[idx].error_code;
            let weight = if self.weighted { score } else { 1.0 };
            match votes.iter_mut().find(|(c, _)| c == code) {
                Some((_, w)) => *w += weight,
                None => votes.push((code.clone(), weight)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(code, _)| code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E100", fs(&[1, 2, 3]));
        kb.insert("P-01", "E200", fs(&[1, 2, 3, 4, 5, 6]));
        kb.insert("P-01", "E300", fs(&[7, 8]));
        kb.insert("P-01", "E100", fs(&[2, 3]));
        kb.insert("P-02", "E900", fs(&[1, 2, 3]));
        kb
    }

    #[test]
    fn ranks_by_similarity() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        // E100 node [1,2,3] scores 1.0; E200 scores 3/6; E300 shares nothing
        assert_eq!(ranked[0].code, "E100");
        assert!((ranked[0].score - 1.0).abs() < 1e-12);
        assert_eq!(ranked[1].code, "E200");
        assert!((ranked[1].score - 0.5).abs() < 1e-12);
        assert_eq!(ranked.len(), 2); // E300 never becomes a candidate
    }

    #[test]
    fn codes_deduplicated_with_best_score() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[2, 3]));
        // Two E100 nodes match; the exact [2,3] one scores 1.0
        let e100 = ranked.iter().find(|s| s.code == "E100").unwrap();
        assert!((e100.score - 1.0).abs() < 1e-12);
        assert_eq!(ranked.iter().filter(|s| s.code == "E100").count(), 1);
    }

    #[test]
    fn respects_part_filter() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        assert!(ranked.iter().all(|s| s.code != "E900"));
    }

    #[test]
    fn top_nodes_truncation() {
        let mut kb = KnowledgeBase::new();
        for i in 0..50 {
            kb.insert("P-01", format!("E{i:03}"), fs(&[1, 100 + i]));
        }
        let knn = RankedKnn {
            top_nodes: 25,
            measure: SimilarityMeasure::Jaccard,
        };
        let ranked = knn.rank(&kb, "P-01", &fs(&[1]));
        assert_eq!(ranked.len(), 25);
    }

    #[test]
    fn overlap_vs_jaccard_ordering() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "SMALL", fs(&[1, 2]));
        kb.insert("P-01", "BIG", fs(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let q = fs(&[1, 2, 9]);
        // Jaccard penalizes the big set less than overlap rewards small sets
        let j = RankedKnn::new(SimilarityMeasure::Jaccard).rank(&kb, "P-01", &q);
        assert_eq!(j[0].code, "SMALL"); // 2/3 vs 2/9
        let o = RankedKnn::new(SimilarityMeasure::Overlap).rank(&kb, "P-01", &q);
        assert_eq!(o[0].code, "SMALL"); // 2/2 vs 2/3
        assert!((o[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tiebreaks() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "EB", fs(&[1]));
        kb.insert("P-01", "EA", fs(&[1]));
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb, "P-01", &fs(&[1]));
        // equal scores → code-lexicographic order
        assert_eq!(ranked[0].code, "EA");
        assert_eq!(ranked[1].code, "EB");
    }

    #[test]
    fn rank_of_helper() {
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        let ranked = knn.rank(&kb(), "P-01", &fs(&[1, 2, 3]));
        assert_eq!(knn.rank_of(&ranked, "E100"), Some(0));
        assert_eq!(knn.rank_of(&ranked, "E200"), Some(1));
        assert_eq!(knn.rank_of(&ranked, "E999"), None);
    }

    #[test]
    fn majority_vote_is_k_sensitive() {
        // Reconstructs the paper's Fig. 6 situation: the nearest few
        // neighbours favour one class, the wider neighbourhood another —
        // majority vote flips with k while the ranked list stays stable.
        let mut kb = KnowledgeBase::new();
        // 2 very close nodes of class A
        kb.insert("P", "A", fs(&[1, 2, 3, 4]));
        kb.insert("P", "A", fs(&[1, 2, 3, 5]));
        // 4 farther nodes of class B
        for i in 0..4 {
            kb.insert("P", "B", fs(&[1, 100 + i]));
        }
        let q = fs(&[1, 2, 3, 4]);
        let near = MajorityVoteKnn::new(2, SimilarityMeasure::Jaccard);
        assert_eq!(near.classify(&kb, "P", &q).as_deref(), Some("A"));
        let wide = MajorityVoteKnn::new(6, SimilarityMeasure::Jaccard);
        assert_eq!(wide.classify(&kb, "P", &q).as_deref(), Some("B"));
        // the ranked list puts A first regardless of any k choice
        let ranked = RankedKnn::new(SimilarityMeasure::Jaccard).rank(&kb, "P", &q);
        assert_eq!(ranked[0].code, "A");
    }

    #[test]
    fn weighted_vote_resists_the_flip() {
        let mut kb = KnowledgeBase::new();
        kb.insert("P", "A", fs(&[1, 2, 3, 4]));
        kb.insert("P", "A", fs(&[1, 2, 3, 5]));
        for i in 0..4 {
            kb.insert("P", "B", fs(&[1, 100 + i]));
        }
        let q = fs(&[1, 2, 3, 4]);
        let weighted = MajorityVoteKnn {
            k: 6,
            measure: SimilarityMeasure::Jaccard,
            weighted: true,
        };
        // similarity-weighted votes keep the near class on top
        assert_eq!(weighted.classify(&kb, "P", &q).as_deref(), Some("A"));
    }

    #[test]
    fn majority_vote_empty_cases() {
        let knn = MajorityVoteKnn::new(5, SimilarityMeasure::Jaccard);
        assert_eq!(knn.classify(&KnowledgeBase::new(), "P", &fs(&[1])), None);
        let kb = kb();
        assert_eq!(knn.classify(&kb, "P-01", &FeatureSet::default()), None);
    }

    #[test]
    fn empty_query_or_kb() {
        let knn = RankedKnn::default();
        assert!(knn.rank(&KnowledgeBase::new(), "P-01", &fs(&[1])).is_empty());
        assert!(knn.rank(&kb(), "P-01", &FeatureSet::default()).is_empty());
    }
}
