//! End-to-end experiment orchestration.
//!
//! This module wires the whole QATK pipeline of paper Fig. 8 together: data
//! bundles → CAS → tokenizer (→ concept annotator) → feature extraction →
//! knowledge-base construction (training) → candidate selection → ranked
//! kNN classification (test), evaluated under stratified cross-validation
//! with per-bundle timing, alongside the two §5.1 baselines. Folds run on
//! scoped threads — each fold owns its feature space and knowledge base, so
//! no cross-fold state leaks.

use std::time::Instant;

use qatk_corpus::bundle::{DataBundle, SourceSelection};
use qatk_corpus::generator::Corpus;
use qatk_text::concept_annotator::ConceptAnnotator;
use qatk_text::engine::Pipeline;
use qatk_text::langdetect::LanguageDetector;
use qatk_text::stemmer::StemAnnotator;
use qatk_text::tokenizer::WhitespaceTokenizer;

use crate::baselines::{CandidateSetBaseline, CodeFrequencyBaseline};
use crate::classifier::BatchQuery;
use crate::eval::{stratified_folds, AccuracyCounter, F1Counter, PAPER_KS};
use crate::features::{FeatureModel, FeatureSet, FeatureSpace};
use crate::interner::Interner;
use crate::knowledge::KnowledgeBase;
use crate::similarity::SimilarityMeasure;
use crate::zoo::{Classifier, ClassifierFamily, RankerConfig};

/// Configuration of one experiment variant.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    pub model: FeatureModel,
    /// Classifier family under evaluation (paper: ranked kNN).
    pub classifier: ClassifierFamily,
    pub measure: SimilarityMeasure,
    /// Text sources used at *test* time (training always uses everything).
    pub test_selection: SourceSelection,
    /// Best-scored nodes contributing codes (paper: 25).
    pub top_nodes: usize,
    /// Accuracy cut-offs.
    pub ks: Vec<usize>,
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    pub seed: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            model: FeatureModel::BagOfConcepts,
            classifier: ClassifierFamily::Knn,
            measure: SimilarityMeasure::Jaccard,
            test_selection: SourceSelection::Test,
            top_nodes: 25,
            ks: PAPER_KS.to_vec(),
            folds: 5,
            seed: 0x5EED,
        }
    }
}

impl ClassifierConfig {
    /// Short label like `bag-of-concepts+jaccard`, matching figure legends.
    /// Non-kNN families (whose scoring rules don't involve the similarity
    /// measure) are labeled by family, e.g. `bag-of-words+naive-bayes`.
    pub fn label(&self) -> String {
        match self.classifier {
            ClassifierFamily::Knn => {
                format!("{}+{}", self.model.label(), self.measure.label())
            }
            family => format!("{}+{}", self.model.label(), family.label()),
        }
    }

    /// The ranker configuration this experiment trains per fold.
    pub fn ranker(&self) -> RankerConfig {
        RankerConfig {
            family: self.classifier,
            measure: self.measure,
            top_nodes: self.top_nodes,
        }
    }
}

/// One accuracy curve.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCurve {
    pub label: String,
    pub ks: Vec<usize>,
    pub accuracy: Vec<f64>,
}

impl AccuracyCurve {
    fn from_counter(label: impl Into<String>, counter: &AccuracyCounter) -> Self {
        AccuracyCurve {
            label: label.into(),
            ks: counter.ks().to_vec(),
            accuracy: counter.accuracies(),
        }
    }

    /// Accuracy at a given k.
    pub fn at(&self, k: usize) -> Option<f64> {
        self.ks
            .iter()
            .position(|&x| x == k)
            .map(|i| self.accuracy[i])
    }
}

/// Full output of one experiment run: the classifier curve plus both
/// baselines, with timing.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub config_label: String,
    pub classifier: AccuracyCurve,
    pub code_frequency: AccuracyCurve,
    pub candidate_set: AccuracyCurve,
    /// Wall-clock seconds per fold (test phase).
    pub fold_seconds: Vec<f64>,
    /// Mean per-bundle classification latency in seconds.
    pub seconds_per_bundle: f64,
    /// Total test bundles classified across folds.
    pub total_tested: usize,
    /// Mean knowledge-base size across folds.
    pub mean_kb_nodes: f64,
    /// Mean feature count of test bundles (the paper's ≈70 words / ≈26
    /// concepts statistic).
    pub mean_features_per_bundle: f64,
    /// Per-part-ID accuracy breakdown: (part id, curve, test bundles). The
    /// paper's data is heavily skewed across its 31 part IDs, so aggregate
    /// accuracy can hide weak part types; this surfaces them.
    pub per_part: Vec<(String, AccuracyCurve, usize)>,
    /// Per-item outcome: (index into `corpus.evaluable_bundles()`, 0-based
    /// rank of the true code in the recommendation list). Sorted by index;
    /// aligns across variants run on the same corpus+seed, enabling paired
    /// significance tests ([`crate::bootstrap`]).
    pub ranks: Vec<(usize, Option<usize>)>,
    /// Micro-averaged F1 of the classifier's top-1 predictions across folds.
    pub micro_f1: f64,
    /// Macro-averaged F1 of the classifier's top-1 predictions across folds.
    pub macro_f1: f64,
}

/// Build the text-analysis pipeline for a feature model (paper Fig. 8; the
/// domain-ignorant variant "eliminates the concept annotation step").
pub fn build_pipeline(corpus: &Corpus, model: FeatureModel) -> Pipeline {
    let builder = Pipeline::builder()
        .add(WhitespaceTokenizer::new())
        .add(LanguageDetector::new());
    match model {
        FeatureModel::BagOfConcepts => builder
            .add(ConceptAnnotator::new(&corpus.taxonomy.taxonomy))
            .build(),
        FeatureModel::BagOfStems => builder.add(StemAnnotator::new()).build(),
        // char n-grams need neither stemming nor the taxonomy — tokens alone
        FeatureModel::BagOfWords
        | FeatureModel::BagOfWordsNoStop
        | FeatureModel::CharNgrams { .. } => builder.build(),
    }
}

/// Outcome of one fold.
struct FoldOutcome {
    knn: AccuracyCounter,
    f1: F1Counter,
    freq: AccuracyCounter,
    cand: AccuracyCounter,
    /// Per-part accuracy, indexed by the experiment-wide dense part id —
    /// no per-bundle `String` clones or hash lookups on the accounting path.
    per_part: Vec<AccuracyCounter>,
    ranks: Vec<(usize, Option<usize>)>,
    seconds: f64,
    tested: usize,
    kb_nodes: usize,
    feature_sum: usize,
}

fn run_fold(
    bundles: &[&DataBundle],
    fold_of: &[usize],
    fold: usize,
    pipeline: &Pipeline,
    parts: &Interner,
    config: &ClassifierConfig,
) -> FoldOutcome {
    let mut space = FeatureSpace::new();
    let mut kb = KnowledgeBase::new();

    // --- training phase ---------------------------------------------------
    let mut train_pairs: Vec<(&str, &str)> = Vec::new();
    for (i, b) in bundles.iter().enumerate() {
        if fold_of[i] == fold {
            continue;
        }
        let mut cas = b.to_cas(SourceSelection::Training);
        pipeline
            .process(&mut cas)
            .expect("pipeline never fails on corpus text");
        let features = space.extract(&cas, config.model);
        let code = b.error_code.as_deref().expect("training bundles are coded");
        kb.insert(b.part_id.clone(), code, features);
        train_pairs.push((b.part_id.as_str(), code));
    }
    let freq_baseline = CodeFrequencyBaseline::train(train_pairs);
    // the fold's ranker: kNN reproduces the paper kernel bit-for-bit, the
    // other zoo families train an eager model over the fold's knowledge base
    let ranker = config.ranker().train(&kb);

    // --- test phase ---------------------------------------------------------
    let mut knn_acc = AccuracyCounter::new(&config.ks);
    let mut f1 = F1Counter::default();
    let mut freq_acc = AccuracyCounter::new(&config.ks);
    let mut cand_acc = AccuracyCounter::new(&config.ks);
    let mut per_part = vec![AccuracyCounter::new(&config.ks); parts.len()];
    let mut ranks: Vec<(usize, Option<usize>)> = Vec::new();
    let mut feature_sum = 0usize;
    let start = Instant::now();

    // extract the test bundles' features, then classify the whole fold as
    // one parallel batch (per-thread scratch state inside classify_batch)
    let mut test_set: Vec<(usize, &DataBundle, FeatureSet)> = Vec::new();
    for (i, b) in bundles.iter().enumerate() {
        if fold_of[i] != fold {
            continue;
        }
        let mut cas = b.to_cas(config.test_selection);
        pipeline
            .process(&mut cas)
            .expect("pipeline never fails on corpus text");
        let features = space.extract(&cas, config.model);
        feature_sum += features.len();
        test_set.push((i, b, features));
    }
    let queries: Vec<BatchQuery<'_>> = test_set
        .iter()
        .map(|(_, b, features)| BatchQuery {
            part_id: &b.part_id,
            features,
        })
        .collect();
    let rankings = ranker.rank_batch(&kb, None, &queries);

    let tested = test_set.len();
    for ((i, b, features), ranked) in test_set.iter().zip(&rankings) {
        let truth = b.error_code.as_deref().expect("test bundles are coded");
        let rank_of_truth = ranked.iter().position(|s| s.code == truth);
        knn_acc.record(rank_of_truth);
        f1.record(truth, ranked.first().map(|s| s.code.as_str()));
        ranks.push((*i, rank_of_truth));
        let part = parts
            .get(&b.part_id)
            .expect("every bundle part is interned");
        per_part[part as usize].record(rank_of_truth);

        let freq_rank = freq_baseline.rank(&b.part_id);
        freq_acc.record(freq_rank.iter().position(|c| c == truth));

        let cand_rank = CandidateSetBaseline.rank(&kb, &b.part_id, features);
        cand_acc.record(cand_rank.iter().position(|c| c == truth));
    }
    FoldOutcome {
        knn: knn_acc,
        f1,
        freq: freq_acc,
        cand: cand_acc,
        per_part,
        ranks,
        seconds: start.elapsed().as_secs_f64(),
        tested,
        kb_nodes: kb.len(),
        feature_sum,
    }
}

/// Run one experiment variant under stratified cross-validation.
///
/// Folds execute in parallel on scoped threads; results are merged in fold
/// order so the output is deterministic for a given corpus and config.
pub fn run_experiment(corpus: &Corpus, config: &ClassifierConfig) -> ExperimentResult {
    let bundles = corpus.evaluable_bundles();
    assert!(
        !bundles.is_empty(),
        "corpus has no evaluable (multi-occurrence) bundles"
    );
    let codes: Vec<&str> = bundles
        .iter()
        .map(|b| b.error_code.as_deref().expect("coded"))
        .collect();
    let fold_of = stratified_folds(&codes, config.folds, config.seed);
    let pipeline = build_pipeline(corpus, config.model);
    // experiment-wide dense part ids: interned once here, shared read-only by
    // every fold, so per-part accounting indexes a Vec instead of cloning
    // part-id strings into per-fold hash maps
    let mut part_interner = Interner::new();
    for b in &bundles {
        part_interner.intern(&b.part_id);
    }
    let parts = &part_interner;

    let mut outcomes: Vec<Option<FoldOutcome>> = (0..config.folds).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for fold in 0..config.folds {
            let bundles = &bundles;
            let fold_of = &fold_of;
            let pipeline = &pipeline;
            handles.push((
                fold,
                s.spawn(move || run_fold(bundles, fold_of, fold, pipeline, parts, config)),
            ));
        }
        for (fold, h) in handles {
            outcomes[fold] = Some(h.join().expect("fold thread panicked"));
        }
    });

    let outcomes: Vec<FoldOutcome> = outcomes.into_iter().map(Option::unwrap).collect();
    let mut knn = AccuracyCounter::new(&config.ks);
    let mut f1 = F1Counter::default();
    let mut freq = AccuracyCounter::new(&config.ks);
    let mut cand = AccuracyCounter::new(&config.ks);
    let mut fold_seconds = Vec::with_capacity(outcomes.len());
    let mut tested = 0usize;
    let mut kb_nodes = 0usize;
    let mut feature_sum = 0usize;
    let mut per_part_acc = vec![AccuracyCounter::new(&config.ks); parts.len()];
    let mut ranks: Vec<(usize, Option<usize>)> = Vec::new();
    for o in &outcomes {
        ranks.extend_from_slice(&o.ranks);
        knn.merge(&o.knn);
        f1.merge(&o.f1);
        freq.merge(&o.freq);
        cand.merge(&o.cand);
        for (acc, counter) in per_part_acc.iter_mut().zip(&o.per_part) {
            acc.merge(counter);
        }
        fold_seconds.push(o.seconds);
        tested += o.tested;
        kb_nodes += o.kb_nodes;
        feature_sum += o.feature_sum;
    }
    let mut per_part: Vec<(String, AccuracyCurve, usize)> = per_part_acc
        .into_iter()
        .enumerate()
        .filter(|(_, counter)| counter.total() > 0)
        .map(|(id, counter)| {
            let part = parts.resolve(id as u32).expect("dense id").to_owned();
            let total = counter.total();
            (
                part.clone(),
                AccuracyCurve::from_counter(part, &counter),
                total,
            )
        })
        .collect();
    per_part.sort_by(|a, b| a.0.cmp(&b.0));
    ranks.sort_unstable_by_key(|&(i, _)| i);
    let total_seconds: f64 = fold_seconds.iter().sum();
    ExperimentResult {
        config_label: config.label(),
        classifier: AccuracyCurve::from_counter(config.label(), &knn),
        code_frequency: AccuracyCurve::from_counter("code-frequency-baseline", &freq),
        candidate_set: AccuracyCurve::from_counter(
            format!("candidate-set-baseline ({})", config.model.label()),
            &cand,
        ),
        fold_seconds,
        seconds_per_bundle: if tested == 0 {
            0.0
        } else {
            total_seconds / tested as f64
        },
        total_tested: tested,
        mean_kb_nodes: kb_nodes as f64 / outcomes.len() as f64,
        mean_features_per_bundle: if tested == 0 {
            0.0
        } else {
            feature_sum as f64 / tested as f64
        },
        per_part,
        ranks,
        micro_f1: f1.micro_f1(),
        macro_f1: f1.macro_f1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_corpus::generator::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(21))
    }

    fn config(model: FeatureModel) -> ClassifierConfig {
        ClassifierConfig {
            model,
            folds: 3,
            ..ClassifierConfig::default()
        }
    }

    #[test]
    fn experiment_runs_and_reports() {
        let c = corpus();
        let r = run_experiment(&c, &config(FeatureModel::BagOfConcepts));
        assert_eq!(r.classifier.ks, PAPER_KS.to_vec());
        assert_eq!(r.fold_seconds.len(), 3);
        assert!(r.total_tested > 0);
        assert!(r.mean_kb_nodes > 0.0);
        assert!(r.seconds_per_bundle >= 0.0);
        // accuracies are monotone in k
        for w in r.classifier.accuracy.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn classifier_beats_candidate_baseline_at_small_k() {
        let c = corpus();
        let r = run_experiment(&c, &config(FeatureModel::BagOfWords));
        let a1 = r.classifier.at(1).unwrap();
        let c1 = r.candidate_set.at(1).unwrap();
        assert!(
            a1 > c1,
            "classifier@1 {a1:.3} should beat candidate baseline@1 {c1:.3}"
        );
    }

    #[test]
    fn both_models_reach_high_accuracy_at_25() {
        // The BoW > BoC ordering of Fig. 11 is a *scale* effect (codes
        // collide on concepts only when pools are large); it is asserted by
        // the full-scale fig11 harness and recorded in EXPERIMENTS.md. At
        // test scale we check both models classify well and beat the
        // unsorted candidate baseline.
        let c = corpus();
        for model in [FeatureModel::BagOfWords, FeatureModel::BagOfConcepts] {
            let r = run_experiment(&c, &config(model));
            let a25 = r.classifier.at(25).unwrap();
            assert!(a25 > 0.8, "{model:?}@25 = {a25:.3}");
            assert!(
                r.classifier.at(1).unwrap() > r.candidate_set.at(1).unwrap(),
                "{model:?} should beat the unsorted candidate baseline @1"
            );
        }
    }

    #[test]
    fn mechanic_only_is_much_worse_than_full_test() {
        // needs a slightly bigger corpus than the other tests: at 600
        // bundles the class pools are small enough that sampling noise can
        // mask the mechanic-report information gap
        let c = Corpus::generate(qatk_corpus::generator::CorpusConfig {
            n_bundles: 1500,
            pool_scale: 0.2,
            ..qatk_corpus::generator::CorpusConfig::default()
        });
        let full = run_experiment(&c, &config(FeatureModel::BagOfWords));
        let mech = run_experiment(
            &c,
            &ClassifierConfig {
                test_selection: SourceSelection::MechanicOnly,
                ..config(FeatureModel::BagOfWords)
            },
        );
        assert!(
            mech.classifier.at(1).unwrap() + 0.1 < full.classifier.at(1).unwrap(),
            "mechanic-only @1 ({:.3}) should be well below full-test @1 ({:.3})",
            mech.classifier.at(1).unwrap(),
            full.classifier.at(1).unwrap()
        );
    }

    #[test]
    fn deterministic_runs() {
        let c = corpus();
        let a = run_experiment(&c, &config(FeatureModel::BagOfConcepts));
        let b = run_experiment(&c, &config(FeatureModel::BagOfConcepts));
        assert_eq!(a.classifier.accuracy, b.classifier.accuracy);
        assert_eq!(a.code_frequency.accuracy, b.code_frequency.accuracy);
    }

    #[test]
    fn per_part_breakdown_consistent() {
        let c = corpus();
        let r = run_experiment(&c, &config(FeatureModel::BagOfConcepts));
        assert!(!r.per_part.is_empty());
        let total: usize = r.per_part.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, r.total_tested);
        // parts are sorted and unique
        for w in r.per_part.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // each part curve is monotone
        for (_, curve, _) in &r.per_part {
            for w in curve.accuracy.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
        }
    }

    #[test]
    fn labels_and_curves() {
        let cfg = config(FeatureModel::BagOfConcepts);
        assert_eq!(cfg.label(), "bag-of-concepts+jaccard");
        let c = corpus();
        let r = run_experiment(&c, &cfg);
        assert!(r.candidate_set.label.contains("bag-of-concepts"));
        assert_eq!(r.classifier.at(99), None);
    }
}
