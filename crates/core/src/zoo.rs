//! The classifier zoo: pluggable ranking families behind one trait.
//!
//! The paper evaluates a single family — ranked-list kNN (§4.3). JaTeCS
//! (arXiv:1706.06802) shows the value of a wide baseline zoo under one
//! evaluation harness, and the ROADMAP names this as a deliberate stress
//! test of the snapshot architecture: a new family must be addable without
//! touching the serving path. The contract:
//!
//! * [`ClassifierFamily`] names a family and round-trips through its label
//!   (persisted in the snapshot meta row, selected by `quest --classifier`);
//! * [`RankerConfig::train`] builds a trained, immutable [`RankerModel`]
//!   from a knowledge base — training happens at snapshot seal time, so a
//!   pinned snapshot always carries the model trained on its own KB and the
//!   epoch swap publishes both atomically;
//! * [`Classifier`] is the `&self` serving interface every family
//!   implements: rank one query, or a batch, against a knowledge base
//!   (with an optional sealed index for families that can use it).
//!
//! All families share the paper's ranking conventions so the serving layer
//! is family-agnostic: scores sort descending with a code-text tie-break,
//! a *known* part whose query shares nothing with the part's training data
//! yields an empty ranking, and an *unknown* part falls back to the first
//! `top_nodes` knowledge nodes scored 0.0 (the paper's whole-KB fallback).

use std::collections::HashMap;

use crate::classifier::{BatchQuery, RankedKnn, ScoredCode};
use crate::features::FeatureSet;
use crate::knowledge::KnowledgeBase;
use crate::segment::SealedIndex;
use crate::similarity::SimilarityMeasure;

/// A classifier family the zoo can train and serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierFamily {
    /// Ranked-list kNN over the posting-list kernel (the paper's model).
    Knn,
    /// Centroid/Rocchio: cosine against one mean vector per (part, code).
    Centroid,
    /// Multinomial naive Bayes with Laplace smoothing, per part.
    NaiveBayes,
    /// One-vs-rest logistic regression over part-local dense features.
    Logistic,
}

/// A classifier-family label that names no known family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFamilyError {
    pub label: String,
}

impl std::fmt::Display for ParseFamilyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown classifier family label `{}` (expected one of: knn, centroid, \
             naive-bayes, logistic)",
            self.label
        )
    }
}

impl std::error::Error for ParseFamilyError {}

impl ClassifierFamily {
    /// Every family, in zoo-report order.
    pub const ALL: [ClassifierFamily; 4] = [
        ClassifierFamily::Knn,
        ClassifierFamily::Centroid,
        ClassifierFamily::NaiveBayes,
        ClassifierFamily::Logistic,
    ];

    /// Stable label, round-tripping through [`ClassifierFamily::parse`].
    pub fn label(self) -> &'static str {
        match self {
            ClassifierFamily::Knn => "knn",
            ClassifierFamily::Centroid => "centroid",
            ClassifierFamily::NaiveBayes => "naive-bayes",
            ClassifierFamily::Logistic => "logistic",
        }
    }

    /// Inverse of [`ClassifierFamily::label`]; unknown labels are a
    /// structured error (used for persisted snapshot meta and the CLI).
    pub fn parse(label: &str) -> Result<Self, ParseFamilyError> {
        match label {
            "knn" => Ok(ClassifierFamily::Knn),
            "centroid" => Ok(ClassifierFamily::Centroid),
            "naive-bayes" => Ok(ClassifierFamily::NaiveBayes),
            "logistic" => Ok(ClassifierFamily::Logistic),
            _ => Err(ParseFamilyError {
                label: label.to_owned(),
            }),
        }
    }
}

/// How to train a ranker: the family plus the knobs shared across
/// families. Copied into every snapshot builder so copy-on-write epochs
/// retrain the same configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankerConfig {
    pub family: ClassifierFamily,
    /// Similarity measure — drives kNN scoring; the other families have
    /// fixed scoring rules (cosine / posterior / sigmoid) and ignore it.
    pub measure: SimilarityMeasure,
    /// Ranking depth: kNN's node cut-off, and every family's cap on emitted
    /// codes (paper: 25).
    pub top_nodes: usize,
}

impl Default for RankerConfig {
    fn default() -> Self {
        RankerConfig {
            family: ClassifierFamily::Knn,
            measure: SimilarityMeasure::Jaccard,
            top_nodes: 25,
        }
    }
}

impl RankerConfig {
    pub fn new(family: ClassifierFamily, measure: SimilarityMeasure) -> Self {
        RankerConfig {
            family,
            measure,
            ..Default::default()
        }
    }

    /// Train a ranker of this configuration over a knowledge base (the
    /// labeled feature sets of a `FrozenFeatureSpace` extraction). kNN is
    /// instance-based, so its "training" is free; the other families build
    /// per-part model state here. Deterministic: per-part training consumes
    /// nodes in knowledge-base insertion order only.
    pub fn train(&self, kb: &KnowledgeBase) -> RankerModel {
        match self.family {
            ClassifierFamily::Knn => RankerModel::Knn(RankedKnn {
                top_nodes: self.top_nodes,
                measure: self.measure,
            }),
            ClassifierFamily::Centroid => {
                RankerModel::Centroid(CentroidModel::train(kb, self.top_nodes))
            }
            ClassifierFamily::NaiveBayes => {
                RankerModel::NaiveBayes(NaiveBayesModel::train(kb, self.top_nodes))
            }
            ClassifierFamily::Logistic => {
                RankerModel::Logistic(LogisticModel::train(kb, self.top_nodes))
            }
        }
    }
}

/// The `&self` serving interface every classifier family implements.
/// Object-safe: the serving layer and the eval harness talk to
/// `&dyn Classifier` (or the [`RankerModel`] enum) and never name a family.
pub trait Classifier: Send + Sync {
    /// The family this classifier belongs to (labels, metrics).
    fn family(&self) -> ClassifierFamily;

    /// Rank error codes for one query. `index` is the sealed posting-list
    /// segment of the same knowledge base when the caller has one; families
    /// that cannot use it simply ignore it — results must not depend on
    /// whether it is passed.
    fn rank(
        &self,
        kb: &KnowledgeBase,
        index: Option<&SealedIndex>,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode>;

    /// Rank a batch of queries; output order matches query order and every
    /// ranking equals a sequential [`Classifier::rank`] call.
    fn rank_batch(
        &self,
        kb: &KnowledgeBase,
        index: Option<&SealedIndex>,
        queries: &[BatchQuery<'_>],
    ) -> Vec<Vec<ScoredCode>>;
}

/// A trained ranker: enum dispatch over the zoo families. This is what a
/// `KnowledgeSnapshot` carries — adding a family here (plus its training
/// arm) is the *entire* integration surface; `crates/serve` and the HTTP
/// handlers are family-agnostic by construction.
#[derive(Debug, Clone)]
pub enum RankerModel {
    Knn(RankedKnn),
    Centroid(CentroidModel),
    NaiveBayes(NaiveBayesModel),
    Logistic(LogisticModel),
}

impl Classifier for RankerModel {
    fn family(&self) -> ClassifierFamily {
        match self {
            RankerModel::Knn(_) => ClassifierFamily::Knn,
            RankerModel::Centroid(_) => ClassifierFamily::Centroid,
            RankerModel::NaiveBayes(_) => ClassifierFamily::NaiveBayes,
            RankerModel::Logistic(_) => ClassifierFamily::Logistic,
        }
    }

    fn rank(
        &self,
        kb: &KnowledgeBase,
        index: Option<&SealedIndex>,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        let m = crate::metrics::metrics();
        m.rank_family_total(self.family()).inc();
        // No-op outside a traced request, so the bare kernel benches pay
        // one flag check + one thread-local probe.
        let _span = qatk_trace::child_span("core.rank");
        qatk_trace::annotate("family", self.family().label());
        qatk_trace::annotate("features", features.len() as u64);
        match self {
            RankerModel::Knn(knn) => match index {
                // bit-identical paths (asserted by rank_sealed_matches_rank_everywhere)
                Some(idx) => knn.rank_sealed(idx, kb, part_id, features),
                None => knn.rank(kb, part_id, features),
            },
            RankerModel::Centroid(model) => model.rank(kb, part_id, features),
            RankerModel::NaiveBayes(model) => model.rank(kb, part_id, features),
            RankerModel::Logistic(model) => model.rank(kb, part_id, features),
        }
    }

    fn rank_batch(
        &self,
        kb: &KnowledgeBase,
        index: Option<&SealedIndex>,
        queries: &[BatchQuery<'_>],
    ) -> Vec<Vec<ScoredCode>> {
        let m = crate::metrics::metrics();
        m.rank_family_total(self.family()).add(queries.len() as u64);
        let _span = qatk_trace::child_span("core.rank_batch");
        qatk_trace::annotate("queries", queries.len() as u64);
        match self {
            // the kNN batch path keeps its scoped-worker kernel fan-out
            RankerModel::Knn(knn) => knn.classify_batch(kb, queries),
            _ => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .clamp(1, queries.len().max(1));
                if threads == 1 {
                    return queries
                        .iter()
                        .map(|q| self.rank_inner(kb, index, q.part_id, q.features))
                        .collect();
                }
                let mut out: Vec<Vec<ScoredCode>> = Vec::new();
                out.resize_with(queries.len(), Vec::new);
                let chunk = queries.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                        s.spawn(move || {
                            for (q, slot) in qchunk.iter().zip(ochunk.iter_mut()) {
                                *slot = self.rank_inner(kb, index, q.part_id, q.features);
                            }
                        });
                    }
                });
                out
            }
        }
    }
}

impl RankerModel {
    /// [`Classifier::rank`] without the per-family metrics bump — batch
    /// workers attribute the whole batch once.
    fn rank_inner(
        &self,
        kb: &KnowledgeBase,
        index: Option<&SealedIndex>,
        part_id: &str,
        features: &FeatureSet,
    ) -> Vec<ScoredCode> {
        match self {
            RankerModel::Knn(knn) => match index {
                Some(idx) => knn.rank_sealed(idx, kb, part_id, features),
                None => knn.rank(kb, part_id, features),
            },
            RankerModel::Centroid(model) => model.rank(kb, part_id, features),
            RankerModel::NaiveBayes(model) => model.rank(kb, part_id, features),
            RankerModel::Logistic(model) => model.rank(kb, part_id, features),
        }
    }
}

/// The paper's unknown-part fallback, shared by every family: "select the
/// entire knowledge base" — with all scores 0 the node order is simply the
/// first `top_nodes` nodes, deduplicated to codes. Matches
/// [`RankedKnn::rank`]'s fallback exactly so families agree on cold parts.
fn unknown_part_fallback(kb: &KnowledgeBase, top_nodes: usize) -> Vec<ScoredCode> {
    let mut out: Vec<ScoredCode> = Vec::new();
    for node in kb.nodes().iter().take(top_nodes) {
        if !out.iter().any(|s| s.code == node.error_code) {
            out.push(ScoredCode {
                code: node.error_code.clone(),
                score: 0.0,
            });
        }
    }
    out.sort_by(|a, b| a.code.cmp(&b.code));
    out
}

/// Sort per-class scores into the shared ranking order (score desc, code
/// asc), cap at `top_nodes`.
fn finish_ranking(mut scored: Vec<ScoredCode>, top_nodes: usize) -> Vec<ScoredCode> {
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.code.cmp(&b.code)));
    scored.truncate(top_nodes);
    scored
}

/// One class's training rows within a part: code plus its node indexes, in
/// knowledge-base insertion order. Shared grouping step for the trained
/// families; classes come out sorted by code so training is deterministic.
fn classes_of_part(kb: &KnowledgeBase, part: &str) -> Vec<(String, Vec<usize>)> {
    let mut classes: Vec<(String, Vec<usize>)> = Vec::new();
    for &n in kb.nodes_for_part(part) {
        let code = &kb.nodes()[n].error_code;
        match classes.iter_mut().find(|(c, _)| c == code) {
            Some((_, nodes)) => nodes.push(n),
            None => classes.push((code.clone(), vec![n])),
        }
    }
    classes.sort_by(|a, b| a.0.cmp(&b.0));
    classes
}

// ---------------------------------------------------------------------------
// Centroid / Rocchio
// ---------------------------------------------------------------------------

/// One (part, code) centroid: the mean of the class's binary feature
/// vectors, kept sparse as parallel (sorted ids, weights) arrays.
#[derive(Debug, Clone)]
struct Centroid {
    code: String,
    ids: Vec<u32>,
    weights: Vec<f64>,
    /// L2 norm of the weight vector (cosine denominator).
    norm: f64,
}

/// Centroid/Rocchio classifier: cosine similarity between the query's
/// binary feature vector and each class centroid of the query's part.
#[derive(Debug, Clone)]
pub struct CentroidModel {
    parts: HashMap<String, Vec<Centroid>>,
    top_nodes: usize,
}

impl CentroidModel {
    fn train(kb: &KnowledgeBase, top_nodes: usize) -> Self {
        let mut parts = HashMap::new();
        for part in kb.parts() {
            let mut centroids = Vec::new();
            for (code, nodes) in classes_of_part(kb, part) {
                // accumulate per-feature document counts via merge into a map
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for &n in &nodes {
                    for f in kb.nodes()[n].features.iter() {
                        *counts.entry(f).or_insert(0) += 1;
                    }
                }
                let n_docs = nodes.len() as f64;
                let mut ids: Vec<u32> = counts.keys().copied().collect();
                ids.sort_unstable();
                let weights: Vec<f64> = ids.iter().map(|f| counts[f] as f64 / n_docs).collect();
                let norm = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
                centroids.push(Centroid {
                    code,
                    ids,
                    weights,
                    norm,
                });
            }
            parts.insert(part.to_owned(), centroids);
        }
        CentroidModel { parts, top_nodes }
    }

    fn rank(&self, kb: &KnowledgeBase, part_id: &str, features: &FeatureSet) -> Vec<ScoredCode> {
        let Some(centroids) = self.parts.get(part_id) else {
            return unknown_part_fallback(kb, self.top_nodes);
        };
        let q_norm = (features.len() as f64).sqrt();
        let mut scored = Vec::new();
        for c in centroids {
            // dot product by merge scan over the sorted id arrays
            let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f64);
            let q = features.ids();
            while i < q.len() && j < c.ids.len() {
                match q[i].cmp(&c.ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        dot += c.weights[j];
                        i += 1;
                        j += 1;
                    }
                }
            }
            if dot > 0.0 && c.norm > 0.0 && q_norm > 0.0 {
                scored.push(ScoredCode {
                    code: c.code.clone(),
                    score: dot / (q_norm * c.norm),
                });
            }
        }
        // zero overlap with every class of a known part → empty, like kNN
        finish_ranking(scored, self.top_nodes)
    }
}

// ---------------------------------------------------------------------------
// Multinomial naive Bayes
// ---------------------------------------------------------------------------

/// One part's naive-Bayes state.
#[derive(Debug, Clone)]
struct NbPart {
    /// Sorted distinct features seen in the part's training data; features
    /// outside this vocabulary are dropped from queries (they carry no
    /// class evidence, exactly the frozen-space unknown-token rule).
    vocab: Vec<u32>,
    classes: Vec<NbClass>,
}

#[derive(Debug, Clone)]
struct NbClass {
    code: String,
    prior_ln: f64,
    /// (feature, occurrence count) sorted by feature — parallel to nothing,
    /// binary-searched at query time.
    counts: Vec<(u32, u32)>,
    /// Total feature occurrences in the class.
    total: u64,
}

/// Multinomial naive Bayes with Laplace smoothing, one model per part
/// (classes are the part's codes). Scores are softmax posteriors, so they
/// land in [0, 1] like every other family's.
#[derive(Debug, Clone)]
pub struct NaiveBayesModel {
    parts: HashMap<String, NbPart>,
    top_nodes: usize,
}

impl NaiveBayesModel {
    fn train(kb: &KnowledgeBase, top_nodes: usize) -> Self {
        let mut parts = HashMap::new();
        for part in kb.parts() {
            let part_nodes = kb.nodes_for_part(part);
            let n_part = part_nodes.len() as f64;
            let mut vocab: Vec<u32> = part_nodes
                .iter()
                .flat_map(|&n| kb.nodes()[n].features.iter())
                .collect();
            vocab.sort_unstable();
            vocab.dedup();
            let mut classes = Vec::new();
            for (code, nodes) in classes_of_part(kb, part) {
                let mut counts: HashMap<u32, u32> = HashMap::new();
                let mut total = 0u64;
                for &n in &nodes {
                    for f in kb.nodes()[n].features.iter() {
                        *counts.entry(f).or_insert(0) += 1;
                        total += 1;
                    }
                }
                let mut counts: Vec<(u32, u32)> = counts.into_iter().collect();
                counts.sort_unstable();
                classes.push(NbClass {
                    code,
                    prior_ln: (nodes.len() as f64 / n_part).ln(),
                    counts,
                    total,
                });
            }
            parts.insert(part.to_owned(), NbPart { vocab, classes });
        }
        NaiveBayesModel { parts, top_nodes }
    }

    fn rank(&self, kb: &KnowledgeBase, part_id: &str, features: &FeatureSet) -> Vec<ScoredCode> {
        let Some(part) = self.parts.get(part_id) else {
            return unknown_part_fallback(kb, self.top_nodes);
        };
        // restrict the query to the part's vocabulary
        let known: Vec<u32> = features
            .iter()
            .filter(|f| part.vocab.binary_search(f).is_ok())
            .collect();
        if known.is_empty() {
            // no shared evidence with a known part → empty, like kNN
            return Vec::new();
        }
        let v = part.vocab.len() as f64;
        let log_scores: Vec<f64> = part
            .classes
            .iter()
            .map(|c| {
                let denom = (c.total as f64 + v).ln();
                known
                    .iter()
                    .map(|f| {
                        let count = c
                            .counts
                            .binary_search_by_key(f, |&(ft, _)| ft)
                            .map(|i| c.counts[i].1)
                            .unwrap_or(0);
                        ((count + 1) as f64).ln() - denom
                    })
                    .sum::<f64>()
                    + c.prior_ln
            })
            .collect();
        // softmax with max-subtraction: posteriors in [0, 1], stable
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = log_scores.iter().map(|s| (s - max).exp()).collect();
        let z: f64 = exp.iter().sum();
        let scored = part
            .classes
            .iter()
            .zip(&exp)
            .map(|(c, e)| ScoredCode {
                code: c.code.clone(),
                score: e / z,
            })
            .collect();
        finish_ranking(scored, self.top_nodes)
    }
}

// ---------------------------------------------------------------------------
// One-vs-rest logistic regression
// ---------------------------------------------------------------------------

const LR_EPOCHS: usize = 20;
const LR_RATE: f64 = 0.5;
const LR_L2: f64 = 1e-3;

/// One part's one-vs-rest logistic state: a part-local dense feature index
/// plus one weight vector (and bias) per code.
#[derive(Debug, Clone)]
struct LrPart {
    /// Sorted distinct features of the part; position = dense column.
    vocab: Vec<u32>,
    classes: Vec<LrClass>,
}

#[derive(Debug, Clone)]
struct LrClass {
    code: String,
    weights: Vec<f64>,
    bias: f64,
}

/// One-vs-rest logistic regression over binary part-local features,
/// trained by deterministic full-batch-order SGD with L2 regularization.
/// Scores are per-class sigmoids.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    parts: HashMap<String, LrPart>,
    top_nodes: usize,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl LogisticModel {
    fn train(kb: &KnowledgeBase, top_nodes: usize) -> Self {
        let mut parts = HashMap::new();
        for part in kb.parts() {
            let part_nodes = kb.nodes_for_part(part);
            let mut vocab: Vec<u32> = part_nodes
                .iter()
                .flat_map(|&n| kb.nodes()[n].features.iter())
                .collect();
            vocab.sort_unstable();
            vocab.dedup();
            // densify each training document once
            let docs: Vec<(Vec<usize>, &str)> = part_nodes
                .iter()
                .map(|&n| {
                    let node = &kb.nodes()[n];
                    let cols = node
                        .features
                        .iter()
                        .map(|f| vocab.binary_search(&f).expect("feature in part vocab"))
                        .collect();
                    (cols, node.error_code.as_str())
                })
                .collect();
            let mut classes = Vec::new();
            for (code, _) in classes_of_part(kb, part) {
                let mut weights = vec![0.0f64; vocab.len()];
                let mut bias = 0.0f64;
                // deterministic SGD: fixed doc order, fixed epoch count —
                // no RNG, so retraining a snapshot reproduces the model
                for _ in 0..LR_EPOCHS {
                    for (cols, doc_code) in &docs {
                        let y = if *doc_code == code { 1.0 } else { 0.0 };
                        let z: f64 = bias + cols.iter().map(|&c| weights[c]).sum::<f64>();
                        let err = sigmoid(z) - y;
                        for &c in cols {
                            weights[c] -= LR_RATE * (err + LR_L2 * weights[c]);
                        }
                        bias -= LR_RATE * err;
                    }
                }
                classes.push(LrClass {
                    code,
                    weights,
                    bias,
                });
            }
            parts.insert(part.to_owned(), LrPart { vocab, classes });
        }
        LogisticModel { parts, top_nodes }
    }

    fn rank(&self, kb: &KnowledgeBase, part_id: &str, features: &FeatureSet) -> Vec<ScoredCode> {
        let Some(part) = self.parts.get(part_id) else {
            return unknown_part_fallback(kb, self.top_nodes);
        };
        let cols: Vec<usize> = features
            .iter()
            .filter_map(|f| part.vocab.binary_search(&f).ok())
            .collect();
        if cols.is_empty() {
            return Vec::new();
        }
        let scored = part
            .classes
            .iter()
            .map(|c| ScoredCode {
                code: c.code.clone(),
                score: sigmoid(c.bias + cols.iter().map(|&i| c.weights[i]).sum::<f64>()),
            })
            .collect();
        finish_ranking(scored, self.top_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E100", fs(&[1, 2, 3]));
        kb.insert("P-01", "E100", fs(&[1, 2, 4]));
        kb.insert("P-01", "E200", fs(&[7, 8, 9]));
        kb.insert("P-01", "E200", fs(&[7, 8, 10]));
        kb.insert("P-02", "E900", fs(&[1, 2, 3]));
        kb
    }

    fn train(family: ClassifierFamily) -> RankerModel {
        RankerConfig::new(family, SimilarityMeasure::Jaccard).train(&kb())
    }

    #[test]
    fn family_labels_round_trip() {
        for family in ClassifierFamily::ALL {
            assert_eq!(ClassifierFamily::parse(family.label()), Ok(family));
        }
        let err = ClassifierFamily::parse("svm").unwrap_err();
        assert_eq!(err.label, "svm");
        assert!(err.to_string().contains("svm"));
    }

    #[test]
    fn every_family_recovers_its_training_class() {
        let kb = kb();
        for family in ClassifierFamily::ALL {
            let model = train(family);
            assert_eq!(model.family(), family);
            let ranked = model.rank(&kb, None, "P-01", &fs(&[1, 2, 3]));
            assert_eq!(
                ranked.first().map(|s| s.code.as_str()),
                Some("E100"),
                "{family:?} missed its own training data"
            );
            let ranked = model.rank(&kb, None, "P-01", &fs(&[7, 8, 9]));
            assert_eq!(
                ranked.first().map(|s| s.code.as_str()),
                Some("E200"),
                "{family:?} missed its own training data"
            );
        }
    }

    #[test]
    fn shared_ranking_conventions() {
        let kb = kb();
        for family in ClassifierFamily::ALL {
            let model = train(family);
            // known part, zero overlap → empty
            assert!(
                model.rank(&kb, None, "P-01", &fs(&[777])).is_empty(),
                "{family:?} invented candidates"
            );
            // empty features on a known part → empty
            assert!(model
                .rank(&kb, None, "P-01", &FeatureSet::default())
                .is_empty());
            // unknown part → whole-KB fallback, scored 0, identical across
            // families (it is the shared helper and the paper's rule)
            let fallback = model.rank(&kb, None, "P-??", &fs(&[777]));
            assert!(!fallback.is_empty(), "{family:?} dropped the fallback");
            assert!(fallback.iter().all(|s| s.score == 0.0));
            // part isolation
            let ranked = model.rank(&kb, None, "P-01", &fs(&[1, 2, 3]));
            assert!(ranked.iter().all(|s| s.code != "E900"), "{family:?}");
            // scores sorted descending, bounded
            for w in ranked.windows(2) {
                assert!(w[0].score >= w[1].score, "{family:?} unsorted");
            }
            assert!(ranked.iter().all(|s| (0.0..=1.0).contains(&s.score)));
        }
    }

    #[test]
    fn fallback_matches_knn_fallback() {
        let kb = kb();
        let knn = RankedKnn::default();
        assert_eq!(
            unknown_part_fallback(&kb, 25),
            knn.rank(&kb, "P-??", &fs(&[777]))
        );
    }

    #[test]
    fn rank_batch_matches_sequential_rank() {
        let kb = kb();
        let idx = SealedIndex::build(&kb);
        let queries_owned = [
            ("P-01", fs(&[1, 2, 3])),
            ("P-01", fs(&[7, 8])),
            ("P-02", fs(&[1, 2])),
            ("P-??", fs(&[777])),
            ("P-01", fs(&[])),
        ];
        let queries: Vec<BatchQuery<'_>> = queries_owned
            .iter()
            .map(|(p, f)| BatchQuery {
                part_id: p,
                features: f,
            })
            .collect();
        for family in ClassifierFamily::ALL {
            let model = train(family);
            let expected: Vec<_> = queries
                .iter()
                .map(|q| model.rank(&kb, Some(&idx), q.part_id, q.features))
                .collect();
            assert_eq!(
                model.rank_batch(&kb, Some(&idx), &queries),
                expected,
                "{family:?} batch/sequential divergence"
            );
            // and independent of whether a sealed index is supplied
            assert_eq!(
                model.rank_batch(&kb, None, &queries),
                expected,
                "{family:?}"
            );
        }
    }

    #[test]
    fn knn_ranker_is_the_existing_kernel() {
        let kb = kb();
        let model = train(ClassifierFamily::Knn);
        let knn = RankedKnn::new(SimilarityMeasure::Jaccard);
        for (part, q) in [
            ("P-01", fs(&[1, 2, 3])),
            ("P-??", fs(&[9])),
            ("P-02", fs(&[1])),
        ] {
            assert_eq!(model.rank(&kb, None, part, &q), knn.rank(&kb, part, &q));
        }
    }

    #[test]
    fn classifier_is_object_safe_and_usable_as_trait_object() {
        let kb = kb();
        let models: Vec<Box<dyn Classifier>> = ClassifierFamily::ALL
            .iter()
            .map(|&f| Box::new(train(f)) as Box<dyn Classifier>)
            .collect();
        for model in &models {
            let ranked = model.rank(&kb, None, "P-01", &fs(&[1, 2, 3]));
            assert!(!ranked.is_empty());
        }
    }

    #[test]
    fn family_counters_attribute_traffic() {
        let m = crate::metrics::metrics();
        let kb = kb();
        let model = train(ClassifierFamily::Centroid);
        let before = m.rank_family_centroid_total.get();
        model.rank(&kb, None, "P-01", &fs(&[1, 2]));
        let q = [BatchQuery {
            part_id: "P-01",
            features: &fs(&[1, 2]),
        }];
        model.rank_batch(&kb, None, &q);
        // other parallel tests may bump the counters too, so assert with ≥
        assert!(m.rank_family_centroid_total.get() >= before + 2);
    }
}
