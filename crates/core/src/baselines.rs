//! The paper's two text-free baselines (§5.1).
//!
//! 1. **Code frequency baseline**: "all error codes which are available in
//!    the database for the part ID of the data bundle under consideration
//!    are sorted by their frequency in this database, and the first k
//!    returned."
//! 2. **Unsorted candidate set baseline**: the candidate nodes of §4.3
//!    (same part ID, ≥ 1 shared feature) *without* similarity sorting.

use std::collections::HashMap;

use crate::features::FeatureSet;
use crate::knowledge::KnowledgeBase;

/// Code-frequency baseline, trained from (part_id, error_code) pairs.
#[derive(Debug, Default, Clone)]
pub struct CodeFrequencyBaseline {
    /// part -> codes ranked by descending training frequency.
    ranked: HashMap<String, Vec<String>>,
    /// global ranking, used for unknown part IDs.
    global: Vec<String>,
}

impl CodeFrequencyBaseline {
    /// Build from training assignments.
    pub fn train<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut per_part: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
        let mut global: HashMap<&str, usize> = HashMap::new();
        for (part, code) in pairs {
            *per_part.entry(part).or_default().entry(code).or_insert(0) += 1;
            *global.entry(code).or_insert(0) += 1;
        }
        let rank = |counts: HashMap<&str, usize>| -> Vec<String> {
            let mut v: Vec<(&str, usize)> = counts.into_iter().collect();
            // descending frequency, ties lexicographic for determinism
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            v.into_iter().map(|(c, _)| c.to_owned()).collect()
        };
        CodeFrequencyBaseline {
            ranked: per_part
                .into_iter()
                .map(|(p, counts)| (p.to_owned(), rank(counts)))
                .collect(),
            global: rank(global),
        }
    }

    /// Ranked code list for a part ID (global list for unknown parts).
    pub fn rank(&self, part_id: &str) -> &[String] {
        self.ranked
            .get(part_id)
            .map(Vec::as_slice)
            .unwrap_or(&self.global)
    }

    /// Number of part IDs with a ranking.
    pub fn part_count(&self) -> usize {
        self.ranked.len()
    }
}

/// Unsorted candidate-set baseline: the codes of the candidate nodes,
/// deduplicated, *not* similarity-ranked. "Unsorted" here means sorted by
/// nothing meaningful — we emit codes in lexicographic order, which is
/// deterministic but uncorrelated with frequency or similarity, matching the
/// paper's near-linear accuracy growth (<1 % @1 rising to ≈83 % @25).
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateSetBaseline;

impl CandidateSetBaseline {
    /// Produce the unsorted code list for one query.
    pub fn rank(&self, kb: &KnowledgeBase, part_id: &str, features: &FeatureSet) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for idx in kb.candidates(part_id, features) {
            let code = &kb.nodes()[idx].error_code;
            if !out.iter().any(|c| c == code) {
                out.push(code.clone());
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_ranking_per_part() {
        let pairs = [
            ("P-01", "E2"),
            ("P-01", "E2"),
            ("P-01", "E2"),
            ("P-01", "E1"),
            ("P-01", "E1"),
            ("P-01", "E3"),
            ("P-02", "E9"),
        ];
        let b = CodeFrequencyBaseline::train(pairs);
        assert_eq!(b.rank("P-01"), &["E2", "E1", "E3"]);
        assert_eq!(b.rank("P-02"), &["E9"]);
        assert_eq!(b.part_count(), 2);
    }

    #[test]
    fn unknown_part_uses_global_ranking() {
        let pairs = [("P-01", "E1"), ("P-01", "E1"), ("P-02", "E9")];
        let b = CodeFrequencyBaseline::train(pairs);
        assert_eq!(b.rank("P-77"), &["E1", "E9"]);
    }

    #[test]
    fn ties_break_lexicographically() {
        let pairs = [("P-01", "EB"), ("P-01", "EA")];
        let b = CodeFrequencyBaseline::train(pairs);
        assert_eq!(b.rank("P-01"), &["EA", "EB"]);
    }

    #[test]
    fn empty_training() {
        let b = CodeFrequencyBaseline::train(std::iter::empty::<(&str, &str)>());
        assert!(b.rank("P-01").is_empty());
        assert_eq!(b.part_count(), 0);
    }

    #[test]
    fn candidate_set_is_unsorted_but_deduped() {
        let fs = |ids: &[u32]| FeatureSet::from_unsorted(ids.to_vec());
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E1", fs(&[1, 2]));
        kb.insert("P-01", "E2", fs(&[2, 3]));
        kb.insert("P-01", "E1", fs(&[2, 9]));
        kb.insert("P-01", "E3", fs(&[7]));
        let ranked = CandidateSetBaseline.rank(&kb, "P-01", &fs(&[2]));
        // nodes 0,1,2 share feature 2 → codes E1, E2 (deduped), E3 absent
        assert_eq!(ranked, vec!["E1", "E2"]);
    }

    #[test]
    fn candidate_set_respects_part() {
        let fs = |ids: &[u32]| FeatureSet::from_unsorted(ids.to_vec());
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E1", fs(&[1]));
        kb.insert("P-02", "E2", fs(&[1]));
        let ranked = CandidateSetBaseline.rank(&kb, "P-01", &fs(&[1]));
        assert_eq!(ranked, vec!["E1"]);
    }
}
