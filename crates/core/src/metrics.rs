//! Classifier-kernel metrics (DESIGN.md §7): per-query ranking latency and
//! candidate volume, early-return skips, and batch worker utilization,
//! registered under the `qatk_core_*` prefix.

use std::sync::OnceLock;

use qatk_obs::{Counter, Gauge, Histogram, Registry, Sampler};

/// 1-in-N sampling period for per-query latency/candidate histograms. The
/// rank kernel runs in about a microsecond; clocking every query costs more
/// than the query. Counters are not sampled and stay exact.
const RANK_SAMPLE_PERIOD: u64 = 16;

/// Handles to every `qatk_core_*` metric.
pub struct CoreMetrics {
    /// Ranking queries served (kernel and majority-vote paths).
    pub rank_queries_total: &'static Counter,
    /// Sampling gate for `rank_latency_ns` / `rank_candidates`.
    pub rank_sample: Sampler,
    /// Queries that took an early return — unknown part with zero overlap,
    /// empty feature set, or an empty candidate set (no kernel work done).
    pub classifier_skipped_total: &'static Counter,
    /// Candidate nodes touched by the score accumulator, per query.
    pub rank_candidates: &'static Histogram,
    /// Ranking queries served by the LSH-pruned sealed path.
    pub rank_pruned_total: &'static Counter,
    /// Candidate nodes surviving the LSH prefilter, per pruned query.
    pub lsh_candidates: &'static Histogram,
    /// Wall time of one ranked-kNN query (ns).
    pub rank_latency_ns: &'static Histogram,
    /// `classify_batch` invocations.
    pub batch_total: &'static Counter,
    /// Queries per `classify_batch` call.
    pub batch_size: &'static Histogram,
    /// Worker threads used by the most recent batch.
    pub batch_workers: &'static Gauge,
    /// Per-worker busy time inside a batch (ns) — compare against
    /// `qatk_core_batch_wall_ns` for utilization.
    pub batch_worker_busy_ns: &'static Histogram,
    /// Wall time of one whole `classify_batch` call (ns).
    pub batch_wall_ns: &'static Histogram,
    /// Ranking queries attributed to each classifier family — incremented
    /// by the [`crate::zoo::RankerModel`] dispatch layer (one bump per
    /// ranked query, batches count every query), so serving traffic is
    /// attributable to a model while the kernel counters above stay exact
    /// and family-agnostic.
    pub rank_family_knn_total: &'static Counter,
    pub rank_family_centroid_total: &'static Counter,
    pub rank_family_naive_bayes_total: &'static Counter,
    pub rank_family_logistic_total: &'static Counter,
}

impl CoreMetrics {
    /// The per-family attribution counter for one classifier family.
    pub fn rank_family_total(&self, family: crate::zoo::ClassifierFamily) -> &'static Counter {
        use crate::zoo::ClassifierFamily::*;
        match family {
            Knn => self.rank_family_knn_total,
            Centroid => self.rank_family_centroid_total,
            NaiveBayes => self.rank_family_naive_bayes_total,
            Logistic => self.rank_family_logistic_total,
        }
    }
}

/// The core-layer metric handles (registered on first use).
pub fn metrics() -> &'static CoreMetrics {
    static M: OnceLock<CoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        CoreMetrics {
            rank_queries_total: r.counter(
                "qatk_core_rank_queries_total",
                "ranking queries served by the kNN kernel",
            ),
            rank_sample: Sampler::new(RANK_SAMPLE_PERIOD),
            classifier_skipped_total: r.counter(
                "qatk_core_classifier_skipped_total",
                "queries resolved by an early return (unknown part / empty features / no candidates)",
            ),
            rank_candidates: r.histogram(
                "qatk_core_rank_candidates",
                "candidate nodes touched per ranking query (sampled 1-in-16)",
            ),
            rank_pruned_total: r.counter(
                "qatk_core_rank_pruned_total",
                "ranking queries served by the LSH-pruned sealed path",
            ),
            lsh_candidates: r.histogram(
                "qatk_core_lsh_candidates",
                "candidate nodes surviving the LSH prefilter (sampled 1-in-16)",
            ),
            rank_latency_ns: r.histogram(
                "qatk_core_rank_latency_ns",
                "ranked-kNN query latency (ns, sampled 1-in-16)",
            ),
            batch_total: r.counter(
                "qatk_core_batch_total",
                "classify_batch invocations",
            ),
            batch_size: r.histogram(
                "qatk_core_batch_size",
                "queries per classify_batch call",
            ),
            batch_workers: r.gauge(
                "qatk_core_batch_workers",
                "worker threads used by the most recent classify_batch",
            ),
            batch_worker_busy_ns: r.histogram(
                "qatk_core_batch_worker_busy_ns",
                "per-worker busy time inside classify_batch (ns)",
            ),
            batch_wall_ns: r.histogram(
                "qatk_core_batch_wall_ns",
                "classify_batch wall time (ns)",
            ),
            rank_family_knn_total: r.counter(
                "qatk_core_rank_family_knn_total",
                "ranking queries served by the knn classifier family",
            ),
            rank_family_centroid_total: r.counter(
                "qatk_core_rank_family_centroid_total",
                "ranking queries served by the centroid classifier family",
            ),
            rank_family_naive_bayes_total: r.counter(
                "qatk_core_rank_family_naive_bayes_total",
                "ranking queries served by the naive-bayes classifier family",
            ),
            rank_family_logistic_total: r.counter(
                "qatk_core_rank_family_logistic_total",
                "ranking queries served by the logistic classifier family",
            ),
        }
    })
}
