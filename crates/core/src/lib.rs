//! # qatk-core — the Quality Analytics Toolkit's classification core
//!
//! This crate implements the paper's primary contribution: the ranked-list
//! kNN-derived error-code recommendation over domain-specific
//! (bag-of-concepts) and domain-ignorant (bag-of-words) feature abstractions
//! (paper §4), plus the evaluation machinery of §5:
//!
//! * [`interner`] / [`features`] — feature spaces and the three data
//!   abstraction models;
//! * [`knowledge`] — the deduplicated knowledge base with part-ID and
//!   inverted-feature indexes, persisted relationally;
//! * [`similarity`] — Jaccard and overlap (paper) plus Dice/cosine
//!   (extensions);
//! * [`classifier`] — the ranked-list kNN of §4.3;
//! * [`zoo`] — the pluggable classifier zoo ([`zoo::Classifier`] trait:
//!   kNN, centroid/Rocchio, multinomial naive Bayes, one-vs-rest logistic
//!   regression) trained at snapshot seal time;
//! * [`segment`] / [`lsh`] — the sealed-snapshot index segment:
//!   delta+varint-compressed posting arena and the minhash/LSH candidate
//!   prefilter for million-node corpora;
//! * [`baselines`] — the code-frequency and candidate-set baselines of §5.1;
//! * [`eval`] — Accuracy@k and stratified k-fold CV;
//! * [`pipeline`] — end-to-end experiment orchestration with parallel folds
//!   and per-bundle timing.
//!
//! ## Example
//!
//! ```
//! use qatk_core::prelude::*;
//! use qatk_corpus::prelude::*;
//!
//! let corpus = Corpus::generate(CorpusConfig::small(1));
//! let config = ClassifierConfig {
//!     model: FeatureModel::BagOfConcepts,
//!     folds: 2,
//!     ..ClassifierConfig::default()
//! };
//! let result = run_experiment(&corpus, &config);
//! assert!(result.classifier.at(25).unwrap() >= result.classifier.at(1).unwrap());
//! ```

pub mod baselines;
pub mod bootstrap;
pub mod classifier;
pub mod eval;
pub mod features;
pub mod interner;
pub mod knowledge;
pub mod lsh;
pub mod metrics;
pub mod pipeline;
pub mod segment;
pub mod similarity;
pub mod snapshot;
pub mod zoo;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baselines::{CandidateSetBaseline, CodeFrequencyBaseline};
    pub use crate::bootstrap::{hits_at_k, paired_bootstrap, BootstrapResult};
    pub use crate::classifier::{BatchQuery, MajorityVoteKnn, RankedKnn, ScoredCode};
    pub use crate::eval::{stratified_folds, AccuracyCounter, F1Counter, PAPER_KS};
    pub use crate::features::{
        CharNgramExtractor, ConceptExtractor, FeatureExtractor, FeatureModel, FeatureSet,
        FeatureSpace, FrozenFeatureSpace, ModelExtractor, ParseModelError, TokenResolver,
        WordExtractor,
    };
    pub use crate::interner::Interner;
    pub use crate::knowledge::{KnowledgeBase, KnowledgeNode, ScoreScratch};
    pub use crate::lsh::{LshIndex, LshParams};
    pub use crate::pipeline::{
        build_pipeline, run_experiment, AccuracyCurve, ClassifierConfig, ExperimentResult,
    };
    pub use crate::segment::{
        decode_sorted, encode_sorted, read_varint, write_varint, CodecError, PostingArena,
        SealedIndex,
    };
    pub use crate::similarity::SimilarityMeasure;
    pub use crate::snapshot::{EpochCell, KnowledgeSnapshot, SnapshotBuilder};
    pub use crate::zoo::{
        Classifier, ClassifierFamily, ParseFamilyError, RankerConfig, RankerModel,
    };
}

pub use prelude::*;
