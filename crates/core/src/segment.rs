//! Sealed immutable index segments: every posting list delta+varint-encoded
//! into one contiguous byte arena, built once at snapshot seal time.
//!
//! The live [`crate::knowledge::KnowledgeBase`] keeps its inverted index as
//! `HashMap<u32, Vec<usize>>` — ideal for incremental inserts, terrible for
//! scanning a million-entry posting list: 8 bytes per node index, scattered
//! allocations, hash probing per feature. At seal time this module lays the
//! same postings out the way a search engine segment does:
//!
//! * node indexes are sorted ascending (insertion already guarantees it), so
//!   each list is stored as **deltas** between consecutive ids;
//! * deltas are **LEB128 varints** — dense lists (hot boilerplate features)
//!   collapse to ~1 byte per posting, an 8× size cut over the `Vec<usize>`
//!   representation, which is a memory-bandwidth cut on every query;
//! * all lists live in **one `Vec<u8>` arena** indexed by a flat offset
//!   table, so a query's feature walk is a few contiguous forward scans.
//!
//! Decoding happens block-at-a-time into a stack buffer with a u64-lane fast
//! path: when the next 8 bytes all have the continuation bit clear (the
//! common case on dense lists), one u64 load yields 8 complete deltas with no
//! per-byte branching.
//!
//! Two decode surfaces with different trust models:
//! * [`decode_sorted`] / [`read_varint`] — checked, for *untrusted* bytes
//!   (persistence, corrupt files): truncation and overflow return
//!   [`CodecError`], never panic;
//! * [`SealedIndex::accumulate_into`] — the trusted hot path over the arena
//!   this process encoded itself (wrapping arithmetic, no validation).
//!
//! [`SealedIndex`] bundles the arena with per-node metadata (dense part
//! index, feature-set cardinality) and the [`crate::lsh::LshIndex`]
//! prefilter, and is rebuilt from the knowledge base on every snapshot seal.

use std::fmt;

use crate::features::FeatureSet;
use crate::knowledge::{KnowledgeBase, ScoreScratch};
use crate::lsh::LshIndex;

/// Decode failure on untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended inside a varint or before `count` values were read.
    Truncated,
    /// A varint exceeded 32 bits, or the delta sum overflowed `u32`.
    Overflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "varint stream truncated"),
            CodecError::Overflow => write!(f, "varint value overflows u32"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append one u32 as an LEB128 varint (1–5 bytes, little-endian groups of 7
/// bits, high bit = continuation).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one varint from `buf` starting at `*pos`, advancing `*pos`. Checked:
/// truncation and 32-bit overflow are errors, never panics.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u32;
        if shift >= 32 || (shift == 28 && payload > 0x0f) {
            return Err(CodecError::Overflow);
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Delta+varint-encode a sorted (non-decreasing) id list. Every value is
/// stored as the delta from its predecessor (the first from 0), so the
/// encoding is uniform and [`decode_sorted`] needs no special first case.
///
/// Panics in debug builds if `ids` is not sorted; in release an unsorted
/// input silently encodes garbage deltas (the wrapping subtraction) — all
/// call sites encode lists that are sorted by construction.
pub fn encode_sorted(ids: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for &id in ids {
        debug_assert!(id >= prev, "encode_sorted input must be sorted");
        write_varint(out, id.wrapping_sub(prev));
        prev = id;
    }
}

/// Decode `count` delta+varint values from untrusted bytes back into
/// absolute ids. Inverse of [`encode_sorted`]; checked end to end.
pub fn decode_sorted(buf: &[u8], count: usize) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev = 0u32;
    for _ in 0..count {
        let delta = read_varint(buf, &mut pos)?;
        prev = prev.checked_add(delta).ok_or(CodecError::Overflow)?;
        out.push(prev);
    }
    Ok(out)
}

/// Decode block size: big enough to amortize loop overhead, small enough to
/// stay in L1 (512 bytes).
const BLOCK: usize = 128;

/// Streaming block decoder over one trusted arena list: fills a caller
/// buffer with up to [`BLOCK`] absolute ids per call.
struct BlockDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u32,
}

impl<'a> BlockDecoder<'a> {
    fn new(bytes: &'a [u8], count: usize) -> Self {
        BlockDecoder {
            bytes,
            pos: 0,
            remaining: count,
            prev: 0,
        }
    }

    /// Decode the next block of absolute ids into `out`; returns how many
    /// were produced (0 = exhausted).
    #[inline]
    fn next_block(&mut self, out: &mut [u32; BLOCK]) -> usize {
        let n = self.remaining.min(BLOCK);
        let mut i = 0;
        while i < n {
            // u64 lane: if the next 8 bytes all have the continuation bit
            // clear, they are 8 complete 1-byte deltas — decode them from a
            // single load. Dense (delta ≤ 127) regions take this path.
            if n - i >= 8 && self.bytes.len() - self.pos >= 8 {
                let word = u64::from_le_bytes(
                    self.bytes[self.pos..self.pos + 8]
                        .try_into()
                        .expect("8 bytes"),
                );
                if word & 0x8080_8080_8080_8080 == 0 {
                    let mut prev = self.prev;
                    for k in 0..8 {
                        prev = prev.wrapping_add(((word >> (k * 8)) & 0x7f) as u32);
                        out[i + k] = prev;
                    }
                    self.prev = prev;
                    self.pos += 8;
                    i += 8;
                    continue;
                }
            }
            // scalar varint (trusted: no truncation/overflow checks)
            let mut delta = 0u32;
            let mut shift = 0u32;
            loop {
                let byte = self.bytes[self.pos];
                self.pos += 1;
                delta |= ((byte & 0x7f) as u32) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            self.prev = self.prev.wrapping_add(delta);
            out[i] = self.prev;
            i += 1;
        }
        self.remaining -= n;
        n
    }
}

/// All posting lists of one sealed segment in a single contiguous byte
/// arena: list `i` owns `bytes[offsets[i]..offsets[i+1]]` holding
/// `counts[i]` delta+varint-encoded entries.
#[derive(Debug, Default, Clone)]
pub struct PostingArena {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
    counts: Vec<u32>,
}

impl PostingArena {
    pub fn new() -> Self {
        PostingArena {
            bytes: Vec::new(),
            offsets: vec![0],
            counts: Vec::new(),
        }
    }

    /// Append the next list (list ids are assigned densely in push order).
    pub fn push_list(&mut self, ids: &[u32]) {
        encode_sorted(ids, &mut self.bytes);
        let end = u32::try_from(self.bytes.len()).expect("posting arena under 4 GiB");
        self.offsets.push(end);
        self.counts
            .push(u32::try_from(ids.len()).expect("posting list under 4G entries"));
    }

    /// Number of lists.
    pub fn n_lists(&self) -> usize {
        self.counts.len()
    }

    /// Total encoded bytes.
    pub fn arena_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Total postings across all lists.
    pub fn n_postings(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Entry count of list `i` (0 when `i` is out of range — absent features
    /// have empty postings).
    pub fn count(&self, i: usize) -> usize {
        self.counts.get(i).map(|&c| c as usize).unwrap_or(0)
    }

    /// Raw encoded bytes of list `i`.
    pub fn list_bytes(&self, i: usize) -> &[u8] {
        if i >= self.counts.len() {
            return &[];
        }
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Decode list `i` fully (cold paths and tests; the hot path streams
    /// blocks instead).
    pub fn decode_list(&self, i: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count(i));
        self.for_each(i, |id| out.push(id));
        out
    }

    /// Stream every absolute id of list `i` through `f`, block-at-a-time.
    #[inline]
    pub fn for_each(&self, i: usize, mut f: impl FnMut(u32)) {
        let mut dec = BlockDecoder::new(self.list_bytes(i), self.count(i));
        let mut block = [0u32; BLOCK];
        loop {
            let n = dec.next_block(&mut block);
            if n == 0 {
                return;
            }
            for &id in &block[..n] {
                f(id);
            }
        }
    }
}

/// The immutable per-snapshot index segment: compressed postings, per-node
/// metadata, and the minhash/LSH prefilter. Built by [`SealedIndex::build`]
/// at snapshot seal time; node indexes are identical to the knowledge base's
/// (no reordering), so rankings computed here tie-break exactly like the
/// `KnowledgeBase` paths.
#[derive(Debug, Default, Clone)]
pub struct SealedIndex {
    n_nodes: usize,
    /// Dense part index per node, aligned with the knowledge base.
    node_parts: Vec<u32>,
    /// Feature-set cardinality per node (the |B| of every similarity score).
    node_lens: Vec<u32>,
    /// One posting list per feature id in `0..=max_feature_id`.
    postings: PostingArena,
    lsh: LshIndex,
}

impl SealedIndex {
    /// Build the segment from a knowledge base: encode every posting list
    /// into the arena and index every node into the LSH tables.
    pub fn build(kb: &KnowledgeBase) -> SealedIndex {
        let n_nodes = kb.len();
        let node_parts = kb.node_parts().to_vec();
        let node_lens: Vec<u32> = kb.nodes().iter().map(|n| n.features.len() as u32).collect();
        let n_features = kb.max_feature_id().map(|m| m as usize + 1).unwrap_or(0);
        let mut postings = PostingArena::new();
        let mut ids: Vec<u32> = Vec::new();
        for f in 0..n_features {
            ids.clear();
            ids.extend(kb.postings_for(f as u32).iter().map(|&n| n as u32));
            postings.push_list(&ids);
        }
        let lsh = LshIndex::build(
            kb.nodes().iter().map(|n| n.features.ids()),
            Default::default(),
        );
        SealedIndex {
            n_nodes,
            node_parts,
            node_lens,
            postings,
            lsh,
        }
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The compressed posting arena.
    pub fn postings(&self) -> &PostingArena {
        &self.postings
    }

    /// The minhash/LSH prefilter.
    pub fn lsh(&self) -> &LshIndex {
        &self.lsh
    }

    /// Feature-set cardinality of a node.
    #[inline]
    pub fn node_len(&self, node: u32) -> usize {
        self.node_lens[node as usize] as usize
    }

    /// Dense part index of a node.
    #[inline]
    pub fn node_part(&self, node: u32) -> u32 {
        self.node_parts[node as usize]
    }

    /// The exact score-accumulation kernel over compressed postings: walks
    /// each query feature's list block-at-a-time and accumulates |A ∩ B| per
    /// node into `scratch`, applying the same inline part filter as
    /// [`KnowledgeBase::accumulate_counts`] (`Some(p)`: only part `p`'s
    /// nodes; `None`: every node). Counts and touched sets are identical to
    /// the `HashMap` path — only the memory layout differs.
    pub fn accumulate_into(
        &self,
        part: Option<u32>,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) {
        scratch.begin(self.n_nodes);
        let mut block = [0u32; BLOCK];
        for f in features.iter() {
            let i = f as usize;
            let count = self.postings.count(i);
            if count == 0 {
                continue;
            }
            let mut dec = BlockDecoder::new(self.postings.list_bytes(i), count);
            loop {
                let n = dec.next_block(&mut block);
                if n == 0 {
                    break;
                }
                match part {
                    Some(p) => {
                        for &node in &block[..n] {
                            if self.node_parts[node as usize] == p {
                                scratch.bump(node);
                            }
                        }
                    }
                    None => {
                        for &node in &block[..n] {
                            scratch.bump(node);
                        }
                    }
                }
            }
        }
    }

    /// LSH candidate generation: every node sharing at least one band bucket
    /// with the query lands in `scratch.touched()` (deduplicated), subject
    /// to the same part filter as the exact kernel. The touched nodes carry
    /// band-collision counts, NOT intersection counts — callers re-score
    /// candidates exactly against the query feature set.
    pub fn lsh_candidates_into(
        &self,
        part: Option<u32>,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) {
        scratch.begin(self.n_nodes);
        self.lsh
            .for_each_candidate(features.ids(), |node| match part {
                Some(p) => {
                    if self.node_parts[node as usize] == p {
                        scratch.bump(node);
                    }
                }
                None => scratch.bump(node),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    #[test]
    fn varint_reference_values() {
        let cases: [(u32, &[u8]); 6] = [
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (u32::MAX, &[0xff, 0xff, 0xff, 0xff, 0x0f]),
        ];
        for (v, bytes) in cases {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out, bytes, "encoding of {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), Ok(v));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn read_varint_rejects_garbage() {
        // truncated mid-varint
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80], &mut pos),
            Err(CodecError::Truncated)
        );
        // empty
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), Err(CodecError::Truncated));
        // 5th byte with payload beyond 32 bits
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0xff, 0xff, 0xff, 0xff, 0x1f], &mut pos),
            Err(CodecError::Overflow)
        );
        // 6+ bytes of continuation
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut pos),
            Err(CodecError::Overflow)
        );
    }

    #[test]
    fn roundtrip_known_lists() {
        let lists: [&[u32]; 6] = [
            &[],
            &[0],
            &[5, 5, 5],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            &[100, 228, 1000, 70000, u32::MAX],
            &[u32::MAX],
        ];
        for ids in lists {
            let mut buf = Vec::new();
            encode_sorted(ids, &mut buf);
            assert_eq!(decode_sorted(&buf, ids.len()).unwrap(), ids);
        }
    }

    #[test]
    fn decode_sorted_overflow_and_truncation() {
        let mut buf = Vec::new();
        encode_sorted(&[u32::MAX], &mut buf);
        write_varint(&mut buf, 1); // second delta pushes the sum past u32::MAX
        assert_eq!(decode_sorted(&buf, 2), Err(CodecError::Overflow));
        // asking for more values than encoded
        let mut buf = Vec::new();
        encode_sorted(&[1, 2, 3], &mut buf);
        assert_eq!(decode_sorted(&buf, 4), Err(CodecError::Truncated));
    }

    #[test]
    fn arena_roundtrip_and_block_decode() {
        let mut arena = PostingArena::new();
        // dense list long enough to exercise the u64 lane across blocks
        let dense: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        // sparse list with multi-byte deltas breaking the lane
        let sparse: Vec<u32> = vec![7, 1000, 1001, 500_000, 500_001, 4_000_000_000];
        arena.push_list(&dense);
        arena.push_list(&[]);
        arena.push_list(&sparse);
        assert_eq!(arena.n_lists(), 3);
        assert_eq!(arena.decode_list(0), dense);
        assert!(arena.decode_list(1).is_empty());
        assert_eq!(arena.decode_list(2), sparse);
        // out-of-range list behaves as empty
        assert_eq!(arena.count(99), 0);
        assert!(arena.decode_list(99).is_empty());
        // dense deltas are all 1-byte: compression actually happened
        assert!(arena.arena_bytes() < dense.len() + 6 * 5 + 1);
        assert_eq!(arena.n_postings(), dense.len() + sparse.len());
    }

    fn test_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E100", fs(&[1, 2, 3]));
        kb.insert("P-01", "E200", fs(&[3, 4]));
        kb.insert("P-01", "E100", fs(&[1, 9]));
        kb.insert("P-02", "E300", fs(&[2, 5]));
        kb
    }

    #[test]
    fn sealed_counts_match_knowledge_base() {
        let kb = test_kb();
        let idx = SealedIndex::build(&kb);
        assert_eq!(idx.n_nodes(), kb.len());
        let queries = [
            ("P-01", fs(&[3])),
            ("P-01", fs(&[1, 2, 3])),
            ("P-02", fs(&[2, 5])),
            ("P-99", fs(&[2])),
            ("P-01", fs(&[777])),
            ("P-01", FeatureSet::default()),
        ];
        for (part_id, q) in &queries {
            let mut a = ScoreScratch::new();
            kb.accumulate_counts(part_id, q, &mut a);
            let mut b = ScoreScratch::new();
            idx.accumulate_into(kb.part_index(part_id), q, &mut b);
            let mut ta: Vec<u32> = a.touched().to_vec();
            let mut tb: Vec<u32> = b.touched().to_vec();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(ta, tb, "touched mismatch for {part_id}");
            for &n in &ta {
                assert_eq!(a.count(n), b.count(n), "count mismatch at node {n}");
            }
        }
    }

    #[test]
    fn sealed_postings_are_compressed_kb_postings() {
        let kb = test_kb();
        let idx = SealedIndex::build(&kb);
        for f in 0..=kb.max_feature_id().unwrap() {
            let expect: Vec<u32> = kb.postings_for(f).iter().map(|&n| n as u32).collect();
            assert_eq!(
                idx.postings().decode_list(f as usize),
                expect,
                "feature {f}"
            );
        }
        assert_eq!(idx.node_len(0), 3);
        assert_eq!(idx.node_part(3), kb.part_index("P-02").unwrap());
    }

    #[test]
    fn empty_kb_builds_empty_segment() {
        let idx = SealedIndex::build(&KnowledgeBase::new());
        assert_eq!(idx.n_nodes(), 0);
        assert_eq!(idx.postings().n_lists(), 0);
        let mut s = ScoreScratch::new();
        idx.accumulate_into(None, &fs(&[1, 2]), &mut s);
        assert!(s.touched().is_empty());
        idx.lsh_candidates_into(None, &fs(&[1, 2]), &mut s);
        assert!(s.touched().is_empty());
    }
}
