//! String interning for word features.
//!
//! The bag-of-words model needs a compact numeric feature space; interning
//! normalized tokens once keeps feature sets as sorted `u32` arrays and makes
//! pairwise similarity a merge-scan rather than string hashing (the paper's
//! §5.2.2 feasibility concern is exactly the cost of these comparisons).

use std::collections::HashMap;

/// Append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its stable id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        id
    }

    /// Look up without inserting.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolve an id back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// All interned strings in id order (id `i` is the `i`-th name).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("luefter");
        let b = i.intern("luefter");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("kontakt");
        let b = i.intern("defekt");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("durchgeschmort");
        assert_eq!(i.resolve(id), Some("durchgeschmort"));
        assert_eq!(i.resolve(999), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("radio"), None);
        assert!(i.is_empty());
        i.intern("radio");
        assert_eq!(i.get("radio"), Some(0));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for (k, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(w), k as u32);
        }
    }
}
