//! Feature sets and their extraction from processed CASes.
//!
//! The paper compares two data abstraction models (§4.3): the
//! domain-ignorant **bag-of-words** ("we use all words in the text") and the
//! domain-specific **bag-of-concepts** ("mentions of parts and errors as
//! features ... concept mentions as attributes without distinguishing
//! between types"). §5.2.2 adds the stopword-filtered bag-of-words variant.
//! Features are *sets* — both similarity measures operate on shared/total
//! attribute counts.

use qatk_text::cas::Cas;
use qatk_text::stopwords::StopwordList;

use crate::interner::Interner;

/// A sorted, deduplicated set of numeric features.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FeatureSet(Vec<u32>);

impl FeatureSet {
    /// Build from arbitrary ids (sorts + dedups).
    pub fn from_unsorted(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        FeatureSet(ids)
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    pub fn contains(&self, id: u32) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// |A ∩ B| by merge scan over the sorted id arrays.
    pub fn intersection_size(&self, other: &FeatureSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// |A ∪ B| = |A| + |B| − |A ∩ B|.
    pub fn union_size(&self, other: &FeatureSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// True if the sets share at least one feature (early-exit merge scan).
    pub fn intersects(&self, other: &FeatureSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The raw sorted ids.
    pub fn ids(&self) -> &[u32] {
        &self.0
    }
}

impl FromIterator<u32> for FeatureSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        FeatureSet::from_unsorted(iter.into_iter().collect())
    }
}

/// The data abstraction model used for classification features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureModel {
    /// All words (domain-ignorant).
    BagOfWords,
    /// All words minus German/English stopwords (§5.2.2 runtime variant).
    BagOfWordsNoStop,
    /// Taxonomy concept mentions (domain-specific).
    BagOfConcepts,
    /// Stemmed words minus stopwords — the "more linguistic preprocessing"
    /// extension the paper's §6 future work calls for. Requires the
    /// [`qatk_text::stemmer::StemAnnotator`] in the pipeline.
    BagOfStems,
}

impl FeatureModel {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            FeatureModel::BagOfWords => "bag-of-words",
            FeatureModel::BagOfWordsNoStop => "bag-of-words-nostop",
            FeatureModel::BagOfConcepts => "bag-of-concepts",
            FeatureModel::BagOfStems => "bag-of-stems",
        }
    }
}

/// Word-feature space shared by all extractions of one experiment run.
///
/// Concepts don't need interning (their taxonomy ids are already dense);
/// words do. One `FeatureSpace` per fold keeps ids consistent between
/// training and test extraction.
#[derive(Debug, Default, Clone)]
pub struct FeatureSpace {
    interner: Interner,
    stopwords: Option<StopwordList>,
}

impl FeatureSpace {
    pub fn new() -> Self {
        FeatureSpace {
            interner: Interner::new(),
            stopwords: Some(StopwordList::german_and_english()),
        }
    }

    /// Distinct word features seen so far.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    fn stopword(&mut self, tok: &str) -> bool {
        self.stopwords
            .get_or_insert_with(StopwordList::german_and_english)
            .contains(tok)
    }

    /// Extract the feature set of a processed CAS under a model.
    ///
    /// * `BagOfWords*`: normalized tokens, interned.
    /// * `BagOfConcepts`: concept ids of the mentions the annotator found,
    ///   "without distinguishing between types of concepts".
    pub fn extract(&mut self, cas: &Cas, model: FeatureModel) -> FeatureSet {
        match model {
            FeatureModel::BagOfWords => cas
                .token_norms()
                .iter()
                .map(|t| self.interner.intern(t))
                .collect(),
            // stems arrive pre-stemmed in the token annotations (the
            // StemAnnotator rewrote them); extraction itself is identical to
            // the stopword-filtered word model
            FeatureModel::BagOfStems | FeatureModel::BagOfWordsNoStop => {
                let toks: Vec<String> = cas.token_norms().iter().map(|s| (*s).to_owned()).collect();
                let mut ids = Vec::with_capacity(toks.len());
                for t in &toks {
                    if !self.stopword(t) {
                        ids.push(self.interner.intern(t));
                    }
                }
                FeatureSet::from_unsorted(ids)
            }
            FeatureModel::BagOfConcepts => cas
                .concept_mentions()
                .map(|(_, concept, _)| concept.0)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_taxonomy::builder::TaxonomyBuilder;
    use qatk_taxonomy::concept::{ConceptKind, Lang};
    use qatk_text::concept_annotator::ConceptAnnotator;
    use qatk_text::engine::AnalysisEngine;
    use qatk_text::tokenizer::WhitespaceTokenizer;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    #[test]
    fn set_semantics() {
        let a = fs(&[5, 1, 3, 5, 1]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.ids(), &[1, 3, 5]);
        assert!(a.contains(3));
        assert!(!a.contains(2));
        assert!(!a.is_empty());
        assert!(FeatureSet::default().is_empty());
    }

    #[test]
    fn intersection_and_union() {
        let a = fs(&[1, 2, 3, 4]);
        let b = fs(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert!(a.intersects(&b));
        let c = fs(&[9, 10]);
        assert_eq!(a.intersection_size(&c), 0);
        assert!(!a.intersects(&c));
        let empty = FeatureSet::default();
        assert_eq!(a.intersection_size(&empty), 0);
        assert_eq!(a.union_size(&empty), 4);
    }

    fn processed_cas(text: &str) -> Cas {
        let mut b = TaxonomyBuilder::new("t");
        let fan = b.root(ConceptKind::Component, "Fan");
        b.term(fan, Lang::De, "Lüfter");
        b.term(fan, Lang::En, "fan");
        let melt = b.root(ConceptKind::Symptom, "Melt");
        b.term(melt, Lang::De, "durchgeschmort");
        let tax = b.build().unwrap();

        let mut cas = Cas::new();
        cas.add_segment("r", text);
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ConceptAnnotator::new(&tax).process(&mut cas).unwrap();
        cas
    }

    #[test]
    fn bag_of_words_extraction() {
        let cas = processed_cas("Der Lüfter ist defekt der Lüfter");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfWords);
        // der, luefter, ist, defekt — set semantics collapse repeats
        assert_eq!(f.len(), 4);
        assert_eq!(space.vocabulary_size(), 4);
    }

    #[test]
    fn stopword_filtering() {
        let cas = processed_cas("Der Lüfter ist defekt");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfWordsNoStop);
        // der, ist are stopwords
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn bag_of_concepts_extraction() {
        let cas = processed_cas("Lüfter durchgeschmort, fan kaputt");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfConcepts);
        // fan + melt concepts; "Lüfter" and "fan" collapse to one id
        assert_eq!(f.len(), 2);
        // concept extraction does not grow the word vocabulary
        assert_eq!(space.vocabulary_size(), 0);
    }

    #[test]
    fn shared_space_aligns_train_and_test() {
        let cas_a = processed_cas("Kontakt defekt");
        let cas_b = processed_cas("Kontakt verschmort");
        let mut space = FeatureSpace::new();
        let fa = space.extract(&cas_a, FeatureModel::BagOfWords);
        let fb = space.extract(&cas_b, FeatureModel::BagOfWords);
        assert_eq!(fa.intersection_size(&fb), 1); // "kontakt"
    }

    #[test]
    fn labels() {
        assert_eq!(FeatureModel::BagOfWords.label(), "bag-of-words");
        assert_eq!(FeatureModel::BagOfConcepts.label(), "bag-of-concepts");
        assert_eq!(
            FeatureModel::BagOfWordsNoStop.label(),
            "bag-of-words-nostop"
        );
    }
}
