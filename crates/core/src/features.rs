//! Feature sets and their extraction from processed CASes.
//!
//! The paper compares two data abstraction models (§4.3): the
//! domain-ignorant **bag-of-words** ("we use all words in the text") and the
//! domain-specific **bag-of-concepts** ("mentions of parts and errors as
//! features ... concept mentions as attributes without distinguishing
//! between types"). §5.2.2 adds the stopword-filtered bag-of-words variant.
//! Features are *sets* — both similarity measures operate on shared/total
//! attribute counts.

use qatk_text::cas::Cas;
use qatk_text::stopwords::StopwordList;

use crate::interner::Interner;

/// A sorted, deduplicated set of numeric features.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FeatureSet(Vec<u32>);

impl FeatureSet {
    /// Build from arbitrary ids (sorts + dedups).
    pub fn from_unsorted(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        FeatureSet(ids)
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    pub fn contains(&self, id: u32) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// |A ∩ B| by merge scan over the sorted id arrays.
    pub fn intersection_size(&self, other: &FeatureSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// |A ∪ B| = |A| + |B| − |A ∩ B|.
    pub fn union_size(&self, other: &FeatureSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// True if the sets share at least one feature (early-exit merge scan).
    pub fn intersects(&self, other: &FeatureSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The raw sorted ids.
    pub fn ids(&self) -> &[u32] {
        &self.0
    }
}

impl FromIterator<u32> for FeatureSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        FeatureSet::from_unsorted(iter.into_iter().collect())
    }
}

/// The data abstraction model used for classification features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureModel {
    /// All words (domain-ignorant).
    BagOfWords,
    /// All words minus German/English stopwords (§5.2.2 runtime variant).
    BagOfWordsNoStop,
    /// Taxonomy concept mentions (domain-specific).
    BagOfConcepts,
    /// Stemmed words minus stopwords — the "more linguistic preprocessing"
    /// extension the paper's §6 future work calls for. Requires the
    /// [`qatk_text::stemmer::StemAnnotator`] in the pipeline.
    BagOfStems,
    /// Character `lo..=hi`-grams over normalized tokens (Bayer et al.,
    /// cmp-lg/9607003): domain- and language-independent, typo-robust, and
    /// needs no stemmer, stopword list, or taxonomy.
    CharNgrams { lo: u8, hi: u8 },
}

/// A persisted or user-supplied feature-model label that names no known
/// model. Carried up as a structured load/CLI error instead of a silent
/// `None` fallthrough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    pub label: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown feature model label `{}` (expected one of: bag-of-words, \
             bag-of-words-nostop, bag-of-concepts, bag-of-stems, char-ngrams-<lo>-<hi>)",
            self.label
        )
    }
}

impl std::error::Error for ParseModelError {}

impl FeatureModel {
    /// The default character n-gram model: 3–5-grams.
    pub const CHAR_NGRAMS: FeatureModel = FeatureModel::CharNgrams { lo: 3, hi: 5 };

    /// Every model family, with the default n-gram range standing in for
    /// the parametric variant.
    pub const ALL: [FeatureModel; 5] = [
        FeatureModel::BagOfWords,
        FeatureModel::BagOfWordsNoStop,
        FeatureModel::BagOfConcepts,
        FeatureModel::BagOfStems,
        FeatureModel::CHAR_NGRAMS,
    ];

    /// Display label matching the paper's figure legends. Round-trips
    /// through [`FeatureModel::parse`] for every variant.
    pub fn label(self) -> String {
        match self {
            FeatureModel::BagOfWords => "bag-of-words".to_owned(),
            FeatureModel::BagOfWordsNoStop => "bag-of-words-nostop".to_owned(),
            FeatureModel::BagOfConcepts => "bag-of-concepts".to_owned(),
            FeatureModel::BagOfStems => "bag-of-stems".to_owned(),
            FeatureModel::CharNgrams { lo, hi } => format!("char-ngrams-{lo}-{hi}"),
        }
    }

    /// Inverse of [`FeatureModel::label`] — used when loading persisted
    /// snapshots whose meta row records the model as its label, and by the
    /// CLI's `--model` flag. Unknown labels are a structured error.
    pub fn parse(label: &str) -> Result<Self, ParseModelError> {
        let err = || ParseModelError {
            label: label.to_owned(),
        };
        match label {
            "bag-of-words" => Ok(FeatureModel::BagOfWords),
            "bag-of-words-nostop" => Ok(FeatureModel::BagOfWordsNoStop),
            "bag-of-concepts" => Ok(FeatureModel::BagOfConcepts),
            "bag-of-stems" => Ok(FeatureModel::BagOfStems),
            // bare "char-ngrams" selects the default 3–5 range
            "char-ngrams" => Ok(FeatureModel::CHAR_NGRAMS),
            _ => {
                let rest = label.strip_prefix("char-ngrams-").ok_or_else(err)?;
                let (lo, hi) = rest.split_once('-').ok_or_else(err)?;
                let lo: u8 = lo.parse().map_err(|_| err())?;
                let hi: u8 = hi.parse().map_err(|_| err())?;
                if lo == 0 || hi < lo {
                    return Err(err());
                }
                Ok(FeatureModel::CharNgrams { lo, hi })
            }
        }
    }

    /// The extraction strategy implementing this model (enum dispatch over
    /// the [`FeatureExtractor`] implementations).
    pub fn extractor(self) -> ModelExtractor {
        match self {
            FeatureModel::BagOfWords => ModelExtractor::Words(WordExtractor {
                filter_stopwords: false,
            }),
            // stems arrive pre-stemmed in the token annotations (the
            // StemAnnotator rewrote them); extraction itself is identical to
            // the stopword-filtered word model
            FeatureModel::BagOfStems | FeatureModel::BagOfWordsNoStop => {
                ModelExtractor::Words(WordExtractor {
                    filter_stopwords: true,
                })
            }
            FeatureModel::BagOfConcepts => ModelExtractor::Concepts(ConceptExtractor),
            FeatureModel::CharNgrams { lo, hi } => {
                ModelExtractor::CharNgrams(CharNgramExtractor { lo, hi })
            }
        }
    }
}

/// Resolves a surface string (token, stem, n-gram) to its numeric feature
/// id. The live vocabulary interns — every string resolves; the frozen
/// vocabulary looks up — unknown strings return `None` and are dropped
/// (see the unknown-token rule on [`FrozenFeatureSpace`]). This is the one
/// point where the live and frozen extraction paths differ; everything
/// else is shared through [`FeatureExtractor`].
pub trait TokenResolver {
    fn resolve(&mut self, token: &str) -> Option<u32>;
}

/// [`TokenResolver`] over a growable vocabulary (training / builder path).
struct InterningResolver<'a>(&'a mut Interner);

impl TokenResolver for InterningResolver<'_> {
    fn resolve(&mut self, token: &str) -> Option<u32> {
        Some(self.0.intern(token))
    }
}

/// [`TokenResolver`] over a sealed vocabulary (serving path).
struct LookupResolver<'a>(&'a Interner);

impl TokenResolver for LookupResolver<'_> {
    fn resolve(&mut self, token: &str) -> Option<u32> {
        self.0.get(token)
    }
}

/// One pluggable feature-extraction strategy: a processed CAS in, a sorted
/// feature set out, with surface strings resolved through a
/// [`TokenResolver`]. Implementations must be pure functions of the CAS
/// and resolver so live and frozen extraction can never drift.
pub trait FeatureExtractor {
    fn extract(
        &self,
        cas: &Cas,
        stopwords: &StopwordList,
        vocab: &mut dyn TokenResolver,
    ) -> FeatureSet;
}

/// Word-token extraction, optionally stopword-filtered.
#[derive(Debug, Clone, Copy)]
pub struct WordExtractor {
    pub filter_stopwords: bool,
}

impl FeatureExtractor for WordExtractor {
    fn extract(
        &self,
        cas: &Cas,
        stopwords: &StopwordList,
        vocab: &mut dyn TokenResolver,
    ) -> FeatureSet {
        cas.token_norms_iter()
            .filter(|t| !self.filter_stopwords || !stopwords.contains(t))
            .filter_map(|t| vocab.resolve(t))
            .collect()
    }
}

/// Taxonomy concept-mention extraction, "without distinguishing between
/// types of concepts". Concept ids are already dense taxonomy ids, so the
/// vocabulary resolver is bypassed entirely — concept extraction is
/// vocabulary-independent.
#[derive(Debug, Clone, Copy)]
pub struct ConceptExtractor;

impl FeatureExtractor for ConceptExtractor {
    fn extract(
        &self,
        cas: &Cas,
        _stopwords: &StopwordList,
        _vocab: &mut dyn TokenResolver,
    ) -> FeatureSet {
        cas.concept_mentions()
            .map(|(_, concept, _)| concept.0)
            .collect()
    }
}

/// Character n-gram extraction over normalized tokens: each token yields
/// its `lo..=hi`-grams (whole token if shorter than `lo`), resolved like
/// word features. No stemmer, stopword list, or taxonomy involved.
#[derive(Debug, Clone, Copy)]
pub struct CharNgramExtractor {
    pub lo: u8,
    pub hi: u8,
}

impl FeatureExtractor for CharNgramExtractor {
    fn extract(
        &self,
        cas: &Cas,
        _stopwords: &StopwordList,
        vocab: &mut dyn TokenResolver,
    ) -> FeatureSet {
        let mut ids = Vec::new();
        for token in cas.token_norms_iter() {
            qatk_text::ngrams::for_each_char_ngram(
                token,
                self.lo as usize,
                self.hi as usize,
                |gram| {
                    if let Some(id) = vocab.resolve(gram) {
                        ids.push(id);
                    }
                },
            );
        }
        FeatureSet::from_unsorted(ids)
    }
}

/// Enum dispatch over the extractor implementations — the concrete type
/// behind [`FeatureModel::extractor`], usable directly or through
/// `&dyn FeatureExtractor`.
#[derive(Debug, Clone, Copy)]
pub enum ModelExtractor {
    Words(WordExtractor),
    Concepts(ConceptExtractor),
    CharNgrams(CharNgramExtractor),
}

impl FeatureExtractor for ModelExtractor {
    fn extract(
        &self,
        cas: &Cas,
        stopwords: &StopwordList,
        vocab: &mut dyn TokenResolver,
    ) -> FeatureSet {
        match self {
            ModelExtractor::Words(e) => e.extract(cas, stopwords, vocab),
            ModelExtractor::Concepts(e) => e.extract(cas, stopwords, vocab),
            ModelExtractor::CharNgrams(e) => e.extract(cas, stopwords, vocab),
        }
    }
}

/// Word-feature space shared by all extractions of one experiment run.
///
/// Concepts don't need interning (their taxonomy ids are already dense);
/// words do. One `FeatureSpace` per fold keeps ids consistent between
/// training and test extraction. This is the *writer-side* vocabulary: it
/// grows on every extraction. Freezing it ([`FeatureSpace::freeze`]) yields
/// the read-only [`FrozenFeatureSpace`] the serving path shares across
/// threads.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    interner: Interner,
    stopwords: StopwordList,
}

impl Default for FeatureSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureSpace {
    pub fn new() -> Self {
        FeatureSpace {
            interner: Interner::new(),
            stopwords: StopwordList::german_and_english(),
        }
    }

    /// Distinct word features seen so far.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Extract the feature set of a processed CAS under a model, interning
    /// previously unseen surface strings (training / builder path).
    ///
    /// The per-model logic lives in the [`FeatureExtractor`]
    /// implementations, shared verbatim with
    /// [`FrozenFeatureSpace::extract`] — only the [`TokenResolver`]
    /// differs, so the two paths cannot drift.
    pub fn extract(&mut self, cas: &Cas, model: FeatureModel) -> FeatureSet {
        model.extractor().extract(
            cas,
            &self.stopwords,
            &mut InterningResolver(&mut self.interner),
        )
    }

    /// Seal the vocabulary for concurrent read-only serving.
    pub fn freeze(self) -> FrozenFeatureSpace {
        FrozenFeatureSpace {
            interner: self.interner,
            stopwords: self.stopwords,
        }
    }
}

/// A sealed word-feature vocabulary: extraction is `&self` and never grows
/// the id space, so one instance can serve any number of threads at once.
///
/// **Unknown-token rule:** a query token absent from the frozen vocabulary is
/// *dropped*. This matches kNN semantics exactly — a feature no training
/// instance carries can never contribute to an intersection count, so its
/// presence or absence in the query set never changes a single similarity
/// score (Jaccard/Dice/cosine denominators use the *training* node sizes and
/// `|A|` only through `score_from_counts`, which receives the query length
/// *after* the drop — see the ranking-equivalence argument in DESIGN.md §8).
#[derive(Debug, Clone)]
pub struct FrozenFeatureSpace {
    interner: Interner,
    stopwords: StopwordList,
}

impl FrozenFeatureSpace {
    /// Rebuild a sealed vocabulary from its tokens in id order — the inverse
    /// of [`FrozenFeatureSpace::tokens`], used when loading a persisted
    /// snapshot. Token `i` of the iterator receives id `i`, so feature sets
    /// persisted alongside the vocabulary stay valid.
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut interner = Interner::new();
        for t in tokens {
            interner.intern(t.as_ref());
        }
        FrozenFeatureSpace {
            interner,
            stopwords: StopwordList::german_and_english(),
        }
    }

    /// Distinct word features in the sealed vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Re-open the vocabulary for the copy-on-write builder path. Ids of
    /// already known tokens are preserved, so feature sets extracted under
    /// the frozen space stay valid under the thawed one.
    pub fn thaw(&self) -> FeatureSpace {
        FeatureSpace {
            interner: self.interner.clone(),
            stopwords: self.stopwords.clone(),
        }
    }

    /// Extract the feature set of a processed CAS under a model against the
    /// sealed vocabulary (serving path; see the unknown-token rule above).
    /// Same [`FeatureExtractor`] implementations as the live path — only
    /// the resolver differs (lookup instead of intern).
    pub fn extract(&self, cas: &Cas, model: FeatureModel) -> FeatureSet {
        model
            .extractor()
            .extract(cas, &self.stopwords, &mut LookupResolver(&self.interner))
    }

    /// The interned tokens in id order (for snapshot persistence).
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.interner.names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qatk_taxonomy::builder::TaxonomyBuilder;
    use qatk_taxonomy::concept::{ConceptKind, Lang};
    use qatk_text::concept_annotator::ConceptAnnotator;
    use qatk_text::engine::AnalysisEngine;
    use qatk_text::tokenizer::WhitespaceTokenizer;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    #[test]
    fn set_semantics() {
        let a = fs(&[5, 1, 3, 5, 1]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.ids(), &[1, 3, 5]);
        assert!(a.contains(3));
        assert!(!a.contains(2));
        assert!(!a.is_empty());
        assert!(FeatureSet::default().is_empty());
    }

    #[test]
    fn intersection_and_union() {
        let a = fs(&[1, 2, 3, 4]);
        let b = fs(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert!(a.intersects(&b));
        let c = fs(&[9, 10]);
        assert_eq!(a.intersection_size(&c), 0);
        assert!(!a.intersects(&c));
        let empty = FeatureSet::default();
        assert_eq!(a.intersection_size(&empty), 0);
        assert_eq!(a.union_size(&empty), 4);
    }

    fn processed_cas(text: &str) -> Cas {
        let mut b = TaxonomyBuilder::new("t");
        let fan = b.root(ConceptKind::Component, "Fan");
        b.term(fan, Lang::De, "Lüfter");
        b.term(fan, Lang::En, "fan");
        let melt = b.root(ConceptKind::Symptom, "Melt");
        b.term(melt, Lang::De, "durchgeschmort");
        let tax = b.build().unwrap();

        let mut cas = Cas::new();
        cas.add_segment("r", text);
        WhitespaceTokenizer::new().process(&mut cas).unwrap();
        ConceptAnnotator::new(&tax).process(&mut cas).unwrap();
        cas
    }

    #[test]
    fn bag_of_words_extraction() {
        let cas = processed_cas("Der Lüfter ist defekt der Lüfter");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfWords);
        // der, luefter, ist, defekt — set semantics collapse repeats
        assert_eq!(f.len(), 4);
        assert_eq!(space.vocabulary_size(), 4);
    }

    #[test]
    fn stopword_filtering() {
        let cas = processed_cas("Der Lüfter ist defekt");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfWordsNoStop);
        // der, ist are stopwords
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn bag_of_concepts_extraction() {
        let cas = processed_cas("Lüfter durchgeschmort, fan kaputt");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::BagOfConcepts);
        // fan + melt concepts; "Lüfter" and "fan" collapse to one id
        assert_eq!(f.len(), 2);
        // concept extraction does not grow the word vocabulary
        assert_eq!(space.vocabulary_size(), 0);
    }

    #[test]
    fn shared_space_aligns_train_and_test() {
        let cas_a = processed_cas("Kontakt defekt");
        let cas_b = processed_cas("Kontakt verschmort");
        let mut space = FeatureSpace::new();
        let fa = space.extract(&cas_a, FeatureModel::BagOfWords);
        let fb = space.extract(&cas_b, FeatureModel::BagOfWords);
        assert_eq!(fa.intersection_size(&fb), 1); // "kontakt"
    }

    #[test]
    fn frozen_extraction_drops_unknown_tokens() {
        let train = processed_cas("Kontakt defekt");
        let mut space = FeatureSpace::new();
        let trained = space.extract(&train, FeatureModel::BagOfWords);
        let frozen = space.freeze();
        assert_eq!(frozen.vocabulary_size(), 2);

        // same text: identical feature set under the frozen vocabulary
        let same = frozen.extract(&processed_cas("Kontakt defekt"), FeatureModel::BagOfWords);
        assert_eq!(same, trained);

        // novel token "verschmort" is dropped, known ids survive, and the
        // vocabulary did not grow
        let mixed = frozen.extract(
            &processed_cas("Kontakt verschmort"),
            FeatureModel::BagOfWords,
        );
        assert_eq!(mixed.len(), 1);
        assert_eq!(mixed.intersection_size(&trained), 1);
        assert_eq!(frozen.vocabulary_size(), 2);

        // fully novel text extracts to the empty set
        let none = frozen.extract(&processed_cas("alles neu hier"), FeatureModel::BagOfWords);
        assert!(none.is_empty());
    }

    #[test]
    fn frozen_stopword_filtering_matches_mutable_path() {
        let cas = processed_cas("Der Lüfter ist defekt");
        let mut space = FeatureSpace::new();
        let expected = space.extract(&cas, FeatureModel::BagOfWordsNoStop);
        let frozen = space.freeze();
        assert_eq!(
            frozen.extract(&cas, FeatureModel::BagOfWordsNoStop),
            expected
        );
    }

    #[test]
    fn thaw_preserves_ids_and_grows_again() {
        let mut space = FeatureSpace::new();
        let a = space.extract(&processed_cas("Kontakt defekt"), FeatureModel::BagOfWords);
        let frozen = space.freeze();
        let mut thawed = frozen.thaw();
        // known tokens keep their ids …
        let b = thawed.extract(&processed_cas("Kontakt defekt"), FeatureModel::BagOfWords);
        assert_eq!(a, b);
        // … and the thawed space accepts new vocabulary again
        let c = thawed.extract(
            &processed_cas("Kontakt verschmort"),
            FeatureModel::BagOfWords,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(thawed.vocabulary_size(), 3);
        // the frozen original is untouched
        assert_eq!(frozen.vocabulary_size(), 2);
        assert_eq!(frozen.tokens().count(), 2);
    }

    #[test]
    fn frozen_concept_extraction_is_vocab_independent() {
        let cas = processed_cas("Lüfter durchgeschmort, fan kaputt");
        let frozen = FeatureSpace::new().freeze();
        let f = frozen.extract(&cas, FeatureModel::BagOfConcepts);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn labels() {
        assert_eq!(FeatureModel::BagOfWords.label(), "bag-of-words");
        assert_eq!(FeatureModel::BagOfConcepts.label(), "bag-of-concepts");
        assert_eq!(
            FeatureModel::BagOfWordsNoStop.label(),
            "bag-of-words-nostop"
        );
        assert_eq!(FeatureModel::CHAR_NGRAMS.label(), "char-ngrams-3-5");
        assert_eq!(
            FeatureModel::CharNgrams { lo: 2, hi: 4 }.label(),
            "char-ngrams-2-4"
        );
    }

    #[test]
    fn parse_round_trips_and_rejects_unknown() {
        for model in FeatureModel::ALL {
            assert_eq!(FeatureModel::parse(&model.label()), Ok(model));
        }
        assert_eq!(
            FeatureModel::parse("char-ngrams"),
            Ok(FeatureModel::CHAR_NGRAMS)
        );
        for bad in [
            "bag-of-wards",
            "char-ngrams-5-3",
            "char-ngrams-0-4",
            "char-ngrams-x-y",
            "char-ngrams-3",
            "",
        ] {
            let err = FeatureModel::parse(bad).unwrap_err();
            assert_eq!(err.label, bad, "error must carry the offending label");
            assert!(err.to_string().contains(bad) || bad.is_empty());
        }
    }

    #[test]
    fn char_ngram_extraction_live_and_frozen_agree() {
        let cas = processed_cas("Lüfter defekt");
        let mut space = FeatureSpace::new();
        let trained = space.extract(&cas, FeatureModel::CHAR_NGRAMS);
        assert!(!trained.is_empty());
        // grams of both tokens landed in the vocabulary
        assert_eq!(space.vocabulary_size(), trained.len());
        let frozen = space.freeze();
        assert_eq!(frozen.extract(&cas, FeatureModel::CHAR_NGRAMS), trained);
        // a token sharing a substring still hits known grams, the rest drop
        let noisy = frozen.extract(&processed_cas("Lüfterx kaputt"), FeatureModel::CHAR_NGRAMS);
        assert!(!noisy.is_empty());
        assert!(noisy.intersection_size(&trained) > 0);
        assert_eq!(
            frozen.vocabulary_size(),
            trained.len(),
            "frozen never grows"
        );
    }

    #[test]
    fn char_ngrams_need_no_taxonomy_or_stopword_filtering() {
        // stopwords are kept: the model is deliberately knowledge-free
        let cas = processed_cas("der defekt");
        let mut space = FeatureSpace::new();
        let f = space.extract(&cas, FeatureModel::CharNgrams { lo: 3, hi: 3 });
        // "der" (short-token whole + it's exactly 3 chars) contributes a gram
        let with_stop = f.len();
        assert!(with_stop > 4, "both tokens contribute grams: {with_stop}");
    }
}
