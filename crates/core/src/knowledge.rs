//! The knowledge base: deduplicated configuration instances with the access
//! paths the classifier needs.
//!
//! Paper §4.3: "we can represent each unique combination of part ID, error
//! key and concept mentions as a node in a knowledge base, which is derived
//! in a first training step. This also allows us to abstract from data
//! instances to configuration instances, reducing the size of the knowledge
//! base" — the kNN-Model-style fix for instance-based kNN's memory appetite.
//! Candidate retrieval (Fig. 5) goes through two indexes: part ID and an
//! inverted feature index ("this selection is made via the indexes of the
//! knowledge structure").

use std::collections::{HashMap, HashSet};

use qatk_store::prelude::*;

use crate::features::FeatureSet;

/// One knowledge node: a unique (part ID, error code, feature set)
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeNode {
    pub part_id: String,
    pub error_code: String,
    pub features: FeatureSet,
}

/// The knowledge base.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeBase {
    nodes: Vec<KnowledgeNode>,
    by_part: HashMap<String, Vec<usize>>,
    inverted: HashMap<u32, Vec<usize>>,
    dedup: HashSet<(String, String, Vec<u32>)>,
    /// Dense part index: part ID → small integer, assigned on first insert.
    part_ids: HashMap<String, u32>,
    /// Per-node dense part index, aligned with `nodes` — lets the score
    /// accumulator filter postings with an integer compare instead of a
    /// string compare.
    node_parts: Vec<u32>,
    /// Raw instances offered, including duplicates (for the dedup ratio).
    offered: usize,
}

/// Reusable per-thread scratch state for the posting-list score-accumulation
/// kernel ([`KnowledgeBase::accumulate_counts`]). Holds a per-node
/// intersection-count array plus the list of touched nodes, so a query
/// resets in O(candidates) rather than O(knowledge base).
#[derive(Debug, Default, Clone)]
pub struct ScoreScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl ScoreScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Node indexes with at least one shared feature, in posting order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Intersection count of a touched node.
    pub fn count(&self, node: u32) -> u32 {
        self.counts[node as usize]
    }

    fn reset(&mut self, n_nodes: usize) {
        if self.counts.len() < n_nodes {
            self.counts.resize(n_nodes, 0);
        }
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
    }

    /// Clear for a new query over `n_nodes` nodes — the entry point for
    /// external accumulators ([`crate::segment::SealedIndex`]).
    pub(crate) fn begin(&mut self, n_nodes: usize) {
        self.reset(n_nodes);
    }

    /// Register one posting hit for `node` (first hit records it as touched).
    #[inline]
    pub(crate) fn bump(&mut self, node: u32) {
        let c = &mut self.counts[node as usize];
        if *c == 0 {
            self.touched.push(node);
        }
        *c += 1;
    }
}

impl KnowledgeBase {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a configuration instance. Returns `false` when an identical
    /// (part, code, features) node already exists — the dedup that turns
    /// data instances into configuration instances.
    pub fn insert(
        &mut self,
        part_id: impl Into<String>,
        error_code: impl Into<String>,
        features: FeatureSet,
    ) -> bool {
        let part_id = part_id.into();
        let error_code = error_code.into();
        self.offered += 1;
        let key = (part_id.clone(), error_code.clone(), features.ids().to_vec());
        if !self.dedup.insert(key) {
            return false;
        }
        let idx = self.nodes.len();
        self.by_part.entry(part_id.clone()).or_default().push(idx);
        let next_part = self.part_ids.len() as u32;
        let part_idx = *self.part_ids.entry(part_id.clone()).or_insert(next_part);
        self.node_parts.push(part_idx);
        for f in features.iter() {
            self.inverted.entry(f).or_default().push(idx);
        }
        self.nodes.push(KnowledgeNode {
            part_id,
            error_code,
            features,
        });
        true
    }

    /// Number of (deduplicated) knowledge nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Raw instances offered to [`KnowledgeBase::insert`], before dedup.
    pub fn instances_offered(&self) -> usize {
        self.offered
    }

    /// All nodes.
    pub fn nodes(&self) -> &[KnowledgeNode] {
        &self.nodes
    }

    /// Node indexes of a part ID.
    pub fn nodes_for_part(&self, part_id: &str) -> &[usize] {
        self.by_part.get(part_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if the part ID exists in the knowledge structure.
    pub fn has_part(&self, part_id: &str) -> bool {
        self.by_part.contains_key(part_id)
    }

    /// Dense integer index of a part ID (assigned on first insert), if known.
    pub fn part_index(&self, part_id: &str) -> Option<u32> {
        self.part_ids.get(part_id).copied()
    }

    /// Number of distinct part IDs in the knowledge structure.
    pub fn part_count(&self) -> usize {
        self.part_ids.len()
    }

    /// Per-node dense part indexes, aligned with [`KnowledgeBase::nodes`].
    pub fn node_parts(&self) -> &[u32] {
        &self.node_parts
    }

    /// The largest feature id appearing in any node, if the inverted index
    /// is non-empty.
    pub fn max_feature_id(&self) -> Option<u32> {
        self.inverted.keys().copied().max()
    }

    /// The inverted-index posting list of a feature: node indexes in
    /// ascending order (inserts only ever append growing indexes).
    pub fn postings_for(&self, feature: u32) -> &[usize] {
        self.inverted
            .get(&feature)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All known part IDs (arbitrary order).
    pub fn parts(&self) -> impl Iterator<Item = &str> {
        self.by_part.keys().map(String::as_str)
    }

    /// Distinct error codes known for a part ID.
    ///
    /// Allocates a fresh vector per call — fine for tests and cold paths; the
    /// serving path uses the per-part lists
    /// [`crate::snapshot::KnowledgeSnapshot`] precomputes once at seal time.
    pub fn codes_for_part(&self, part_id: &str) -> Vec<&str> {
        let mut codes: Vec<&str> = self
            .nodes_for_part(part_id)
            .iter()
            .map(|&i| self.nodes[i].error_code.as_str())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Candidate set generation (paper Fig. 5): nodes with the same part ID
    /// sharing ≥ 1 feature; if the part ID is unknown, *all* nodes sharing
    /// ≥ 1 feature ("If the part ID is not found in the knowledge structure,
    /// we select all nodes into our neighbor candidate set").
    ///
    /// Uses the inverted feature index; returns sorted node indexes.
    pub fn candidates(&self, part_id: &str, features: &FeatureSet) -> Vec<usize> {
        let part_known = self.has_part(part_id);
        let mut seen: HashSet<usize> = HashSet::new();
        for f in features.iter() {
            if let Some(nodes) = self.inverted.get(&f) {
                for &n in nodes {
                    if !part_known || self.nodes[n].part_id == part_id {
                        seen.insert(n);
                    }
                }
            }
        }
        // Unknown part with zero feature overlap anywhere: fall back to the
        // entire knowledge base, as the paper specifies for unseen part IDs.
        if !part_known && seen.is_empty() {
            return (0..self.nodes.len()).collect();
        }
        let mut out: Vec<usize> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Posting-list score accumulation — the kernel behind
    /// [`crate::classifier::RankedKnn::rank`]. Walks the inverted index once
    /// per query and accumulates `|A ∩ B|` per candidate node into
    /// `scratch`, applying the part filter of [`KnowledgeBase::candidates`]
    /// inline (known part: only that part's nodes; unknown part: every node
    /// sharing ≥ 1 feature). Unlike `candidates`, this produces the
    /// intersection counts as a by-product, so the classifier never has to
    /// re-intersect feature sets — one pass replaces the
    /// build-candidate-set → re-intersect double pass.
    ///
    /// The unknown-part zero-overlap fallback ("select all nodes") is *not*
    /// applied here; callers detect `scratch.touched().is_empty()` and
    /// handle it (the classifier scores that fallback as all-zero anyway).
    pub fn accumulate_counts(
        &self,
        part_id: &str,
        features: &FeatureSet,
        scratch: &mut ScoreScratch,
    ) {
        scratch.reset(self.nodes.len());
        let part = self.part_ids.get(part_id).copied();
        for f in features.iter() {
            if let Some(postings) = self.inverted.get(&f) {
                for &n in postings {
                    if part.is_none_or(|p| self.node_parts[n] == p) {
                        if scratch.counts[n] == 0 {
                            scratch.touched.push(n as u32);
                        }
                        scratch.counts[n] += 1;
                    }
                }
            }
        }
    }

    /// Naive candidate generation without the inverted index (full scan of
    /// the part's nodes) — the ablation comparator for the `candidate` bench.
    pub fn candidates_scan(&self, part_id: &str, features: &FeatureSet) -> Vec<usize> {
        if !self.has_part(part_id) {
            let hits: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].features.intersects(features))
                .collect();
            if hits.is_empty() {
                return (0..self.nodes.len()).collect();
            }
            return hits;
        }
        self.nodes_for_part(part_id)
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].features.intersects(features))
            .collect()
    }

    // --- relational persistence ------------------------------------------

    /// Table name for knowledge nodes.
    pub const TABLE: &'static str = "knowledge_nodes";

    /// Persist into a relational database (paper §4.4 step 3b: "Knowledge
    /// Base Persistence: store knowledge nodes in a relational database").
    /// Features are stored as a little-endian u32 blob.
    pub fn save_to_db(&self, db: &mut Database) -> StoreResult<()> {
        if !db.has_table(Self::TABLE) {
            let schema = SchemaBuilder::new()
                .pk("id", DataType::Int)
                .col("part_id", DataType::Text)
                .col("error_code", DataType::Text)
                .col("features", DataType::Blob)
                .build()?;
            db.create_table(Self::TABLE, schema)?;
            db.table_mut(Self::TABLE)?
                .create_index("kn_by_part", "part_id", IndexKind::Hash)?;
        } else {
            db.table_mut(Self::TABLE)?.truncate();
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let mut blob = Vec::with_capacity(node.features.len() * 4);
            for f in node.features.iter() {
                blob.extend_from_slice(&f.to_le_bytes());
            }
            db.insert(
                Self::TABLE,
                row![
                    i as i64,
                    node.part_id.clone(),
                    node.error_code.clone(),
                    blob
                ],
            )?;
        }
        Ok(())
    }

    /// Load back from a relational database.
    pub fn load_from_db(db: &Database) -> StoreResult<Self> {
        let table = db.table(Self::TABLE)?;
        let rows = Query::new().order_by("id", SortOrder::Asc).run(table)?;
        let mut kb = KnowledgeBase::new();
        for r in rows {
            let part = r.get(1).and_then(Value::as_text).unwrap_or_default();
            let code = r.get(2).and_then(Value::as_text).unwrap_or_default();
            let blob = r.get(3).and_then(Value::as_blob).unwrap_or_default();
            let ids: Vec<u32> = blob
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            kb.insert(part, code, FeatureSet::from_unsorted(ids));
        }
        Ok(kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FeatureSet {
        FeatureSet::from_unsorted(ids.to_vec())
    }

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.insert("P-01", "E100", fs(&[1, 2, 3]));
        kb.insert("P-01", "E200", fs(&[3, 4]));
        kb.insert("P-01", "E100", fs(&[1, 9]));
        kb.insert("P-02", "E300", fs(&[2, 5]));
        kb
    }

    #[test]
    fn dedup_configuration_instances() {
        let mut kb = kb();
        assert_eq!(kb.len(), 4);
        // identical configuration is absorbed
        assert!(!kb.insert("P-01", "E100", fs(&[1, 2, 3])));
        assert_eq!(kb.len(), 4);
        assert_eq!(kb.instances_offered(), 5);
        // same features, different code → new node
        assert!(kb.insert("P-01", "E999", fs(&[1, 2, 3])));
        assert_eq!(kb.len(), 5);
    }

    #[test]
    fn part_index() {
        let kb = kb();
        assert_eq!(kb.nodes_for_part("P-01").len(), 3);
        assert_eq!(kb.nodes_for_part("P-02").len(), 1);
        assert!(kb.nodes_for_part("P-99").is_empty());
        assert!(kb.has_part("P-01"));
        assert!(!kb.has_part("P-99"));
        assert_eq!(kb.codes_for_part("P-01"), vec!["E100", "E200"]);
    }

    #[test]
    fn candidates_same_part_shared_feature() {
        let kb = kb();
        // feature 3 hits nodes 0 and 1 of P-01
        let c = kb.candidates("P-01", &fs(&[3]));
        assert_eq!(c, vec![0, 1]);
        // feature 1 hits nodes 0 and 2
        let c = kb.candidates("P-01", &fs(&[1]));
        assert_eq!(c, vec![0, 2]);
        // feature 5 belongs to P-02 only → empty for P-01
        let c = kb.candidates("P-01", &fs(&[5]));
        assert!(c.is_empty());
    }

    #[test]
    fn unknown_part_falls_back_to_all_nodes() {
        let kb = kb();
        // unknown part, shared features → all sharing nodes across parts
        let c = kb.candidates("P-99", &fs(&[2]));
        assert_eq!(c, vec![0, 3]);
        // unknown part, no shared features → the whole knowledge base
        let c = kb.candidates("P-99", &fs(&[777]));
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scan_matches_indexed_candidates() {
        let kb = kb();
        for (part, feats) in [
            ("P-01", fs(&[3])),
            ("P-01", fs(&[1, 5])),
            ("P-02", fs(&[2])),
            ("P-99", fs(&[2])),
            ("P-99", fs(&[777])),
        ] {
            let mut a = kb.candidates(part, &feats);
            let mut b = kb.candidates_scan(part, &feats);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "mismatch for {part}");
        }
    }

    #[test]
    fn empty_features_yield_no_candidates_for_known_part() {
        let kb = kb();
        assert!(kb.candidates("P-01", &FeatureSet::default()).is_empty());
    }

    #[test]
    fn db_roundtrip() {
        let kb = kb();
        let mut db = Database::new();
        kb.save_to_db(&mut db).unwrap();
        assert_eq!(db.table(KnowledgeBase::TABLE).unwrap().len(), 4);
        let loaded = KnowledgeBase::load_from_db(&db).unwrap();
        assert_eq!(loaded.len(), kb.len());
        assert_eq!(loaded.nodes(), kb.nodes());
        // candidate behaviour identical after the roundtrip
        assert_eq!(
            loaded.candidates("P-01", &fs(&[3])),
            kb.candidates("P-01", &fs(&[3]))
        );
    }

    #[test]
    fn save_twice_replaces() {
        let kb = kb();
        let mut db = Database::new();
        kb.save_to_db(&mut db).unwrap();
        kb.save_to_db(&mut db).unwrap();
        assert_eq!(db.table(KnowledgeBase::TABLE).unwrap().len(), 4);
    }

    #[test]
    fn empty_kb() {
        let kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        assert!(kb.candidates("P-01", &fs(&[1])).is_empty());
        let mut db = Database::new();
        kb.save_to_db(&mut db).unwrap();
        let loaded = KnowledgeBase::load_from_db(&db).unwrap();
        assert!(loaded.is_empty());
    }
}
