//! The span model and the thread-local span stack.
//!
//! A *span* is one timed step of a request: a name, start/stop offsets on
//! a monotonic clock, a parent link, and typed key/value annotations. A
//! completed request yields a [`TraceTree`] — the root span plus every
//! child opened on the same thread while it was live.
//!
//! The stack is thread-local so library crates (`qatk-core`, `qatk-text`,
//! `qatk-store`) can contribute child spans without threading a context
//! handle through every signature: [`child_span`] is a **no-op unless a
//! trace is active on the current thread**, which is also the overhead
//! story — the bare ranking kernel (no HTTP request, no root span) pays
//! one enabled-check plus one thread-local probe, nothing else.
//!
//! Timestamps are offsets in nanoseconds from the root span's `Instant`,
//! so every span in a tree shares one clock and children provably nest
//! within their parent's interval.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::collect;
use crate::id::TraceId;

/// `parent` value of a root span.
pub const NO_PARENT: u32 = u32::MAX;

/// A typed annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Borrowed static string — the common hot-path case (span-adjacent
    /// labels are `&'static str`), kept allocation-free.
    Static(&'static str),
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Static(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// One completed (or, while the request is live, still-open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Index of this span within its tree; the root is always 0.
    pub id: u32,
    /// Index of the parent span, or [`NO_PARENT`] for the root.
    pub parent: u32,
    /// Static span name (`serve.suggest`, `core.rank`, ...).
    pub name: &'static str,
    /// Start offset in nanoseconds from the root span's start.
    pub start_ns: u64,
    /// End offset; open spans hold 0 until closed.
    pub end_ns: u64,
    /// Typed annotations, in attach order.
    pub notes: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    /// Wall time the span covered.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An immutable, completed trace: the spans of one request, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    pub trace_id: TraceId,
    /// Spans in open order; `spans[0]` is the root.
    pub spans: Vec<SpanRecord>,
    /// Wall-clock capture time (ms since the Unix epoch), for operators
    /// correlating `/debug/traces` output with logs.
    pub captured_unix_ms: u64,
}

impl TraceTree {
    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[0]
    }

    /// Total request duration (the root span's extent).
    pub fn duration_ns(&self) -> u64 {
        self.root().duration_ns()
    }
}

/// The per-thread live trace: id, clock epoch, accumulated spans, and the
/// stack of currently-open span indexes.
struct Active {
    trace_id: TraceId,
    epoch: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    /// Recycled span/stack buffers. A serving thread opens and publishes
    /// one tree per request; reusing the buffers of the tree the ring just
    /// evicted (and the finished trace's own stack) keeps the steady-state
    /// hot path completely off the allocator.
    static SPARE: RefCell<(Vec<SpanRecord>, Vec<u32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// RAII guard for a request's root span. Dropping it closes the root and
/// publishes the completed [`TraceTree`] to the global
/// [`collect::TraceStore`]. Disarmed (no-op) when tracing is disabled or
/// another root is already live on this thread (the inner one downgrades
/// to a child span).
pub struct RootSpan {
    mode: RootMode,
}

enum RootMode {
    /// Tracing disabled: nothing recorded, but the id the request carries
    /// is kept so the response-header contract holds.
    Inert { trace_id: TraceId },
    /// This guard owns the thread's active trace.
    Owner { trace_id: TraceId },
    /// A root was already live; the held guard behaves like a child span
    /// and closes on drop.
    Nested(#[allow(dead_code)] Span),
}

/// RAII guard for a child span; disarmed when no trace is live on the
/// thread.
pub struct Span {
    armed: bool,
}

/// Open the root span of a request. `id` is the caller-supplied trace id
/// (from an `x-qatk-trace` header); `None` mints a fresh one. The
/// effective id is readable via [`RootSpan::trace_id`] /
/// [`current_trace_id`] whether or not the guard is armed — disarmed
/// roots still report the id they were asked to carry, minting one if
/// needed, so the header contract holds with tracing disabled.
pub fn root_span(name: &'static str, id: Option<TraceId>) -> RootSpan {
    let trace_id = id.unwrap_or_else(TraceId::generate);
    if !crate::enabled() {
        return RootSpan {
            mode: RootMode::Inert { trace_id },
        };
    }
    crate::install_exemplar_hook();
    ACTIVE.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_some() {
            drop(slot);
            return RootSpan {
                mode: RootMode::Nested(child_span(name)),
            };
        }
        // Pull recycled buffers when a previous request left some behind;
        // otherwise pre-size for a typical tree (root + a handful of
        // children) so the hot path never regrows mid-request.
        let (mut spans, mut stack) = SPARE.with(|spare| std::mem::take(&mut *spare.borrow_mut()));
        spans.reserve(8);
        stack.reserve(4);
        spans.push(SpanRecord {
            id: 0,
            parent: NO_PARENT,
            name,
            start_ns: 0,
            end_ns: 0,
            notes: Vec::new(),
        });
        stack.push(0);
        *slot = Some(Active {
            trace_id,
            epoch: Instant::now(),
            spans,
            stack,
        });
        RootSpan {
            mode: RootMode::Owner { trace_id },
        }
    })
}

impl RootSpan {
    /// The id this request carries (what goes back in the response
    /// header); `None` only for a nested root on a thread whose trace has
    /// somehow already ended.
    pub fn trace_id(&self) -> Option<TraceId> {
        match &self.mode {
            RootMode::Owner { trace_id } | RootMode::Inert { trace_id } => Some(*trace_id),
            RootMode::Nested(_) => current_trace_id(),
        }
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        let RootMode::Owner { .. } = self.mode else {
            return; // Inert is a no-op; Nested closes via its own Drop
        };
        let done = ACTIVE.with(|cell| {
            let mut slot = cell.borrow_mut();
            let active = slot.as_mut()?;
            let now = active.epoch.elapsed().as_nanos() as u64;
            // Close everything still open — normally just the root, but a
            // leaked child guard must not leave an open interval behind.
            while let Some(idx) = active.stack.pop() {
                let span = &mut active.spans[idx as usize];
                if span.end_ns == 0 {
                    span.end_ns = now;
                }
            }
            slot.take()
        });
        if let Some(Active {
            trace_id,
            spans,
            mut stack,
            ..
        }) = done
        {
            let evicted = collect::store().publish(Arc::new(TraceTree {
                trace_id,
                spans,
                captured_unix_ms: collect::unix_ms(),
            }));
            // Recycle: this trace's stack, and the span buffer of the tree
            // the ring just dropped (when nobody else still holds it).
            stack.clear();
            let spans = evicted
                .and_then(|old| Arc::try_unwrap(old).ok())
                .map(|mut old| {
                    old.spans.clear();
                    old.spans
                })
                .unwrap_or_default();
            SPARE.with(|spare| *spare.borrow_mut() = (spans, stack));
        }
    }
}

/// Open a child span under the innermost open span of this thread's live
/// trace. No live trace (the common library-crate case outside a traced
/// request) returns a disarmed guard: the cost is one atomic load and one
/// thread-local probe.
pub fn child_span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { armed: false };
    }
    ACTIVE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let Some(active) = slot.as_mut() else {
            return Span { armed: false };
        };
        let id = active.spans.len() as u32;
        let parent = *active.stack.last().expect("live trace has an open root");
        let start_ns = active.epoch.elapsed().as_nanos() as u64;
        active.spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            end_ns: 0,
            notes: Vec::new(),
        });
        active.stack.push(id);
        Span { armed: true }
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|cell| {
            let mut slot = cell.borrow_mut();
            let Some(active) = slot.as_mut() else {
                return; // root already published (leaked guard ordering)
            };
            // Guards drop innermost-first under RAII; popping the top of
            // the stack is exactly this span.
            if active.stack.len() > 1 {
                let idx = active.stack.pop().expect("non-empty stack");
                let span = &mut active.spans[idx as usize];
                if span.end_ns == 0 {
                    span.end_ns = active.epoch.elapsed().as_nanos() as u64;
                }
            }
        });
    }
}

/// Attach a typed annotation to the innermost open span of this thread's
/// live trace; silently dropped when none is live.
pub fn annotate(key: &'static str, value: impl Into<Value>) {
    if !crate::enabled() {
        return;
    }
    ACTIVE.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(active) = slot.as_mut() {
            let idx = *active.stack.last().expect("live trace has an open root");
            active.spans[idx as usize].notes.push((key, value.into()));
        }
    });
}

/// The id of the trace live on this thread, if any.
pub fn current_trace_id() -> Option<TraceId> {
    ACTIVE.with(|cell| cell.borrow().as_ref().map(|a| a.trace_id))
}

/// [`current_trace_id`] as a raw wire value (`0` = no live trace) — the
/// shape the qatk-obs exemplar hook and the repl frames want.
pub fn current_trace_id_u64() -> u64 {
    current_trace_id().map(TraceId::as_u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_children_build_a_well_formed_tree() {
        let _guard = crate::test_lock();
        collect::store().clear();
        let id = TraceId::from_u64(0xABCD).unwrap();
        {
            let root = root_span("serve.test", Some(id));
            assert_eq!(root.trace_id(), Some(id));
            assert_eq!(current_trace_id(), Some(id));
            annotate("endpoint", "/test");
            {
                let _a = child_span("stage.a");
                annotate("items", 3u64);
                let _aa = child_span("stage.a.inner");
            }
            let _b = child_span("stage.b");
        }
        assert_eq!(current_trace_id(), None);
        let trees = collect::store().lookup(id);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, id);
        assert_eq!(tree.spans.len(), 4);
        let root = tree.root();
        assert_eq!(root.name, "serve.test");
        assert_eq!(root.parent, NO_PARENT);
        assert_eq!(root.notes, vec![("endpoint", Value::from("/test"))]);
        let a = &tree.spans[1];
        let aa = &tree.spans[2];
        let b = &tree.spans[3];
        assert_eq!((a.name, a.parent), ("stage.a", 0));
        assert_eq!((aa.name, aa.parent), ("stage.a.inner", 1));
        assert_eq!((b.name, b.parent), ("stage.b", 0));
        assert_eq!(a.notes, vec![("items", Value::U64(3))]);
        for span in &tree.spans {
            assert!(
                span.end_ns >= span.start_ns,
                "span {} runs backwards",
                span.id
            );
            if span.parent != NO_PARENT {
                let parent = &tree.spans[span.parent as usize];
                assert!(span.start_ns >= parent.start_ns);
                assert!(span.end_ns <= parent.end_ns);
            }
        }
    }

    #[test]
    fn child_span_without_a_live_trace_is_a_no_op() {
        let _guard = crate::test_lock();
        assert_eq!(current_trace_id(), None);
        {
            let _s = child_span("orphan");
            annotate("ignored", true);
        }
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn disabled_tracing_disarms_roots_but_keeps_the_store_quiet() {
        let _guard = crate::test_lock();
        collect::store().clear();
        crate::set_enabled(false);
        let id = TraceId::from_u64(77).unwrap();
        {
            let root = root_span("serve.dark", Some(id));
            // nothing recorded, but the header contract still holds
            assert_eq!(root.trace_id(), Some(id));
            let _c = child_span("stage");
        }
        crate::set_enabled(true);
        assert!(collect::store().lookup(id).is_empty());
        assert!(collect::store().recent().is_empty());
    }

    #[test]
    fn nested_root_downgrades_to_a_child_span() {
        let _guard = crate::test_lock();
        collect::store().clear();
        let outer_id = TraceId::from_u64(0x0111).unwrap();
        let inner_id = TraceId::from_u64(0x0222).unwrap();
        {
            let _outer = root_span("serve.outer", Some(outer_id));
            let inner = root_span("serve.inner", Some(inner_id));
            // the inner root rides the outer trace, not a new one
            assert_eq!(inner.trace_id(), Some(outer_id));
        }
        assert_eq!(collect::store().lookup(inner_id).len(), 0);
        let trees = collect::store().lookup(outer_id);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].spans.len(), 2);
        assert_eq!(trees[0].spans[1].name, "serve.inner");
    }

    #[test]
    fn leaked_child_guard_still_publishes_a_closed_tree() {
        let _guard = crate::test_lock();
        collect::store().clear();
        let id = TraceId::from_u64(0x0333).unwrap();
        let leaked = {
            let _root = root_span("serve.leak", Some(id));
            child_span("stage.leaky") // outlives the root on purpose
        };
        let trees = collect::store().lookup(id);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].spans.iter().all(|s| s.end_ns >= s.start_ns));
        assert!(trees[0]
            .spans
            .iter()
            .all(|s| s.end_ns > 0 || s.start_ns == 0));
        drop(leaked); // must not panic or corrupt the next trace
        {
            let _root = root_span("serve.after", Some(id));
        }
        assert_eq!(collect::store().lookup(id).len(), 2);
    }
}
