//! Global capture of completed traces: a fixed-capacity ring plus an
//! always-retained slow-request log.
//!
//! Publication is designed for the serving hot path: slot assignment is a
//! single `fetch_add` (lock-free, never blocks another publisher), and the
//! only synchronization left is the per-slot pointer swap — a disjoint,
//! bounded critical section two publishers touch together only when the
//! ring has wrapped all the way around between them. Readers clone `Arc`s
//! out of the slots, so a tree handed out by [`TraceStore::recent`] is
//! immutable and can never tear, no matter how fast the ring is
//! overwritten behind it.
//!
//! The slow log is separate and never overwritten by fast traffic: any
//! trace whose root duration crosses the threshold (default 5 ms) is
//! retained in a bounded FIFO of its own, so a burst of healthy requests
//! cannot flush the evidence of the slow one an operator is hunting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::id::TraceId;
use crate::span::{TraceTree, Value};

/// Completed traces retained in the ring.
pub const RING_CAPACITY: usize = 256;
/// Slow traces retained in the slow log.
pub const SLOW_CAPACITY: usize = 64;
/// Default slow-request threshold: 5 ms, a p99-ish bound for a service
/// whose healthy requests sit in the tens of microseconds.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 5_000_000;

/// The process-global trace sink.
pub struct TraceStore {
    /// Monotonic publication counter; `head % RING_CAPACITY` is the slot
    /// the next tree lands in.
    head: AtomicUsize,
    slots: Vec<Mutex<Option<Arc<TraceTree>>>>,
    slow: Mutex<VecDeque<Arc<TraceTree>>>,
    slow_threshold_ns: AtomicU64,
}

/// The global store (created on first use).
pub fn store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| TraceStore {
        head: AtomicUsize::new(0),
        slots: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        slow: Mutex::new(VecDeque::new()),
        slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
    })
}

impl TraceStore {
    /// Publish a completed tree into the ring (and the slow log when its
    /// root crosses the threshold). Returns the tree the new one evicted,
    /// if any — the span stack recycles its buffers to keep the hot path
    /// off the allocator.
    pub fn publish(&self, tree: Arc<TraceTree>) -> Option<Arc<TraceTree>> {
        if tree.duration_ns() >= self.slow_threshold_ns.load(Ordering::Relaxed) {
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() == SLOW_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(Arc::clone(&tree));
        }
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
        self.slots[slot]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .replace(tree)
    }

    /// The retained ring, newest first.
    pub fn recent(&self) -> Vec<Arc<TraceTree>> {
        let head = self.head.load(Ordering::Relaxed);
        let mut out = Vec::new();
        // Walk backwards from the most recently assigned slot; empty slots
        // (ring not yet full, or cleared) are skipped.
        for back in 1..=RING_CAPACITY {
            let slot = (head.wrapping_sub(back)) % RING_CAPACITY;
            if let Some(tree) = self.slots[slot]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
            {
                out.push(Arc::clone(tree));
            }
        }
        out
    }

    /// The slow log, newest first.
    pub fn slow(&self) -> Vec<Arc<TraceTree>> {
        let slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        slow.iter().rev().map(Arc::clone).collect()
    }

    /// Every retained tree carrying `id` (ring and slow log, deduplicated),
    /// oldest first. A request can legitimately yield more than one tree
    /// per id — e.g. a `/learn` root on the leader plus the
    /// `repl.follower_ack` event for the same id.
    pub fn lookup(&self, id: TraceId) -> Vec<Arc<TraceTree>> {
        let mut out: Vec<Arc<TraceTree>> = Vec::new();
        let mut push = |tree: &Arc<TraceTree>| {
            if tree.trace_id == id && !out.iter().any(|t| Arc::ptr_eq(t, tree)) {
                out.push(Arc::clone(tree));
            }
        };
        for tree in self.recent().iter().rev() {
            push(tree);
        }
        for tree in self.slow().iter().rev() {
            push(tree);
        }
        out
    }

    /// Change the slow-request threshold.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-request threshold.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Drop every retained tree (test isolation).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.slow.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Wall-clock milliseconds since the Unix epoch (capture timestamps).
pub(crate) fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Publish a single-span tree for an event observed *outside* the request
/// thread — e.g. the repl leader recording a follower's ack lag against
/// the originating `/learn` trace id. The event becomes its own tree
/// carrying the same id; [`TraceStore::lookup`] stitches them together.
pub fn record_event(
    trace_id: TraceId,
    name: &'static str,
    duration_ns: u64,
    notes: Vec<(&'static str, Value)>,
) {
    if !crate::enabled() {
        return;
    }
    crate::install_exemplar_hook();
    store().publish(Arc::new(TraceTree {
        trace_id,
        spans: vec![crate::span::SpanRecord {
            id: 0,
            parent: crate::span::NO_PARENT,
            name,
            start_ns: 0,
            end_ns: duration_ns,
            notes,
        }],
        captured_unix_ms: unix_ms(),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(id: u64, dur: u64) -> Arc<TraceTree> {
        Arc::new(TraceTree {
            trace_id: TraceId::from_u64(id).unwrap(),
            spans: vec![crate::span::SpanRecord {
                id: 0,
                parent: crate::span::NO_PARENT,
                name: "t",
                start_ns: 0,
                end_ns: dur,
                notes: Vec::new(),
            }],
            captured_unix_ms: 0,
        })
    }

    #[test]
    fn ring_retains_newest_first_and_wraps() {
        let _guard = crate::test_lock();
        let store = store();
        store.clear();
        for i in 1..=(RING_CAPACITY as u64 + 10) {
            store.publish(tree(i, 10));
        }
        let recent = store.recent();
        assert_eq!(recent.len(), RING_CAPACITY);
        assert_eq!(
            recent[0].trace_id.as_u64(),
            RING_CAPACITY as u64 + 10,
            "newest first"
        );
        // the 10 oldest fell off the ring
        assert!(store.lookup(TraceId::from_u64(5).unwrap()).is_empty());
        store.clear();
    }

    #[test]
    fn slow_log_survives_fast_traffic() {
        let _guard = crate::test_lock();
        let store = store();
        store.clear();
        store.publish(tree(0x510, store.slow_threshold_ns() + 1));
        for i in 1..=(RING_CAPACITY as u64) {
            store.publish(tree(0x1000 + i, 10));
        }
        // flushed from the ring, retained in the slow log
        let slow_id = TraceId::from_u64(0x510).unwrap();
        assert!(store.recent().iter().all(|t| t.trace_id != slow_id));
        assert_eq!(store.slow().len(), 1);
        assert_eq!(store.lookup(slow_id).len(), 1);
        store.clear();
    }

    #[test]
    fn slow_log_is_bounded() {
        let _guard = crate::test_lock();
        let store = store();
        store.clear();
        let thr = store.slow_threshold_ns();
        for i in 1..=(SLOW_CAPACITY as u64 + 5) {
            store.publish(tree(0x2000 + i, thr + i));
        }
        let slow = store.slow();
        assert_eq!(slow.len(), SLOW_CAPACITY);
        assert_eq!(slow[0].trace_id.as_u64(), 0x2000 + SLOW_CAPACITY as u64 + 5);
        store.clear();
    }

    #[test]
    fn threshold_is_configurable() {
        let _guard = crate::test_lock();
        let store = store();
        store.clear();
        store.set_slow_threshold_ns(100);
        store.publish(tree(0x3001, 99));
        store.publish(tree(0x3002, 100));
        assert_eq!(store.slow().len(), 1);
        assert_eq!(store.slow()[0].trace_id.as_u64(), 0x3002);
        store.set_slow_threshold_ns(DEFAULT_SLOW_THRESHOLD_NS);
        store.clear();
    }

    #[test]
    fn record_event_lands_under_its_trace_id() {
        let _guard = crate::test_lock();
        let store = store();
        store.clear();
        let id = TraceId::from_u64(0x4001).unwrap();
        record_event(
            id,
            "repl.follower_ack",
            1234,
            vec![("session", Value::U64(1))],
        );
        let got = store.lookup(id);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].root().name, "repl.follower_ack");
        assert_eq!(got[0].duration_ns(), 1234);
        store.clear();
    }
}
