//! Structured rendering of completed traces.
//!
//! Two shapes, both built on the same per-tree JSON object:
//!
//! * [`render_tree_json`] — one tree as a single-line JSON object, the
//!   unit of the JSONL slow-request log;
//! * [`render_trees_json`] — a JSON array of trees, what
//!   `GET /debug/traces` returns (parseable by `qatk_obs::json::parse`);
//! * [`render_jsonl`] — newline-delimited tree objects, one per line.
//!
//! The object shape is stable: `trace_id` (16-digit lowercase hex),
//! `captured_unix_ms`, `duration_ns`, and `spans` — each span carrying
//! `id`, `parent` (`null` on the root), `name`, `start_ns`, `end_ns`, and
//! a `notes` object of its typed annotations.

use std::sync::Arc;

use qatk_obs::json::escape;

use crate::span::{SpanRecord, TraceTree, Value, NO_PARENT};

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Static(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_span(out: &mut String, span: &SpanRecord) {
    out.push_str(&format!(
        "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"notes\":{{",
        span.id,
        if span.parent == NO_PARENT {
            "null".to_owned()
        } else {
            span.parent.to_string()
        },
        escape(span.name),
        span.start_ns,
        span.end_ns,
    ));
    for (i, (key, value)) in span.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(key));
        out.push_str("\":");
        push_value(out, value);
    }
    out.push_str("}}");
}

/// One tree as a single-line JSON object.
pub fn render_tree_json(tree: &TraceTree) -> String {
    let mut out = String::with_capacity(128 + tree.spans.len() * 96);
    out.push_str(&format!(
        "{{\"trace_id\":\"{}\",\"captured_unix_ms\":{},\"duration_ns\":{},\"spans\":[",
        tree.trace_id,
        tree.captured_unix_ms,
        tree.duration_ns()
    ));
    for (i, span) in tree.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span(&mut out, span);
    }
    out.push_str("]}");
    out
}

/// A JSON array of trees (the `/debug/traces` body).
pub fn render_trees_json(trees: &[Arc<TraceTree>]) -> String {
    let mut out = String::from("[");
    for (i, tree) in trees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_tree_json(tree));
    }
    out.push(']');
    out
}

/// Newline-delimited tree objects (the slow-log file shape).
pub fn render_jsonl(trees: &[Arc<TraceTree>]) -> String {
    trees
        .iter()
        .map(|t| render_tree_json(t))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::TraceId;
    use qatk_obs::json::{parse, Value as Json};

    fn sample() -> TraceTree {
        TraceTree {
            trace_id: TraceId::from_u64(0xBEEF).unwrap(),
            captured_unix_ms: 1_700_000_000_000,
            spans: vec![
                SpanRecord {
                    id: 0,
                    parent: NO_PARENT,
                    name: "serve.suggest",
                    start_ns: 0,
                    end_ns: 4200,
                    notes: vec![
                        ("endpoint", Value::from("/suggest")),
                        ("queued", Value::Bool(false)),
                    ],
                },
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "core.rank",
                    start_ns: 100,
                    end_ns: 900,
                    notes: vec![("candidates", Value::U64(25)), ("score", Value::F64(0.5))],
                },
            ],
        }
    }

    #[test]
    fn tree_json_parses_and_carries_the_shape() {
        let rendered = render_tree_json(&sample());
        assert!(!rendered.contains('\n'), "JSONL unit must be one line");
        let parsed = parse(&rendered).expect("valid JSON");
        assert_eq!(
            parsed.get("trace_id").and_then(Json::as_str),
            Some("000000000000beef")
        );
        assert_eq!(parsed.get("duration_ns").and_then(Json::as_u64), Some(4200));
        let spans = parsed.get("spans").and_then(Json::as_arr).expect("spans");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("parent"), Some(&Json::Null));
        assert_eq!(spans[1].get("parent").and_then(Json::as_u64), Some(0));
        assert_eq!(
            spans[1].get("name").and_then(Json::as_str),
            Some("core.rank")
        );
        let notes = spans[1].get("notes").expect("notes");
        assert_eq!(notes.get("candidates").and_then(Json::as_u64), Some(25));
        assert_eq!(notes.get("score").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn arrays_and_jsonl_agree_on_the_unit() {
        let tree = Arc::new(sample());
        let unit = render_tree_json(&tree);
        let arr = render_trees_json(&[Arc::clone(&tree), Arc::clone(&tree)]);
        assert_eq!(arr, format!("[{unit},{unit}]"));
        assert!(parse(&arr).is_ok());
        let jsonl = render_jsonl(&[Arc::clone(&tree), tree]);
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(parse(line).is_ok());
        }
    }

    #[test]
    fn empty_array_renders() {
        assert_eq!(render_trees_json(&[]), "[]");
        assert!(parse("[]").is_ok());
    }

    #[test]
    fn non_finite_floats_render_as_null_not_invalid_json() {
        let mut tree = sample();
        tree.spans[0].notes.push(("nan", Value::F64(f64::NAN)));
        assert!(parse(&render_tree_json(&tree)).is_ok());
    }
}
