//! # qatk-trace — request-scoped tracing for the QUEST stack
//!
//! Where `qatk-obs` answers *"how is the fleet doing?"* (counters,
//! latency histograms), this crate answers *"where did **this** request
//! burn its time?"* — the per-request causality the paper's industrial
//! setting demands: when a `/suggest` ranking is slow, the operator needs
//! to see whether tokenize, annotate, rank, the WAL, or replication paid
//! for it.
//!
//! The pieces:
//!
//! * [`TraceId`] — 64-bit splitmix64 ids, seed-deterministic under test
//!   ([`set_seed`]), carried on the wire as 16-digit lowercase hex in the
//!   `x-qatk-trace` HTTP header and as a `u64` field on replication
//!   frames (`0` = no trace).
//! * [`root_span`] / [`child_span`] / [`annotate`] — a thread-local span
//!   stack. The serving layer opens one root span per request; library
//!   crates open child spans with no context parameter, and a child span
//!   outside a live trace is a **no-op** (one atomic load + one
//!   thread-local probe), which is the entire overhead story for the
//!   bare ranking kernel.
//! * [`TraceStore`] — a global fixed-capacity ring of completed
//!   [`TraceTree`]s (slot assignment is one `fetch_add`; readers clone
//!   `Arc`s so trees never tear) plus an always-retained slow-request
//!   log ([`collect::DEFAULT_SLOW_THRESHOLD_NS`], 5 ms).
//! * [`render`] — stable single-line JSON per tree; arrays for
//!   `/debug/traces`, JSONL for logs.
//! * Exemplar linkage: on first use this crate installs itself as
//!   `qatk-obs`'s exemplar source, so every histogram bucket remembers
//!   the most recent trace id that landed in it and `/metrics` renders
//!   OpenMetrics-style exemplars.
//!
//! Like `qatk-obs`, the whole subsystem sits behind a process-global
//! enable flag ([`set_enabled`]); disabled, every entry point returns a
//! disarmed guard before touching thread-local state, and the bench gate
//! (`trace_overhead` in `bench_report`) holds the enabled cost under 3%
//! on the serving path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

pub mod collect;
pub mod id;
pub mod render;
pub mod span;

pub use collect::{record_event, store, TraceStore, RING_CAPACITY, SLOW_CAPACITY};
pub use id::{set_seed, TraceId};
pub use span::{
    annotate, child_span, current_trace_id, current_trace_id_u64, root_span, RootSpan, Span,
    SpanRecord, TraceTree, Value, NO_PARENT,
};

/// Process-global switch. Tracing is on by default — the design goal is
/// that it is cheap enough to leave on in production.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn tracing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is tracing currently enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Wire this crate up as qatk-obs's exemplar source (idempotent; called
/// on the first root span / recorded event, so merely linking the crate
/// costs nothing).
pub(crate) fn install_exemplar_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        qatk_obs::set_exemplar_source(span::current_trace_id_u64);
    });
}

/// Serialize tests (here and in dependent crates) that touch the global
/// store, the enable flag, or the id generator. Not for production use.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_id_sequences_are_deterministic() {
        let _guard = test_lock();
        set_seed(42);
        let a: Vec<u64> = (0..8).map(|_| TraceId::generate().as_u64()).collect();
        set_seed(42);
        let b: Vec<u64> = (0..8).map(|_| TraceId::generate().as_u64()).collect();
        assert_eq!(a, b);
        set_seed(43);
        let c: Vec<u64> = (0..8).map(|_| TraceId::generate().as_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn exemplar_hook_reports_the_live_trace() {
        let _guard = test_lock();
        store().clear();
        let id = TraceId::from_u64(0x0E0E).unwrap();
        {
            let _root = root_span("serve.exemplar", Some(id));
            // the hook is installed by root_span; obs sees the live id
            assert_eq!(qatk_obs::exemplar_trace_id(), 0x0E0E);
        }
        assert_eq!(qatk_obs::exemplar_trace_id(), 0);
        store().clear();
    }

    #[test]
    fn concurrent_publication_never_tears_a_tree() {
        let _guard = test_lock();
        store().clear();
        let threads = 8;
        let per_thread = 64;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        let id = TraceId::from_u64(((t as u64) << 32) | ((i as u64) + 1)).unwrap();
                        let _root = root_span("serve.stress", Some(id));
                        let _a = child_span("stage.a");
                        annotate("thread", t as u64);
                    }
                });
            }
        });
        let recent = store().recent();
        assert!(!recent.is_empty());
        for tree in &recent {
            // every handed-out tree is complete and internally consistent
            assert_eq!(tree.root().parent, NO_PARENT);
            assert_eq!(tree.root().name, "serve.stress");
            for span in &tree.spans {
                assert!(span.end_ns >= span.start_ns);
                if span.parent != NO_PARENT {
                    let parent = &tree.spans[span.parent as usize];
                    assert!(span.start_ns >= parent.start_ns);
                    assert!(span.end_ns <= parent.end_ns);
                }
            }
        }
        store().clear();
    }
}
