//! Token normalization shared by the taxonomy trie and the text annotators.
//!
//! Reports are "riddled with spelling errors, idiosyncratic ... expressions"
//! (paper §1.2); matching taxonomy terms against them requires at minimum a
//! casefold and a German umlaut/ß transliteration so that "Lüfter", "LUEFTER"
//! and "luefter" all meet in one form.

/// Normalize a single token: lowercase + German transliteration
/// (ä→ae, ö→oe, ü→ue, ß→ss).
pub fn normalize_token(token: &str) -> String {
    let mut out = String::with_capacity(token.len() + 2);
    for c in token.chars() {
        match c {
            'ä' | 'Ä' => out.push_str("ae"),
            'ö' | 'Ö' => out.push_str("oe"),
            'ü' | 'Ü' => out.push_str("ue"),
            'ß' => out.push_str("ss"),
            other => out.extend(other.to_lowercase()),
        }
    }
    out
}

/// True for characters that separate tokens: everything that is neither
/// alphanumeric nor a word-internal hyphen. This is the simple
/// whitespace-/punctuation-tokenization the paper's prototype uses (§4.5.2).
pub fn is_separator(c: char) -> bool {
    !(c.is_alphanumeric() || c == '-')
}

/// Split a phrase into normalized tokens. Used when loading multiword
/// taxonomy terms into the trie so that term tokenization and report
/// tokenization agree exactly.
pub fn normalize_phrase(phrase: &str) -> Vec<String> {
    phrase
        .split(is_separator)
        .filter(|t| !t.is_empty())
        .map(normalize_token)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_case_and_umlauts() {
        assert_eq!(normalize_token("Lüfter"), "luefter");
        assert_eq!(normalize_token("GROSSE"), "grosse");
        assert_eq!(normalize_token("weiß"), "weiss");
        assert_eq!(normalize_token("Ärger"), "aerger");
        assert_eq!(normalize_token("ÖL"), "oel");
    }

    #[test]
    fn plain_ascii_untouched_but_lowercased() {
        assert_eq!(normalize_token("Radio"), "radio");
        assert_eq!(normalize_token("x24i"), "x24i");
    }

    #[test]
    fn phrase_splitting() {
        assert_eq!(
            normalize_phrase("Crackling sound, electrical smell!"),
            vec!["crackling", "sound", "electrical", "smell"]
        );
        assert_eq!(normalize_phrase("  "), Vec::<String>::new());
        // hyphens are word-internal
        assert_eq!(normalize_phrase("mud-guard"), vec!["mud-guard"]);
        assert_eq!(normalize_phrase("a/b"), vec!["a", "b"]);
    }

    #[test]
    fn separator_classes() {
        assert!(is_separator(' '));
        assert!(is_separator(','));
        assert!(is_separator('/'));
        assert!(!is_separator('a'));
        assert!(!is_separator('7'));
        assert!(!is_separator('-'));
        assert!(!is_separator('ü'));
    }
}
