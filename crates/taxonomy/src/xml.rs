//! The taxonomy's custom XML storage format (paper §4.5.3: "The taxonomy is
//! stored in a custom XML format"), with a from-scratch parser for the XML
//! subset the format needs: elements, attributes, character data, comments,
//! an optional declaration, and the five predefined entities.
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <taxonomy name="automotive">
//!   <concept id="1" kind="component" name="Radio">
//!     <term lang="en">radio</term>
//!     <term lang="de">radio</term>
//!     <concept id="2" kind="component" name="Antenna">
//!       <term lang="en">antenna</term>
//!     </concept>
//!   </concept>
//! </taxonomy>
//! ```
//!
//! Nesting of `<concept>` elements encodes the parent relation.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::concept::{Concept, ConceptId, ConceptKind, Lang, Term};
use crate::error::{Result, TaxonomyError};
use crate::taxonomy::Taxonomy;

// ---------------------------------------------------------------------------
// Minimal XML pull lexer
// ---------------------------------------------------------------------------

/// One XML event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    Start {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    End {
        name: String,
    },
    Text(String),
}

/// Pull-lexer over an XML byte string.
pub struct XmlLexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> XmlLexer<'a> {
    pub fn new(input: &'a str) -> Self {
        XmlLexer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> TaxonomyError {
        TaxonomyError::Xml {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    /// Next event, or `None` at end of input (trailing whitespace allowed).
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>> {
        loop {
            if self.rest().trim().is_empty() {
                self.pos = self.input.len();
                return Ok(None);
            }
            if self.rest().starts_with("<?") {
                let end = self
                    .rest()
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated declaration"))?;
                self.bump(end + 2);
                continue;
            }
            if self.rest().starts_with("<!--") {
                let end = self
                    .rest()
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.bump(end + 3);
                continue;
            }
            break;
        }

        if let Some(rest) = self.rest().strip_prefix("</") {
            let end = rest
                .find('>')
                .ok_or_else(|| self.err("unterminated end tag"))?;
            let name = rest[..end].trim().to_owned();
            if name.is_empty() {
                return Err(self.err("empty end-tag name"));
            }
            self.bump(2 + end + 1);
            return Ok(Some(XmlEvent::End { name }));
        }

        if self.rest().starts_with('<') {
            let end = self
                .rest()
                .find('>')
                .ok_or_else(|| self.err("unterminated start tag"))?;
            let inner = &self.rest()[1..end];
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(s) => (s, true),
                None => (inner, false),
            };
            let mut parts = inner.trim().splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").to_owned();
            if name.is_empty() {
                return Err(self.err("empty start-tag name"));
            }
            let attrs = match parts.next() {
                Some(attr_str) => parse_attrs(attr_str).map_err(|m| self.err(m))?,
                None => Vec::new(),
            };
            self.bump(end + 1);
            return Ok(Some(XmlEvent::Start {
                name,
                attrs,
                self_closing,
            }));
        }

        // Character data up to the next tag. Whitespace-only runs between
        // tags are formatting, not content — recurse past them.
        let end = self.rest().find('<').unwrap_or(self.rest().len());
        let raw = &self.rest()[..end];
        self.bump(end);
        if raw.trim().is_empty() {
            return self.next_event();
        }
        Ok(Some(XmlEvent::Text(unescape(raw)?)))
    }
}

fn parse_attrs(s: &str) -> std::result::Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("attribute without '=': `{rest}`"))?;
        let key = rest[..eq].trim().to_owned();
        if key.is_empty() {
            return Err("empty attribute name".into());
        }
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|c| *c == '"' || *c == '\'')
            .ok_or_else(|| format!("unquoted attribute value for `{key}`"))?;
        let body = &after[1..];
        let close = body
            .find(quote)
            .ok_or_else(|| format!("unterminated attribute value for `{key}`"))?;
        let value = unescape(&body[..close]).map_err(|e| e.to_string())?;
        out.push((key, value));
        rest = body[close + 1..].trim_start();
    }
    Ok(out)
}

/// Decode the five predefined XML entities.
fn unescape(s: &str) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or_else(|| TaxonomyError::Xml {
            offset: 0,
            message: format!(
                "unterminated entity near `{}`",
                rest.chars().take(8).collect::<String>()
            ),
        })?;
        let entity = &rest[1..semi];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            other => {
                return Err(TaxonomyError::Xml {
                    offset: 0,
                    message: format!("unknown entity &{other};"),
                })
            }
        });
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Encode text for element content or attribute values.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Taxonomy document reader / writer
// ---------------------------------------------------------------------------

fn attr<'e>(attrs: &'e [(String, String)], key: &str) -> Option<&'e str> {
    attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Parse a taxonomy document.
pub fn parse_taxonomy(input: &str) -> Result<Taxonomy> {
    let mut lexer = XmlLexer::new(input);
    // expect <taxonomy ...>
    let first = lexer
        .next_event()?
        .ok_or_else(|| TaxonomyError::Format("empty document".into()))?;
    let (tax_name, root_selfclosing) = match &first {
        XmlEvent::Start {
            name,
            attrs,
            self_closing,
        } if name == "taxonomy" => (
            attr(attrs, "name").unwrap_or("taxonomy").to_owned(),
            *self_closing,
        ),
        other => {
            return Err(TaxonomyError::Format(format!(
                "expected <taxonomy>, got {other:?}"
            )))
        }
    };
    let mut concepts: Vec<Concept> = Vec::new();
    if !root_selfclosing {
        // stack of concept indexes for parent tracking
        let mut stack: Vec<usize> = Vec::new();
        // current <term> being read: (lang, text-so-far)
        let mut pending_term: Option<(Lang, String)> = None;
        loop {
            let ev = lexer
                .next_event()?
                .ok_or_else(|| TaxonomyError::Format("unexpected end of document".into()))?;
            match ev {
                XmlEvent::Start {
                    name,
                    attrs,
                    self_closing,
                } => match name.as_str() {
                    "concept" => {
                        let id = attr(&attrs, "id")
                            .and_then(|s| s.parse::<u32>().ok())
                            .ok_or_else(|| {
                                TaxonomyError::Format("concept without numeric id".into())
                            })?;
                        let kind = attr(&attrs, "kind")
                            .and_then(ConceptKind::parse)
                            .ok_or_else(|| {
                                TaxonomyError::Format(format!("concept {id}: bad kind"))
                            })?;
                        let cname = attr(&attrs, "name")
                            .ok_or_else(|| {
                                TaxonomyError::Format(format!("concept {id}: missing name"))
                            })?
                            .to_owned();
                        let parent = stack.last().map(|&i| concepts[i].id);
                        concepts.push(Concept {
                            id: ConceptId(id),
                            kind,
                            name: cname,
                            parent,
                            terms: Vec::new(),
                        });
                        if !self_closing {
                            stack.push(concepts.len() - 1);
                        }
                    }
                    "term" => {
                        let lang = attr(&attrs, "lang")
                            .and_then(Lang::parse)
                            .ok_or_else(|| TaxonomyError::Format("term: bad lang".into()))?;
                        if self_closing {
                            return Err(TaxonomyError::Format("empty <term/>".into()));
                        }
                        pending_term = Some((lang, String::new()));
                    }
                    other => {
                        return Err(TaxonomyError::Format(format!(
                            "unexpected element <{other}>"
                        )))
                    }
                },
                XmlEvent::Text(text) => {
                    if let Some((_, buf)) = &mut pending_term {
                        buf.push_str(&text);
                    } else if !text.trim().is_empty() {
                        return Err(TaxonomyError::Format(format!(
                            "stray text `{}`",
                            text.trim()
                        )));
                    }
                }
                XmlEvent::End { name } => match name.as_str() {
                    "term" => {
                        let (lang, text) = pending_term.take().ok_or_else(|| {
                            TaxonomyError::Format("</term> without <term>".into())
                        })?;
                        let idx = *stack.last().ok_or_else(|| {
                            TaxonomyError::Format("<term> outside <concept>".into())
                        })?;
                        concepts[idx].terms.push(Term::new(lang, text.trim()));
                    }
                    "concept" => {
                        stack
                            .pop()
                            .ok_or_else(|| TaxonomyError::Format("unbalanced </concept>".into()))?;
                    }
                    "taxonomy" => {
                        if !stack.is_empty() {
                            return Err(TaxonomyError::Format(
                                "</taxonomy> with open concepts".into(),
                            ));
                        }
                        break;
                    }
                    other => return Err(TaxonomyError::Format(format!("unexpected </{other}>"))),
                },
            }
        }
    }
    if lexer.next_event()?.is_some() {
        return Err(TaxonomyError::Format("content after </taxonomy>".into()));
    }
    Taxonomy::new(tax_name, concepts)
}

/// Serialize a taxonomy to the custom XML format (stable, pretty-printed).
pub fn write_taxonomy(tax: &Taxonomy) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(out, "<taxonomy name=\"{}\">", escape(tax.name()));
    // index concepts for child traversal
    let by_id: HashMap<ConceptId, &Concept> = tax.concepts().iter().map(|c| (c.id, c)).collect();
    for &root in tax.roots() {
        write_concept(&mut out, tax, &by_id, root, 1);
    }
    out.push_str("</taxonomy>\n");
    out
}

fn write_concept(
    out: &mut String,
    tax: &Taxonomy,
    by_id: &HashMap<ConceptId, &Concept>,
    id: ConceptId,
    depth: usize,
) {
    let c = by_id[&id];
    let pad = "  ".repeat(depth);
    let children = tax.children(id);
    if c.terms.is_empty() && children.is_empty() {
        let _ = writeln!(
            out,
            "{pad}<concept id=\"{}\" kind=\"{}\" name=\"{}\"/>",
            c.id.0,
            c.kind,
            escape(&c.name)
        );
        return;
    }
    let _ = writeln!(
        out,
        "{pad}<concept id=\"{}\" kind=\"{}\" name=\"{}\">",
        c.id.0,
        c.kind,
        escape(&c.name)
    );
    for term in &c.terms {
        let _ = writeln!(
            out,
            "{pad}  <term lang=\"{}\">{}</term>",
            term.lang,
            escape(&term.text)
        );
    }
    for &child in children {
        write_concept(out, tax, by_id, child, depth + 1);
    }
    let _ = writeln!(out, "{pad}</concept>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaxonomyBuilder;

    const DOC: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- automotive part & error taxonomy -->
<taxonomy name="automotive">
  <concept id="1" kind="symptom" name="Noise">
    <concept id="2" kind="symptom" name="HighNoise">
      <concept id="3" kind="symptom" name="Squeak">
        <term lang="en">squeak</term>
        <term lang="en">squeaking &amp; rattling</term>
        <term lang="de">quietschen</term>
      </concept>
    </concept>
  </concept>
  <concept id="10" kind="component" name="Radio">
    <term lang="en">radio</term>
  </concept>
  <concept id="11" kind="location" name="FrontLeft"/>
</taxonomy>
"#;

    #[test]
    fn parses_document() {
        let t = parse_taxonomy(DOC).unwrap();
        assert_eq!(t.name(), "automotive");
        assert_eq!(t.len(), 5);
        let squeak = t.get(ConceptId(3)).unwrap();
        assert_eq!(squeak.parent, Some(ConceptId(2)));
        assert_eq!(squeak.terms.len(), 3);
        assert_eq!(squeak.terms[1].text, "squeaking & rattling");
        assert_eq!(t.roots().len(), 3);
    }

    #[test]
    fn roundtrip_write_parse() {
        let mut b = TaxonomyBuilder::new("auto <&> 'test'");
        let comp = b.root(ConceptKind::Component, "Electrical");
        let radio = b.child(comp, "Radio \"Unit\"");
        b.term(radio, Lang::En, "radio & head unit");
        b.term(radio, Lang::De, "radio");
        let sym = b.root(ConceptKind::Symptom, "Smell");
        b.term(sym, Lang::En, "electrical smell");
        let orig = b.build().unwrap();

        let xml = write_taxonomy(&orig);
        let parsed = parse_taxonomy(&xml).unwrap();
        assert_eq!(parsed, orig);
    }

    #[test]
    fn lexer_events() {
        let mut lx = XmlLexer::new("<a x=\"1\" y='two'>hi</a>");
        assert_eq!(
            lx.next_event().unwrap().unwrap(),
            XmlEvent::Start {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into()), ("y".into(), "two".into())],
                self_closing: false
            }
        );
        assert_eq!(
            lx.next_event().unwrap().unwrap(),
            XmlEvent::Text("hi".into())
        );
        assert_eq!(
            lx.next_event().unwrap().unwrap(),
            XmlEvent::End { name: "a".into() }
        );
        assert_eq!(lx.next_event().unwrap(), None);
    }

    #[test]
    fn self_closing_and_comments() {
        let mut lx = XmlLexer::new("<!-- c --><b/>");
        assert_eq!(
            lx.next_event().unwrap().unwrap(),
            XmlEvent::Start {
                name: "b".into(),
                attrs: vec![],
                self_closing: true
            }
        );
    }

    #[test]
    fn entity_handling() {
        assert_eq!(unescape("a &amp; b &lt;c&gt;").unwrap(), "a & b <c>");
        assert_eq!(unescape("&quot;x&apos;").unwrap(), "\"x'");
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&amp").is_err());
        assert_eq!(
            escape("a & b <c> \"d\""),
            "a &amp; b &lt;c&gt; &quot;d&quot;"
        );
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(parse_taxonomy("").is_err());
        assert!(parse_taxonomy("<wrong/>").is_err());
        assert!(parse_taxonomy(
            "<taxonomy name='x'><concept id='a' kind='symptom' name='N'/></taxonomy>"
        )
        .is_err());
        assert!(parse_taxonomy(
            "<taxonomy name='x'><concept id='1' kind='bogus' name='N'/></taxonomy>"
        )
        .is_err());
        assert!(
            parse_taxonomy("<taxonomy name='x'><concept id='1' kind='symptom' name='N'>").is_err()
        );
        assert!(parse_taxonomy("<taxonomy name='x'>stray</taxonomy>").is_err());
        assert!(parse_taxonomy("<taxonomy name='x'></taxonomy>tail").is_err());
        assert!(parse_taxonomy("<taxonomy name='x'><unknown/></taxonomy>").is_err());
        // duplicate ids are caught by taxonomy validation
        let doc = "<taxonomy name='x'><concept id='1' kind='symptom' name='A'/><concept id='1' kind='symptom' name='B'/></taxonomy>";
        assert!(matches!(
            parse_taxonomy(doc),
            Err(TaxonomyError::DuplicateId(_))
        ));
    }

    #[test]
    fn unterminated_attr_rejected() {
        assert!(parse_taxonomy("<taxonomy name=\"x><concept/></taxonomy>").is_err());
        assert!(parse_taxonomy("<taxonomy name=x></taxonomy>").is_err());
    }

    #[test]
    fn empty_taxonomy_roundtrip() {
        let t = TaxonomyBuilder::new("empty").build().unwrap();
        let xml = write_taxonomy(&t);
        let parsed = parse_taxonomy(&xml).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.name(), "empty");
    }
}
